#!/usr/bin/env python
"""Routing under mobility: Routeless Routing vs AODV, DSR and DSDV.

An extension beyond the paper's evaluation: instead of duty-cycled
transceivers (Figure 4), nodes physically move under the random-waypoint
model.  Explicit-route protocols pay per broken link; Routeless Routing
re-elects every hop per packet and just keeps working.

Run:  python examples/mobility_comparison.py [max_speed_mps]
"""

import sys

from repro.experiments.ext_mobility import MobilityExpConfig, run_one

PROTOCOLS = ("aodv", "dsr", "dsdv", "routeless")


def main() -> None:
    max_speed = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    config = MobilityExpConfig()
    print(f"{config.n_nodes} nodes, {config.n_pairs} bidirectional pairs, "
          f"random waypoint at up to {max_speed} m/s\n")
    header = (f"{'protocol':>10} | {'static':^28} | {'mobile':^28}")
    sub = (f"{'':>10} | {'deliv':>6} {'delay':>8} {'mac_pkts':>9} | "
           f"{'deliv':>6} {'delay':>8} {'mac_pkts':>9}")
    print(header)
    print(sub)
    print("-" * len(sub))
    for protocol in PROTOCOLS:
        static = run_one(protocol, 0.0, seed=1, config=config)
        mobile = run_one(protocol, max_speed, seed=1, config=config)
        print(f"{protocol:>10} | {static.delivery_ratio:>6.3f} "
              f"{static.avg_delay_s:>8.4f} {static.mac_packets:>9} | "
              f"{mobile.delivery_ratio:>6.3f} {mobile.avg_delay_s:>8.4f} "
              f"{mobile.mac_packets:>9}")
    print()
    print("Watch the mac_pkts columns: explicit-route protocols buy mobility")
    print("tolerance with control traffic; Routeless Routing's bill is flat.")


if __name__ == "__main__":
    main()
