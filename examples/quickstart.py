#!/usr/bin/env python
"""Quickstart: the local leader election primitive in five minutes.

Builds a 8-node neighborhood on a shared wireless channel, then runs
Section 2's election protocol three ways:

1. a random backoff — any node may win;
2. a signal-strength backoff — the node farthest from the trigger wins;
3. a custom metric (here: remaining battery) via ``FunctionBackoff`` —
   the paper's point is precisely that *any* per-node metric can be turned
   into a leader election by mapping it to a backoff delay.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ElectionConfig,
    ElectionNode,
    FunctionBackoff,
    RandomBackoff,
    SignalStrengthBackoff,
)
from repro.core.backoff import BackoffInput
from repro.experiments.common import ScenarioConfig, build_network
from repro.mac.csma import CsmaMac
from repro.phy.propagation import FreeSpace, range_to_threshold_dbm


def build_neighborhood(seed: int):
    """A small fully-connected neighborhood (everyone hears everyone)."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 150, size=(8, 2))  # well within the 250 m range
    scenario = ScenarioConfig(n_nodes=8, positions=positions, range_m=250.0,
                              seed=seed)
    # The protocol layer is the election itself, so the factory returns the
    # MAC untouched and we attach ElectionNodes afterwards.
    net = build_network(lambda ctx, nid, mac, metrics: mac, scenario)
    return net


def run_election(title: str, policy, observe=None, seed: int = 7) -> None:
    net = build_neighborhood(seed)
    config = ElectionConfig(policy=policy, use_arbiter=True)
    nodes = [
        ElectionNode(net.ctx, i, mac, config, candidate=(i != 0), observe=observe)
        for i, mac in enumerate(net.macs)
    ]
    uid = nodes[0].trigger()  # node 0 creates the implicit sync point
    net.run(until=2.0)

    leader = nodes[0].leader_of(uid)
    views = {node.node_id: node.leader_of(uid) for node in nodes}
    agreed = len(set(views.values())) == 1
    print(f"{title}")
    print(f"  elected leader: node {leader}   (all nodes agree: {agreed})")
    print(f"  transmissions: {dict(net.channel.tx_count_by_kind)}\n")


def main() -> None:
    print("=" * 64)
    print("Local leader election (Chen, Branch & Szymanski, WMAN'05)")
    print("=" * 64 + "\n")

    run_election("1) Random backoff — an arbitrary node wins:",
                 RandomBackoff(max_delay=0.05))

    threshold = range_to_threshold_dbm(FreeSpace(), 15.0, 250.0)
    run_election("2) Signal-strength backoff — the farthest node wins:",
                 SignalStrengthBackoff(lam=0.05, rx_threshold_dbm=threshold,
                                       jitter=0.0))

    # Pretend each node has a battery level; fuller battery ⇒ shorter delay.
    # The observe hook is where per-node knowledge enters the election: here
    # it smuggles the local battery charge to the policy (reusing the
    # rx_power_dbm field as the metric carrier).
    battery = {i: 0.1 + 0.1 * i for i in range(8)}  # node 7 is the fullest
    policy = FunctionBackoff(fn=lambda observed: 0.05 * (1.0 - observed.rx_power_dbm))

    def battery_observe_factory(node_id):
        def observe(packet, rx):
            return BackoffInput(rng=np.random.default_rng(node_id),
                                rx_power_dbm=battery[node_id])
        return observe

    net = build_neighborhood(seed=7)
    config = ElectionConfig(policy=policy, use_arbiter=True)
    nodes = [ElectionNode(net.ctx, i, mac, config, candidate=(i != 0),
                          observe=battery_observe_factory(i))
             for i, mac in enumerate(net.macs)]
    uid = nodes[0].trigger()
    net.run(until=2.0)
    print("3) Custom metric (battery charge) — the fullest node wins:")
    print(f"  elected leader: node {nodes[0].leader_of(uid)} "
          f"(battery {battery[nodes[0].leader_of(uid)]:.1f})\n")

    print("Flooding and routing are the same pattern with different metrics —")
    print("see examples/flooding_comparison.py and examples/routeless_routing_demo.py.")


if __name__ == "__main__":
    main()
