#!/usr/bin/env python
"""Congestion avoidance visualized (the paper's Figure 2).

Runs the A→B flow twice — alone, and with a heavy C↔D cross flow — and
renders the relay-usage terrain maps side by side, exactly like the figure.
Routeless Routing never signals congestion explicitly: congested relays
simply lose elections because their MAC queues delay their transmissions.

Run:  python examples/congestion_map.py
"""

from repro.experiments.fig2_congestion import Fig2Config, run_fig2
from repro.viz.paths import path_summary


def main() -> None:
    config = Fig2Config()
    print(f"{config.n_nodes} nodes, {config.terrain_m:.0f} m terrain; "
          f"A→B every {config.ab_interval_s}s; "
          f"C↔D every {config.cd_interval_s}s each way (congested phase)\n")
    result = run_fig2(config)

    left, right = result.heatmaps()
    print("A→B relays, alone" + " " * 36 + "A→B relays, with C↔D load")
    for l_line, r_line in zip(left.splitlines(), right.splitlines()):
        print(f"{l_line}   {r_line}")

    print(f"\nA→B relay activity within 250 m of the terrain centre:")
    print(f"   alone:     {result.corridor_alone:.1%}  "
          f"(A→B delivery {result.delivery_alone:.0%})")
    print(f"   congested: {result.corridor_congested:.1%}  "
          f"(A→B delivery {result.delivery_congested:.0%})")

    print("\nMost used A→B relay chains (congested phase):")
    print(path_summary(result.paths_congested[:30]) or "   (none delivered)")


if __name__ == "__main__":
    main()
