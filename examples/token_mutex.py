#!/usr/bin/env python
"""Distributed mutual exclusion as a leader election (the paper's intro
example).

Six nodes in one radio neighborhood share a resource guarded by a token.
When the holder leaves its critical section, the successor is chosen by a
local leader election whose backoff metric is *waiting time* — the paper's
prioritized-backoff idea buying aging/fairness for free.

Run:  python examples/token_mutex.py
"""

import numpy as np

from repro.core.mutex import MutexConfig, TokenMutex
from repro.experiments.common import ScenarioConfig, build_network

N = 6
ROUNDS_PER_NODE = 3
HOLD_S = 0.08


def main() -> None:
    rng = np.random.default_rng(11)
    positions = rng.uniform(0, 120, size=(N, 2))  # a single-hop neighborhood
    net = build_network(lambda ctx, nid, mac, metrics: mac,
                        ScenarioConfig(n_nodes=N, positions=positions, seed=11))
    nodes = [TokenMutex(net.ctx, i, mac, MutexConfig(), has_token=(i == 0))
             for i, mac in enumerate(net.macs)]

    log: list[tuple[float, int, str]] = []

    def make_workload(node: TokenMutex, rounds: int):
        state = {"left": rounds}

        def request():
            node.acquire(on_acquire=entered)

        def entered():
            log.append((net.simulator.now, node.node_id, "enter"))
            net.simulator.schedule(HOLD_S, leave)

        def leave():
            log.append((net.simulator.now, node.node_id, "leave"))
            node.release()
            state["left"] -= 1
            if state["left"] > 0:
                net.simulator.schedule(float(rng.uniform(0.1, 0.5)), request)

        return request

    for node in nodes:
        net.simulator.schedule(float(rng.uniform(0.0, 1.0)),
                               make_workload(node, ROUNDS_PER_NODE))
    net.run(until=60.0)

    print(f"{N} nodes × {ROUNDS_PER_NODE} critical sections each\n")
    print("  time      node  event")
    overlap_ok = True
    inside: int | None = None
    for t, nid, event in log:
        marker = ""
        if event == "enter":
            if inside is not None:
                marker = "  !!! OVERLAP"
                overlap_ok = False
            inside = nid
        else:
            inside = None
        print(f"  {t:8.3f}  {nid:>4}  {event}{marker}")

    completed = sum(1 for _, _, e in log if e == "leave")
    waits = [w for node in nodes for w in node.wait_times]
    print(f"\ncritical sections completed: {completed} / {N * ROUNDS_PER_NODE}")
    print(f"mutual exclusion violated:   {'NO' if overlap_ok else 'YES'}")
    print(f"mean wait for the token:     {np.mean(waits):.3f} s "
          f"(max {np.max(waits):.3f} s)")


if __name__ == "__main__":
    main()
