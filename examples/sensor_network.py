#!/usr/bin/env python
"""A complete sensor network on the election primitive, end to end.

Everything in one scenario, each layer an instance of the paper's local
leader election:

* **LEACH-style clustering** (`repro.core.clustering`) — each round, every
  neighborhood elects a cluster head by residual energy;
* **Routeless Routing** (`repro.net.routeless`) — heads report aggregated
  readings to the sink with no stored routes, every hop elected in flight;
* **energy metering** (`repro.phy.energy`) — the whole stack runs on
  radios whose consumption is integrated per state.

Both protocols share one MAC per node and coexist by packet kind — cluster
beacons even help Routeless Routing's passive distance learning.

Run:  python examples/sensor_network.py
"""

import numpy as np

from repro.core.clustering import ClusterConfig, ClusterNode
from repro.experiments.common import ScenarioConfig, build_protocol_network
from repro.stats.flows import jain_index

N = 50
SINK = 0
DURATION_S = 40.0
REPORT_EVERY_S = 2.0


def main() -> None:
    rng = np.random.default_rng(9)
    positions = rng.uniform(0, 650, size=(N, 2))
    positions[SINK] = [20.0, 20.0]  # sink in a corner, like a real deployment

    scenario = ScenarioConfig(n_nodes=N, positions=positions, range_m=250.0,
                              seed=9, with_energy=True)
    net = build_protocol_network("routeless", scenario)
    cluster_config = ClusterConfig(round_s=REPORT_EVERY_S)
    cluster = [ClusterNode(net.ctx, i, net.macs[i], cluster_config)
               for i in range(N) if i != SINK]

    reports = {"sent": 0}

    def head_reports() -> None:
        for agent in cluster:
            if agent.is_head:
                # One aggregated reading per head per round, routed to the
                # sink with no route state anywhere.
                net.protocols[agent.node_id].send_data(SINK, 128)
                reports["sent"] += 1
        net.simulator.schedule(REPORT_EVERY_S, head_reports)

    net.simulator.schedule(1.5, head_reports)  # after the first election
    net.run(until=DURATION_S)

    summary = net.summary()
    heads_now = sorted(a.node_id for a in cluster if a.is_head)
    served = sum(1 for a in cluster if a.rounds_as_head > 0)
    total_j = sum(m.finalize(net.simulator.now) for m in net.energy)
    fairness = jain_index([a.energy + 0.01 for a in cluster])

    print(f"{N}-node field, sink at the corner, {DURATION_S:.0f} s\n")
    print(f"cluster heads this round:      {heads_now}")
    print(f"nodes that served as head:     {served}/{len(cluster)} "
          f"(energy fairness {fairness:.3f})")
    print(f"aggregated reports sent:       {reports['sent']}")
    print(f"delivered to the sink:         {summary.delivered} "
          f"({summary.delivery_ratio:.1%}, avg {summary.avg_hops:.1f} hops, "
          f"{summary.avg_delay_s*1000:.0f} ms)")
    print(f"network energy spent:          {total_j:.1f} J "
          f"({net.channel.tx_count} transmissions, "
          f"{net.channel.airtime_s:.2f} s airtime)")
    print()
    print("Every layer above — head election, member joins, per-hop relay")
    print("selection — is the same primitive: implicit sync point, metric")
    print("backoff, announce, suppress.")


if __name__ == "__main__":
    main()
