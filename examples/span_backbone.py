#!/usr/bin/env python
"""Span-style coordinator backbone — the election pattern's prior art.

The paper credits Span [18] as the precedent for backoff-as-priority: nodes
elect themselves into a stay-awake routing backbone with delays shrinking in
their energy and their utility (how many disconnected neighbor pairs they
would bridge).  This example grows a backbone over a random field, renders
it, and then drains it for a while to show coordinators rotating.

Run:  python examples/span_backbone.py
"""

import numpy as np

from repro.core.coordinators import CoordinatorConfig, SpanCoordinator
from repro.experiments.common import ScenarioConfig, build_network


def render(positions, agents, cols=56, rows=20) -> str:
    x_lo, y_lo = positions.min(axis=0)
    x_hi, y_hi = positions.max(axis=0)
    grid = [[" "] * cols for _ in range(rows)]
    for agent in agents:
        x, y = positions[agent.node_id]
        c = min(cols - 1, int((x - x_lo) / (x_hi - x_lo or 1) * (cols - 1)))
        r = min(rows - 1, int((y_hi - y) / (y_hi - y_lo or 1) * (rows - 1)))
        grid[r][c] = "C" if agent.is_coordinator else "."
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    rng = np.random.default_rng(5)
    positions = rng.uniform(0, 700, size=(45, 2))
    net = build_network(lambda ctx, nid, mac, metrics: mac,
                        ScenarioConfig(n_nodes=45, positions=positions,
                                       range_m=250.0, seed=5))
    config = CoordinatorConfig(round_s=1.0, tenure_rounds=4, duty_drain=0.08)
    agents = [SpanCoordinator(net.ctx, i, mac, config)
              for i, mac in enumerate(net.macs)]

    net.run(until=10.0)
    coords = sorted(a.node_id for a in agents if a.is_coordinator)
    print("After 10 s — the backbone has formed "
          f"({len(coords)}/{len(agents)} nodes are coordinators):\n")
    print(render(positions, agents))

    net.run(until=60.0)
    later = sorted(a.node_id for a in agents if a.is_coordinator)
    rotations = sum(a.withdrawals for a in agents)
    print(f"\nAfter 60 s of duty drain — {rotations} withdrawals so far;")
    print(f"  coordinators then: {coords}")
    print(f"  coordinators now:  {later}")
    energies = sorted((round(a.energy, 2), a.node_id) for a in agents)[:5]
    print(f"  most-drained nodes (energy, id): {energies}")
    print("\nEvery election, suppression and withdrawal above ran on the same")
    print("CandidateTimer machinery as SSAF and Routeless Routing.")


if __name__ == "__main__":
    main()
