#!/usr/bin/env python
"""Flooding comparison: blind vs counter-1 vs SSAF (a mini Figure 1).

Floods CBR traffic over a random 60-node sensor field under all three
flooding variants and prints the paper's three metrics side by side, plus
the transmission counts that explain them.

Run:  python examples/flooding_comparison.py [seed]
"""

import sys

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.sim.rng import RandomStreams

PROTOCOLS = ("blind", "counter1", "ssaf")


def run(protocol: str, seed: int):
    scenario = ScenarioConfig(n_nodes=60, width_m=775.0, height_m=775.0,
                              range_m=250.0, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(60, 10, RandomStreams(seed + 123).stream("flows"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=0.5, stop_s=12.0)
    net.run(until=15.0)
    return net


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"60 nodes, 775x775 m, 10 connections, CBR interval 0.5 s, seed {seed}\n")
    header = f"{'protocol':>10} {'delivery':>9} {'delay_s':>9} {'hops':>6} {'tx':>7} {'suppressed':>11}"
    print(header)
    print("-" * len(header))
    for protocol in PROTOCOLS:
        net = run(protocol, seed)
        s = net.summary()
        suppressed = sum(getattr(p, "suppressed", 0) for p in net.protocols)
        print(f"{protocol:>10} {s.delivery_ratio:>9.3f} {s.avg_delay_s:>9.4f} "
              f"{s.avg_hops:>6.2f} {s.mac_packets:>7} {suppressed:>11}")
    print()
    print("Expected shape (the paper's Figure 1):")
    print("  blind    — every first copy rebroadcast: most transmissions;")
    print("  counter1 — duplicate suppression cuts transmissions;")
    print("  ssaf     — same suppression + signal-strength election:")
    print("             fewer hops, lower delay, delivery at least as good.")


if __name__ == "__main__":
    main()
