#!/usr/bin/env python
"""Energy: sleeping relays under Routeless Routing vs AODV.

Section 4.2: "any node, even if it is on the route, can freely switch to a
sleep or a standby mode to save energy, making Routeless Routing well suited
for energy limited sensor networks."  Under AODV, a sleeping relay is a
broken route: MAC retries, a RERR, and a rediscovery flood.

This example runs the same scenario — relays duty-cycling to sleep 30% of
the time — under both protocols with energy metering on, and reports
delivery, control cost, and network-wide energy use.

Run:  python examples/sensor_sleep.py
"""

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.phy.radio import RadioState
from repro.sim.rng import RandomStreams
from repro.topology.failures import apply_failures

DURATION_S = 30.0
SLEEP_FRACTION = 0.3


def run(protocol: str, seed: int = 2):
    scenario = ScenarioConfig(n_nodes=80, width_m=800.0, height_m=800.0,
                              range_m=250.0, seed=seed, with_energy=True)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(80, 3, RandomStreams(seed + 77).stream("flows"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    # Every non-endpoint node naps 30% of the time, in ~1-second bursts.
    apply_failures(net.ctx, net.radios, SLEEP_FRACTION,
                   exempt=endpoints, mean_cycle_s=3.0, sleep=True)
    attach_cbr(net, flows, interval_s=1.0, stop_s=DURATION_S - 4.0)
    net.run(until=DURATION_S)

    total_j = sum(meter.finalize(net.simulator.now) for meter in net.energy)
    sleep_s = sum(meter.time_by_state[RadioState.OFF] +
                  meter.time_by_state[RadioState.SLEEP]
                  for meter in net.energy)
    return net, total_j, sleep_s


def main() -> None:
    print(f"80 nodes, 3 bidirectional CBR pairs, relays asleep "
          f"{SLEEP_FRACTION:.0%} of the time\n")
    header = (f"{'protocol':>10} {'delivery':>9} {'delay_s':>9} "
              f"{'mac_pkts':>9} {'ctrl_pkts':>10} {'energy_J':>9}")
    print(header)
    print("-" * len(header))
    for protocol in ("aodv", "routeless"):
        net, total_j, sleep_s = run(protocol)
        s = net.summary()
        kinds = net.channel.tx_count_by_kind
        control = sum(count for kind, count in kinds.items()
                      if kind not in ("data", "mac_ack"))
        print(f"{protocol:>10} {s.delivery_ratio:>9.3f} {s.avg_delay_s:>9.4f} "
              f"{s.mac_packets:>9} {control:>10} {total_j:>9.1f}")
    print()
    print("Routeless Routing keeps delivering with napping relays and spends")
    print("nothing on route repair; AODV pays for every nap with retries,")
    print("RERRs and rediscovery floods.")


if __name__ == "__main__":
    main()
