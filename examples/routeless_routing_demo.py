#!/usr/bin/env python
"""Routeless Routing, step by step — including a live node failure.

Walks a packet flow through the protocol's life cycle on a small network,
with the tracer on so every protocol action is visible:

1. path discovery (counter-1 flooding populates active node tables);
2. the path reply electing its way back hop by hop, acked per hop;
3. data packets flowing without any stored route;
4. a relay node dying mid-conversation — and the next data packet routing
   itself around the corpse with zero control traffic ("the transition is
   seamless and no extra actions are needed", Section 4.2).

Run:  python examples/routeless_routing_demo.py
"""

import numpy as np

from repro.experiments.common import ScenarioConfig, build_protocol_network
from repro.sim.trace import Tracer

#       1 ─── 3
#      /  \ /  \
#    0     X    5      two disjoint relay corridors from 0 to 5
#      \  / \  /
#       2 ─── 4
POSITIONS = np.array([
    [0.0, 0.0],
    [200.0, 90.0],
    [200.0, -90.0],
    [400.0, 90.0],
    [400.0, -90.0],
    [600.0, 0.0],
])


def print_events(tracer: Tracer, since: float) -> None:
    interesting = ("rr.discovery", "rr.discovery_reached", "rr.reply",
                   "rr.reply_received", "rr.candidate", "rr.relay", "rr.ack",
                   "rr.retransmit", "net.deliver")
    for record in tracer.records:
        if record.time >= since and record.kind in interesting:
            print(f"   {record}")


def main() -> None:
    tracer = Tracer()
    scenario = ScenarioConfig(n_nodes=6, positions=POSITIONS, range_m=250.0,
                              seed=4)
    net = build_protocol_network("routeless", scenario, tracer=tracer)
    rr = net.protocols

    print("== 1+2. Path discovery and reply (0 → 5) ==")
    rr[0].send_data(5)
    net.run(until=2.0)
    print_events(tracer, 0.0)
    print("\nActive node tables after discovery (hops to node 0 / node 5):")
    for i in range(6):
        print(f"   node {i}: to 0 = {rr[i].table.hops_to(0)}, "
              f"to 5 = {rr[i].table.hops_to(5)}")

    print("\n== 3. A second data packet — no discovery, no stored route ==")
    mark = net.simulator.now
    rr[0].send_data(5)
    net.run(until=mark + 2.0)
    print_events(tracer, mark)
    used = net.metrics.deliveries[-1].path
    print(f"\n   delivered via relays {used}")

    victim = used[0]
    print(f"\n== 4. Relay {victim} dies.  Next packet takes the other corridor ==")
    net.radios[victim].set_power(False)
    mark = net.simulator.now
    rr[0].send_data(5)
    net.run(until=mark + 3.0)
    print_events(tracer, mark)
    final = net.metrics.deliveries[-1].path
    print(f"\n   delivered via relays {final} — no route repair, no RERR, "
          f"no rediscovery")
    print(f"   discovery floods in the whole run: "
          f"{net.channel.tx_count_by_kind['path_discovery']} transmissions "
          f"(all from step 1)")
    print(f"\nSummary: {net.summary()}")


if __name__ == "__main__":
    main()
