"""Per-flow statistics and fairness.

The paper reports network-wide averages; per-flow breakdowns answer the
follow-up questions a reviewer asks — did the average hide a starving flow?
Is the protocol fair across pairs?  :func:`flow_table` splits a
:class:`~repro.stats.metrics.MetricsCollector` by (origin, target) flow, and
:func:`jain_index` computes the standard fairness measure over per-flow
delivery (1.0 = perfectly fair, 1/n = one flow gets everything).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.stats.metrics import MetricsCollector

__all__ = ["FlowStats", "flow_table", "jain_index", "format_flow_table"]


@dataclass(frozen=True)
class FlowStats:
    origin: int
    target: int
    generated: int
    delivered: int
    avg_delay_s: float
    avg_hops: float

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.generated if self.generated else 0.0


def flow_table(metrics: "MetricsCollector") -> list[FlowStats]:
    """Per-flow breakdown, ordered by (origin, target)."""
    generated: dict[tuple[int, int], int] = defaultdict(int)
    for packet in metrics._originated.values():
        generated[(packet.origin, packet.target)] += 1

    delivered: dict[tuple[int, int], list] = defaultdict(list)
    for delivery in metrics.deliveries:
        delivered[(delivery.origin, delivery.target)].append(delivery)

    rows = []
    for key in sorted(generated):
        arrivals = delivered.get(key, [])
        n = len(arrivals)
        rows.append(FlowStats(
            origin=key[0],
            target=key[1],
            generated=generated[key],
            delivered=n,
            avg_delay_s=sum(d.delay for d in arrivals) / n if n else 0.0,
            avg_hops=sum(d.hops for d in arrivals) / n if n else 0.0,
        ))
    return rows


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)`` ∈ [1/n, 1]."""
    values = [v for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def format_flow_table(rows: Sequence[FlowStats]) -> str:
    lines = [f"{'flow':>12} {'gen':>5} {'dlv':>5} {'ratio':>7} "
             f"{'delay_s':>9} {'hops':>6}"]
    for row in rows:
        lines.append(
            f"{row.origin:>5}→{row.target:<6} {row.generated:>5} "
            f"{row.delivered:>5} {row.delivery_ratio:>7.3f} "
            f"{row.avg_delay_s:>9.4f} {row.avg_hops:>6.2f}")
    ratios = [row.delivery_ratio for row in rows]
    lines.append(f"{'':>12} Jain fairness over delivery: {jain_index(ratios):.4f}")
    return "\n".join(lines)
