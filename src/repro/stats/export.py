"""Export sweep results to CSV and JSON.

The benchmark harness prints ASCII panels; downstream analysis (plotting the
figures with matplotlib, diffing runs) wants machine-readable series.  These
helpers serialize :class:`~repro.stats.series.SweepSeries` collections with
their per-point statistics.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping

from repro.stats.series import METRIC_FIELDS, SweepSeries

__all__ = ["series_to_rows", "write_csv", "to_json", "write_json"]


def series_to_rows(results: Mapping[str, SweepSeries]) -> list[dict]:
    """Flatten ``{protocol: series}`` into one row per (protocol, x, metric)."""
    rows = []
    for label, series in results.items():
        for x in series.xs:
            for metric in METRIC_FIELDS:
                stats = series.metric(x, metric)
                rows.append({
                    "protocol": label,
                    "x": x,
                    "metric": metric,
                    "mean": stats.mean,
                    "stderr": stats.stderr,
                    "n": stats.n,
                })
    return rows


def write_csv(results: Mapping[str, SweepSeries], path: str) -> None:
    rows = series_to_rows(results)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=["protocol", "x", "metric", "mean", "stderr", "n"])
        writer.writeheader()
        writer.writerows(rows)


def to_json(results: Mapping[str, SweepSeries]) -> str:
    payload = {
        label: {
            "xs": series.xs,
            "metrics": {
                metric: [
                    {"x": x, **vars(series.metric(x, metric))}
                    for x in series.xs
                ]
                for metric in METRIC_FIELDS
            },
        }
        for label, series in results.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_json(results: Mapping[str, SweepSeries], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(results) + "\n")
