"""Export sweep results to CSV and JSON.

The benchmark harness prints ASCII panels; downstream analysis (plotting the
figures with matplotlib, diffing runs) wants machine-readable series.  These
helpers serialize :class:`~repro.stats.series.SweepSeries` collections with
their per-point statistics, read them back as typed rows for round-trip
verification, and export campaign telemetry summaries.

All writers accept ``str`` or :class:`os.PathLike` and create missing parent
directories, so ``write_csv(results, out_dir / "runs" / "fig3.csv")`` just
works.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Mapping

from repro.stats.series import METRIC_FIELDS, SweepSeries

__all__ = [
    "series_to_rows",
    "write_csv",
    "read_csv_rows",
    "to_json",
    "write_json",
    "read_json_rows",
    "write_campaign_summary",
]

_ROW_FIELDS = ["protocol", "x", "metric", "mean", "stderr", "n"]


def _prepare(path: str | os.PathLike) -> Path:
    """Normalize a destination path and ensure its parent directory exists."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return target


def series_to_rows(results: Mapping[str, SweepSeries]) -> list[dict]:
    """Flatten ``{protocol: series}`` into one row per (protocol, x, metric)."""
    rows = []
    for label, series in results.items():
        for x in series.xs:
            for metric in METRIC_FIELDS:
                stats = series.metric(x, metric)
                rows.append({
                    "protocol": label,
                    "x": x,
                    "metric": metric,
                    "mean": stats.mean,
                    "stderr": stats.stderr,
                    "n": stats.n,
                })
    return rows


def write_csv(results: Mapping[str, SweepSeries], path: str | os.PathLike) -> None:
    rows = series_to_rows(results)
    with open(_prepare(path), "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_ROW_FIELDS)
        writer.writeheader()
        writer.writerows(rows)


def read_csv_rows(path: str | os.PathLike) -> list[dict]:
    """Read a :func:`write_csv` file back into typed rows."""
    with open(path, newline="") as handle:
        return [
            {
                "protocol": row["protocol"],
                "x": float(row["x"]),
                "metric": row["metric"],
                "mean": float(row["mean"]),
                "stderr": float(row["stderr"]),
                "n": int(row["n"]),
            }
            for row in csv.DictReader(handle)
        ]


def to_json(results: Mapping[str, SweepSeries]) -> str:
    payload = {
        label: {
            "xs": series.xs,
            "metrics": {
                metric: [
                    {"x": x, **vars(series.metric(x, metric))}
                    for x in series.xs
                ]
                for metric in METRIC_FIELDS
            },
        }
        for label, series in results.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_json(results: Mapping[str, SweepSeries], path: str | os.PathLike) -> None:
    with open(_prepare(path), "w") as handle:
        handle.write(to_json(results) + "\n")


def read_json_rows(path: str | os.PathLike) -> list[dict]:
    """Read a :func:`write_json` file back into the same typed rows as
    :func:`series_to_rows` (same ordering: protocol, x, metric)."""
    payload = json.loads(Path(path).read_text())
    rows = []
    for label in payload:
        series = payload[label]
        for x in series["xs"]:
            for metric in METRIC_FIELDS:
                point = next(p for p in series["metrics"][metric]
                             if p["x"] == x)
                rows.append({
                    "protocol": label,
                    "x": float(x),
                    "metric": metric,
                    "mean": float(point["mean"]),
                    "stderr": float(point["stderr"]),
                    "n": int(point["n"]),
                })
    return rows


def write_campaign_summary(summary: Mapping, path: str | os.PathLike) -> None:
    """Write a campaign telemetry summary (see
    :meth:`repro.campaign.telemetry.CampaignTelemetry.summary`) as JSON."""
    with open(_prepare(path), "w") as handle:
        json.dump(dict(summary), handle, indent=2, sort_keys=True)
        handle.write("\n")
