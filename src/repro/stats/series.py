"""Aggregation helpers for parameter sweeps.

Every figure in the paper is a series: a metric against a swept parameter,
one curve per protocol.  :class:`SweepSeries` accumulates per-seed
:class:`~repro.stats.metrics.MetricsSummary` values at each x and exposes
means and normal-approximation confidence intervals; :func:`format_table`
renders the rows the benchmark harness prints.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.stats.metrics import MetricsSummary

__all__ = ["PointStats", "SweepSeries", "format_table"]


@dataclass(frozen=True)
class PointStats:
    mean: float
    stderr: float
    n: int

    @property
    def ci95(self) -> float:
        return 1.96 * self.stderr


def _stats(values: Sequence[float]) -> PointStats:
    n = len(values)
    if n == 0:
        return PointStats(0.0, 0.0, 0)
    mean = sum(values) / n
    if n == 1:
        return PointStats(mean, 0.0, 1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return PointStats(mean, math.sqrt(var / n), n)


METRIC_FIELDS = ("delivery_ratio", "avg_delay_s", "avg_hops", "mac_packets")


class SweepSeries:
    """Per-x, per-metric sample accumulation for one protocol's curve."""

    def __init__(self, label: str):
        self.label = label
        self._samples: dict[float, list[MetricsSummary]] = defaultdict(list)

    def add(self, x: float, summary) -> None:
        """Accept a :class:`MetricsSummary` or anything exposing
        ``to_summary()`` (an ``ExperimentResult``), normalized on entry so
        the per-metric math never sees mixed shapes."""
        if not isinstance(summary, MetricsSummary) and hasattr(summary, "to_summary"):
            summary = summary.to_summary()
        self._samples[x].append(summary)

    @property
    def xs(self) -> list[float]:
        return sorted(self._samples)

    def metric(self, x: float, name: str) -> PointStats:
        if name not in METRIC_FIELDS:
            raise KeyError(f"unknown metric {name!r}; choose from {METRIC_FIELDS}")
        return _stats([getattr(s, name) for s in self._samples[x]])

    def curve(self, name: str) -> list[tuple[float, float]]:
        return [(x, self.metric(x, name).mean) for x in self.xs]


def format_table(series: Iterable[SweepSeries], metric: str,
                 x_label: str = "x", precision: int = 4) -> str:
    """One figure panel as text: an x column plus one column per protocol."""
    series = list(series)
    xs = sorted({x for s in series for x in s.xs})
    header = [x_label] + [s.label for s in series]
    rows = [header]
    for x in xs:
        row = [f"{x:g}"]
        for s in series:
            if x in s._samples:
                stats = s.metric(x, metric)
                row.append(f"{stats.mean:.{precision}f}")
            else:
                row.append("-")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = ["  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows]
    return "\n".join(lines)
