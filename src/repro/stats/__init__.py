"""Metrics collection and sweep aggregation."""

from repro.stats.export import series_to_rows, to_json, write_csv, write_json
from repro.stats.flows import FlowStats, flow_table, format_flow_table, jain_index
from repro.stats.metrics import Delivery, MetricsCollector, MetricsSummary
from repro.stats.series import PointStats, SweepSeries, format_table

__all__ = [
    "Delivery",
    "FlowStats",
    "flow_table",
    "format_flow_table",
    "jain_index",
    "series_to_rows",
    "to_json",
    "write_csv",
    "write_json",
    "MetricsCollector",
    "MetricsSummary",
    "PointStats",
    "SweepSeries",
    "format_table",
]
