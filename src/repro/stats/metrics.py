"""Network-wide metrics — the three (plus one) quantities the paper reports.

* **Delivery ratio** — "dividing the number of packets received by all the
  destinations by the number of packets sent by all the sources."  Duplicate
  deliveries of the same packet count once.
* **End-to-end delay** — "average time expired from the departure of a packet
  from the source to its arrival at the destination", averaged over delivered
  packets.
* **Average hops** — "counts nodes traversed until the packet reaches its
  destination": a direct source→destination delivery is one hop.
* **MAC packet count** — every frame put on the air, read off the channel.

The collector also retains each delivered packet's relay path, which feeds
the Figure 2 congestion visualization and the per-flow diagnostics in the
examples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.phy.channel import Channel

__all__ = ["Delivery", "MetricsCollector", "MetricsSummary"]


@dataclass(frozen=True)
class Delivery:
    uid: tuple
    origin: int
    target: int
    sent_at: float
    received_at: float
    hops: int
    path: tuple[int, ...]

    @property
    def delay(self) -> float:
        return self.received_at - self.sent_at


@dataclass(frozen=True)
class MetricsSummary:
    generated: int
    delivered: int
    delivery_ratio: float
    avg_delay_s: float
    avg_hops: float
    mac_packets: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"generated={self.generated} delivered={self.delivered} "
            f"ratio={self.delivery_ratio:.3f} delay={self.avg_delay_s:.4f}s "
            f"hops={self.avg_hops:.2f} mac_packets={self.mac_packets}"
        )


class MetricsCollector:
    """Aggregates originations and (first) deliveries across the network."""

    def __init__(self) -> None:
        self._originated: dict[tuple, "Packet"] = {}
        self.deliveries: list[Delivery] = []
        self._delivered_uids: set[tuple] = set()
        self.duplicate_deliveries = 0
        self.relay_usage: Counter[int] = Counter()

    # ------------------------------------------------------ protocol hooks

    def on_originated(self, packet: "Packet") -> None:
        self._originated[packet.uid] = packet

    def on_delivered(self, packet: "Packet", now: float, node_id: int) -> None:
        if packet.uid in self._delivered_uids:
            self.duplicate_deliveries += 1
            return
        self._delivered_uids.add(packet.uid)
        origin_packet = self._originated.get(packet.uid)
        sent_at = origin_packet.created_at if origin_packet is not None else packet.created_at
        delivery = Delivery(
            uid=packet.uid,
            origin=packet.origin,
            target=node_id,
            sent_at=sent_at,
            received_at=now,
            hops=packet.actual_hops + 1,
            path=packet.path,
        )
        self.deliveries.append(delivery)
        for relay in packet.path:
            self.relay_usage[relay] += 1

    # -------------------------------------------------------------- queries

    @property
    def generated(self) -> int:
        return len(self._originated)

    @property
    def delivered(self) -> int:
        return len(self.deliveries)

    def delivery_ratio(self) -> float:
        return self.delivered / self.generated if self.generated else 0.0

    def avg_delay_s(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.delay for d in self.deliveries) / len(self.deliveries)

    def avg_hops(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.hops for d in self.deliveries) / len(self.deliveries)

    def summary(self, channel: "Channel | None" = None) -> MetricsSummary:
        return MetricsSummary(
            generated=self.generated,
            delivered=self.delivered,
            delivery_ratio=self.delivery_ratio(),
            avg_delay_s=self.avg_delay_s(),
            avg_hops=self.avg_hops(),
            mac_packets=channel.tx_count if channel is not None else 0,
        )

    def paths_between(self, origin: int, target: int) -> list[tuple[int, ...]]:
        """Relay paths of every delivered packet of one flow (Figure 2)."""
        return [
            d.path for d in self.deliveries
            if d.origin == origin and d.target == target
        ]
