"""The distributed worker agent: ``python -m repro.dist.worker``.

A worker is leaderless and stateless — point any number of them at the
same spool directory and they coordinate purely through lease files::

    python -m repro.dist.worker --spool campaigns/fig1/spool
    python -m repro.dist.worker --spool ... --shard 3      # array shard
    python -m repro.dist.worker --spool ... --no-steal

The loop: scan the spooled cells (own shard first when ``--shard`` is
given), skip settled ones, try to claim a lease on the rest; on a claim,
execute the cell with the campaign's retry policy while a heartbeat
thread renews the lease, publish the result to the shared
content-addressed cache, write the ``done/`` marker, release the lease.
When no cell is claimable, look for *expired* leases — a peer that died
mid-cell — and steal them.  Exit when every cell is settled, the spool's
``STOP`` flag appears, or ``--max-cells`` is reached.

Execution is at-least-once: a worker that stalls past the lease TTL has
its cell re-executed elsewhere, and both executions write identical
bytes under the same content address.  The journal stays single-writer —
workers never touch it; the coordinator folds ``done/`` markers exactly
once per key.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.dist.lease import HeartbeatThread, default_worker_id
from repro.dist.spool import CellSpec, WorkSpool

__all__ = ["WorkerAgent", "run_worker", "main"]


class WorkerAgent:
    """One worker's drain of one spool."""

    def __init__(
        self,
        spool: WorkSpool,
        *,
        worker_id: str | None = None,
        shard: int | None = None,
        steal: bool = True,
        poll_s: float = 0.25,
        max_cells: int | None = None,
        cache_dir: str | os.PathLike | None = None,
    ):
        self.spool = spool
        self.worker_id = worker_id or default_worker_id()
        self.shard = shard
        self.steal_enabled = steal
        self.poll_s = poll_s
        self.max_cells = max_cells
        manifest = spool.manifest()
        self.ttl_s = float(manifest["ttl_s"])
        self.max_retries = int(manifest.get("max_retries", 2))
        self.backoff_s = float(manifest.get("backoff_s", 0.05))
        self.observe = bool(manifest.get("observe", False))
        self.leases = spool.lease_dir(self.worker_id, ttl_s=self.ttl_s)
        cache_root = cache_dir or manifest.get("cache_dir")
        if cache_root is None:
            raise RuntimeError(
                f"spool {spool.directory} names no cache_dir and none was "
                "given; workers need the shared result store")
        self.cache = ResultCache(cache_root)

        payload = spool.load_payload()
        self.run_one = payload["run_one"]
        self.config = payload["config"]
        self.extra = dict(payload.get("extra", {}))

        self.cells_done = 0
        self.cells_failed = 0
        self.steals = 0
        self.heartbeats = 0
        self.started_at = time.time()

    # -------------------------------------------------------------- reporting

    def _stats(self, state: str) -> dict:
        return {
            "worker": self.worker_id,
            "host": self.leases.host,
            "pid": os.getpid(),
            "shard": self.shard,
            "state": state,
            "started_at": self.started_at,
            "updated_at": time.time(),
            "cells_done": self.cells_done,
            "cells_failed": self.cells_failed,
            "steals": self.steals,
            "lost_steals": self.leases.lost_steals,
            "heartbeats": self.heartbeats,
        }

    def publish_stats(self, state: str = "running") -> None:
        try:
            self.spool.write_worker_stats(self.worker_id, self._stats(state))
        except OSError:  # pragma: no cover - stats are best-effort
            pass

    # -------------------------------------------------------------- execution

    def _execute(self, cell: CellSpec):
        """Run one cell with the spool's retry policy.  Returns
        ``(summary, obs_snapshot, attempts, wall_s)`` or raises after the
        final retry."""
        attempts = 0
        while True:
            attempts += 1
            start = time.monotonic()
            try:
                if self.observe:
                    from repro.obs.observe import Observability
                    obs = Observability()
                    summary = self.run_one(cell.protocol, cell.x, cell.seed,
                                           self.config, obs=obs, **self.extra)
                    snapshot = obs.snapshot()
                else:
                    summary = self.run_one(cell.protocol, cell.x, cell.seed,
                                           self.config, **self.extra)
                    snapshot = None
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                if attempts > self.max_retries:
                    raise _CellFailed(attempts, repr(exc)) from exc
                time.sleep(self.backoff_s * 2.0 ** max(0, attempts - 1))
            else:
                return summary, snapshot, attempts, time.monotonic() - start

    def _settle(self, cell: CellSpec, *, stolen: bool) -> None:
        """Execute a claimed cell and publish its settlement."""
        try:
            summary, snapshot, attempts, wall_s = self._execute(cell)
        except _CellFailed as failure:
            self.cells_failed += 1
            self.spool.mark_failed(cell.key, {
                "key": cell.key, "worker": self.worker_id,
                "attempts": failure.attempts, "error": failure.error,
                "stolen": stolen,
            })
            return
        self.cache.put(cell.key, summary,
                       meta={"worker": self.worker_id, "protocol": cell.protocol,
                             "x": float(cell.x), "seed": int(cell.seed)})
        record = {
            "key": cell.key, "worker": self.worker_id,
            "attempts": attempts, "wall_s": wall_s, "stolen": stolen,
        }
        if snapshot is not None:
            record["obs_snapshot"] = snapshot
        self.spool.mark_done(cell.key, record)
        self.cells_done += 1

    def _claim_and_run(self, cell: CellSpec, *, allow_steal: bool) -> bool:
        """Try to take the cell; True if this worker settled it."""
        if self.spool.is_settled(cell.key):
            return False
        lease = self.leases.claim(cell.key)
        stolen = False
        if lease is None and allow_steal:
            lease = self.leases.steal(cell.key)
            stolen = lease is not None
        if lease is None:
            return False
        if stolen:
            self.steals += 1
        # Settlement may have landed between our scan and the claim.
        if self.spool.is_settled(cell.key):
            lease.release()
            return False
        heartbeat = HeartbeatThread(lease)
        heartbeat.start()
        try:
            self._settle(cell, stolen=stolen)
        finally:
            heartbeat.stop()
            self.heartbeats += lease.heartbeats
            lease.release()
        return True

    # ------------------------------------------------------------------ loop

    def _sweeps(self) -> list[tuple[list[CellSpec], bool]]:
        """Cell passes in claim order.  A sharded worker fresh-claims only
        its own shard; foreign shards are reached in the stealing pass —
        which also fresh-claims, so a shard whose array job never started
        is still drained by its peers."""
        cells = self.spool.cells()
        if self.shard is None:
            primary = cells
            foreign: list[CellSpec] = []
        else:
            primary = [c for c in cells if c.shard == self.shard]
            foreign = [c for c in cells if c.shard != self.shard]
        sweeps = [(primary, False)]
        if self.steal_enabled:
            sweeps.append((primary + foreign, True))
        return sweeps

    def run(self) -> int:
        """Drain the spool; returns the number of cells this worker settled."""
        settled_by_me = 0
        sweeps = self._sweeps()
        self.publish_stats()
        while True:
            progress = False
            for cells, allow_steal in sweeps:
                for cell in cells:
                    if self.spool.stop_requested():
                        self.publish_stats("stopped")
                        return settled_by_me
                    if self._claim_and_run(cell, allow_steal=allow_steal):
                        settled_by_me += 1
                        progress = True
                        self.publish_stats()
                        if (self.max_cells is not None
                                and settled_by_me >= self.max_cells):
                            self.publish_stats("exited")
                            return settled_by_me
                if progress:
                    break  # rescan for fresh claims before stealing again
            if not self.spool.unsettled_keys():
                break
            if not progress:
                # Everything left is leased by live peers (or mid-expiry);
                # wait for settlements or TTL lapses.
                time.sleep(self.poll_s)
        self.publish_stats("exited")
        return settled_by_me


class _CellFailed(Exception):
    def __init__(self, attempts: int, error: str):
        super().__init__(error)
        self.attempts = attempts
        self.error = error


def run_worker(
    spool_dir: str | os.PathLike,
    *,
    worker_id: str | None = None,
    shard: int | None = None,
    steal: bool = True,
    poll_s: float = 0.25,
    max_cells: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> int:
    """Programmatic entry point (the coordinator's inline fallback)."""
    agent = WorkerAgent(WorkSpool(spool_dir), worker_id=worker_id,
                        shard=shard, steal=steal, poll_s=poll_s,
                        max_cells=max_cells, cache_dir=cache_dir)
    return agent.run()


def _detect_array_shard() -> Optional[int]:
    """Shard index from the batch scheduler's environment, if any."""
    for name in ("REPRO_SHARD", "SLURM_ARRAY_TASK_ID", "PBS_ARRAY_INDEX",
                 "SGE_TASK_ID"):
        value = os.environ.get(name)
        if value is not None and value.isdigit():
            return int(value)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="Pull-and-execute agent for a spooled campaign.")
    parser.add_argument("--spool", required=True, metavar="DIR",
                        help="the shared spool directory")
    parser.add_argument("--worker-id", default=None,
                        help="stable identity (default: <host>.<pid>)")
    parser.add_argument("--shard", type=int, default=None,
                        help="prefer this shard's cells (default: scheduler "
                             "env, else the whole spool)")
    parser.add_argument("--no-steal", action="store_true",
                        help="never take over expired peers' leases")
    parser.add_argument("--poll", type=float, default=0.25, metavar="SEC",
                        help="idle rescan interval (default %(default)s)")
    parser.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after settling N cells (testing)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="override the spool manifest's cache location")
    args = parser.parse_args(argv)

    shard = args.shard if args.shard is not None else _detect_array_shard()
    try:
        settled = run_worker(args.spool, worker_id=args.worker_id,
                             shard=shard, steal=not args.no_steal,
                             poll_s=args.poll, max_cells=args.max_cells,
                             cache_dir=args.cache_dir)
    except (OSError, RuntimeError) as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    print(json.dumps({"worker": args.worker_id or default_worker_id(),
                      "settled": settled}))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
