"""The ssh backend: stdlib-only multi-host campaign execution.

``repro campaign fig1 --backend ssh --hosts hosts.txt`` works like this:

1. the coordinator spools the cells that survived journal/cache triage
   into ``<campaign-dir>/spool`` (cells, pickled payload, lease TTL);
2. for every host in the hosts file it launches ``workers=N`` agents —
   ``ssh host python3 -m repro.dist.worker --spool ...`` for real hosts,
   plain subprocesses for the ``local`` pseudo-host (which is also how
   the CI smoke runs multi-worker campaigns without sshd);
3. workers lease cells, execute them, publish results to the shared
   content-addressed cache and settlement markers to the spool — a
   worker that dies mid-cell has its lease expire and the cell is stolen
   by a peer;
4. the coordinator folds settlement markers into the campaign journal
   and telemetry exactly once per cell, and if *every* worker dies with
   cells outstanding it finishes the spool itself inline, so the
   campaign always completes.

Assumptions (checked by ``repro hosts check``): the repository and the
campaign/cache directories are visible at the same absolute paths on
every host (shared filesystem), and host clocks agree to well within the
lease TTL.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.cache import ResultCache
from repro.dist.backend import (
    BackendRun,
    default_spool_dir,
    dist_obs_snapshot,
    drain_spool,
)
from repro.dist.hosts import HostSpec, parse_hosts_file
from repro.dist.spool import CellSpec, WorkSpool

__all__ = ["SshBackend", "launch_worker", "spool_cells"]


def _repro_pythonpath() -> str:
    """PYTHONPATH that makes ``repro`` importable in a bare interpreter —
    the package's parent (the checkout's ``src``), joined ahead of any
    inherited path."""
    import repro
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    inherited = os.environ.get("PYTHONPATH", "")
    return (f"{package_root}{os.pathsep}{inherited}" if inherited
            else package_root)


@dataclass
class WorkerProcess:
    """One launched agent and where it runs."""

    host: HostSpec
    index: int
    process: subprocess.Popen

    @property
    def label(self) -> str:
        return f"{self.host.name}/{self.index}"

    def alive(self) -> bool:
        return self.process.poll() is None


def launch_worker(host: HostSpec, spool_dir: Path, index: int,
                  *, poll_s: float = 0.25) -> WorkerProcess:
    """Start one agent on ``host`` (subprocess for ``local``, else ssh)."""
    worker_id = f"{host.name}-{index}-{os.getpid()}"
    argv = ["-m", "repro.dist.worker", "--spool", str(spool_dir.resolve()),
            "--worker-id", worker_id, "--poll", str(poll_s)]
    if host.is_local:
        env = dict(os.environ, PYTHONPATH=_repro_pythonpath())
        process = subprocess.Popen(
            [host.interpreter, *argv], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    else:
        remote = " ".join(
            shlex.quote(part)
            for part in ["env", f"PYTHONPATH={_repro_pythonpath()}",
                         host.interpreter, *argv])
        process = subprocess.Popen(
            ["ssh", "-o", "BatchMode=yes", *host.ssh_opts, host.name, remote],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return WorkerProcess(host=host, index=index, process=process)


def spool_cells(run: BackendRun, spool_dir: Path, *,
                shards: int | None = None) -> tuple[WorkSpool, ResultCache]:
    """Populate the spool for ``run`` and open the shared cache workers
    will publish into (the campaign cache, or a spool-local store when the
    campaign runs cacheless)."""
    cache_dir = run.cache_dir or str(spool_dir / "results")
    cache = run.cache if run.cache is not None else ResultCache(cache_dir)
    cells = [CellSpec(key=c.key, protocol=c.protocol, x=c.x, seed=c.seed)
             for c in run.cells]
    spool = WorkSpool.create(
        spool_dir, cells,
        payload={"run_one": run.run_one, "config": run.config,
                 "extra": dict(run.extra_kwargs)},
        campaign=run.runner_name,
        ttl_s=run.options.lease_ttl_s,
        max_retries=run.executor_config.max_retries,
        backoff_s=run.executor_config.backoff_s,
        observe=run.observe,
        cache_dir=cache_dir,
        shards=shards,
    )
    return spool, cache


class SshBackend:
    """Launch workers over ssh (or locally) and drain the spool."""

    name = "ssh"

    def __init__(self):
        self.workers: list[WorkerProcess] = []

    def _hosts(self, run: BackendRun) -> list[HostSpec]:
        if run.options.hosts_file:
            return parse_hosts_file(run.options.hosts_file)
        # No hosts file: the loopback topology — local agents sized like
        # the --workers flag.
        return [HostSpec("local",
                         workers=max(2, run.executor_config.max_workers))]

    def execute(self, run: BackendRun) -> dict:
        from repro.obs.logging import get_logger
        log = get_logger("dist").bind(backend=self.name)

        hosts = self._hosts(run)
        spool_dir = default_spool_dir(run)
        spool, cache = spool_cells(run, spool_dir)

        self.workers = [
            launch_worker(host, spool_dir, index,
                          poll_s=min(run.options.poll_s,
                                     run.options.lease_ttl_s / 4))
            for host in hosts
            for index in range(host.workers)
        ]
        log.info("workers_launched", count=len(self.workers),
                 hosts=[h.name for h in hosts], spool=str(spool_dir))

        launched = len(self.workers)

        def alive() -> bool:
            return any(worker.alive() for worker in self.workers)

        def fallback() -> None:
            # Every agent died with cells outstanding: the dead workers'
            # leases expire after the TTL, the inline pass steals them, and
            # the campaign still completes on the coordinator alone.
            log.warning("all_workers_dead_running_inline",
                        unsettled=len(spool.unsettled_keys()))
            from repro.dist.worker import run_worker
            run_worker(spool.directory, worker_id="coordinator-inline",
                       poll_s=run.options.poll_s)

        try:
            stats = drain_spool(spool, run, cache, alive=alive,
                                fallback=fallback)
        finally:
            self._shutdown(spool)

        died = sum(1 for w in self.workers
                   if (w.process.returncode or 0) != 0)
        stats.update({
            "backend": self.name,
            "spool": str(spool_dir),
            "hosts_file": run.options.hosts_file,
            "lease_ttl_s": run.options.lease_ttl_s,
            "workers_launched": launched,
            "workers_died": died,
        })
        stats["obs_snapshot"] = dist_obs_snapshot(stats)
        log.info("spool_drained", folded=stats["cells_folded"],
                 steals=stats["steals"], workers_died=died)
        return stats

    def _shutdown(self, spool: WorkSpool, grace_s: float = 5.0) -> None:
        spool.request_stop()
        deadline = time.monotonic() + grace_s
        for worker in self.workers:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.process.terminate()
                try:
                    worker.process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    worker.process.kill()
