"""The job-array backend: hand a campaign to any batch scheduler.

``repro campaign fig1 --backend job-array --shards 16`` does **not**
execute anything itself.  It spools the unsettled cells into sharded
manifests and emits two ready-to-submit array scripts::

    <campaign-dir>/spool/
      cells/shard-0000.json ... shard-0015.json
      submit_slurm.sh        sbatch submit_slurm.sh
      submit_pbs.sh          qsub submit_pbs.sh

Each array task runs ``python -m repro.dist.worker --spool ...``; the
worker reads its shard index from ``SLURM_ARRAY_TASK_ID`` /
``PBS_ARRAY_INDEX``, drains its own shard first, then steals strays from
shards whose task died or never started (at-least-once, idempotent
through the content-addressed cache — the same lease protocol as the ssh
backend, scheduler-agnostic by construction).

When the array has finished, re-run the same campaign command with
``--resume`` (any backend): every cell is now a cache hit and the
journal, telemetry and figures assemble without re-execution.  With
``--dist-wait`` the coordinator instead stays up and folds settlements
live as array tasks write them.
"""

from __future__ import annotations

import os
import stat
from pathlib import Path

from repro.dist.backend import (
    BackendRun,
    default_spool_dir,
    dist_obs_snapshot,
    drain_spool,
)
from repro.dist.spool import DEFAULT_SHARD_SIZE, WorkSpool

__all__ = ["JobArrayBackend", "write_submit_scripts"]

_SLURM_TEMPLATE = """\
#!/bin/sh
#SBATCH --job-name={name}
#SBATCH --array=0-{last_shard}
#SBATCH --output={spool}/logs/shard-%a.out
# Submit with: sbatch {script}
mkdir -p {spool}/logs
exec {python} -m repro.dist.worker --spool {spool} \\
    --shard "${{SLURM_ARRAY_TASK_ID}}"
"""

_PBS_TEMPLATE = """\
#!/bin/sh
#PBS -N {name}
#PBS -J 0-{last_shard}
#PBS -o {spool}/logs/
# Submit with: qsub {script}
mkdir -p {spool}/logs
exec {python} -m repro.dist.worker --spool {spool} \\
    --shard "${{PBS_ARRAY_INDEX}}"
"""


def write_submit_scripts(spool: WorkSpool, *, name: str,
                         python: str = "python3") -> list[Path]:
    """Emit SLURM and PBS array scripts next to the spool; returns paths."""
    shards = int(spool.manifest()["shards"])
    spool_path = str(spool.directory.resolve())
    written: list[Path] = []
    for filename, template in (("submit_slurm.sh", _SLURM_TEMPLATE),
                               ("submit_pbs.sh", _PBS_TEMPLATE)):
        path = spool.directory / filename
        path.write_text(template.format(
            name=name or "repro-campaign",
            last_shard=max(0, shards - 1),
            spool=spool_path,
            python=python,
            script=str(path.resolve()),
        ))
        path.chmod(path.stat().st_mode
                   | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
        written.append(path)
    return written


class JobArrayBackend:
    """Spool + scripts out; execution belongs to the batch scheduler."""

    name = "job-array"

    def execute(self, run: BackendRun) -> dict:
        from repro.dist.ssh import spool_cells

        spool_dir = default_spool_dir(run)
        shards = run.options.shards
        if shards is None:
            shards = max(1, -(-len(run.cells) // DEFAULT_SHARD_SIZE))
        spool, cache = spool_cells(run, spool_dir, shards=shards)
        scripts = write_submit_scripts(
            spool, name=f"repro-{(run.runner_name or 'campaign')[:24]}",
            python=os.environ.get("REPRO_REMOTE_PYTHON", "python3"))

        stats = {
            "backend": self.name,
            "spool": str(spool_dir),
            "shards": int(spool.manifest()["shards"]),
            "cells_spooled": len(run.cells),
            "scripts": [str(p) for p in scripts],
            "lease_ttl_s": run.options.lease_ttl_s,
        }
        if run.options.wait:
            # Fold settlements as external array tasks produce them.  No
            # process liveness to watch and no fallback: the scheduler owns
            # execution, we just wait.
            stats.update(drain_spool(spool, run, cache))
            stats["obs_snapshot"] = dist_obs_snapshot(stats)
        else:
            stats["cells_folded"] = 0
            stats["pending"] = True
        return stats
