"""Dist smoke gate: multi-worker campaign survives a worker SIGKILL.

Run in CI as ``python -m repro.dist.smoke``.  End to end, on a real (small)
fig1 grid with a shared temp spool and cache:

1. start a campaign on the ssh backend's loopback topology — two
   ``python -m repro.dist.worker`` subprocesses, no sshd involved;
2. the moment one worker holds a live lease, SIGKILL it mid-cell;
3. assert the sweep still completes: every cell settled exactly once in
   the journal, every result present in the shared cache, at least one
   lease steal and one dead worker reported in the dist telemetry;
4. re-run the same campaign against the same cache and assert a 100%
   cache-hit replay with results identical to the first pass.

Exit status 0 on success; 1 with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.campaign import run_campaign
from repro.dist.backend import BackendRun, DistOptions  # noqa: F401 - api check
from repro.dist.ssh import SshBackend
from repro.experiments.fig1_ssaf import Fig1Config, run_one

#: Six small-but-real fig1 cells: enough parallelism for two workers and a
#: steal, small enough for CI.
SMOKE_CONFIG = Fig1Config(
    n_nodes=12, terrain_m=300.0, n_connections=3,
    intervals_s=(1.0,), duration_s=2.0,
    seeds=(1, 2, 3, 4, 5, 6), protocols=("ssaf",),
)
PROTOCOLS = SMOKE_CONFIG.protocols
XS = SMOKE_CONFIG.intervals_s
SEEDS = SMOKE_CONFIG.seeds
LEASE_TTL_S = 3.0


def _fail(message: str) -> int:
    print(f"dist-smoke: FAIL — {message}", file=sys.stderr)
    return 1


class _Assassin(threading.Thread):
    """Waits until one worker holds a live lease, then SIGKILLs it."""

    def __init__(self, backend: SshBackend, spool_dir: Path):
        super().__init__(daemon=True)
        self.backend = backend
        self.spool_dir = spool_dir
        self.killed_worker = None

    def run(self) -> None:
        deadline = time.monotonic() + 60.0
        leases = self.spool_dir / "leases"
        while time.monotonic() < deadline:
            victim = None
            for path in leases.glob("*.json") if leases.is_dir() else ():
                try:
                    owner = json.loads(path.read_text()).get("worker", "")
                except (OSError, ValueError):
                    continue
                for worker in self.backend.workers:
                    wid = f"{worker.host.name}-{worker.index}-{os.getpid()}"
                    if owner == wid and worker.alive():
                        victim = worker
                        break
                if victim is not None:
                    break
            if victim is not None:
                victim.process.send_signal(signal.SIGKILL)
                self.killed_worker = victim.label
                print(f"dist-smoke: SIGKILLed worker {victim.label} "
                      "mid-lease")
                return
            time.sleep(0.05)


def run_smoke() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-dist-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        campaign_dir = os.path.join(tmp, "campaign")
        spool_dir = Path(campaign_dir) / "spool"

        backend = SshBackend()
        assassin = _Assassin(backend, spool_dir)
        # The assassin polls from a side thread so run_campaign below stays
        # one blocking call; it fires as soon as a worker holds a lease.
        assassin.start()

        total = len(PROTOCOLS) * len(XS) * len(SEEDS)
        print(f"dist-smoke: campaign of {total} cells on 2 loopback workers "
              f"(lease TTL {LEASE_TTL_S:.0f}s)")
        outcome = run_campaign(
            run_one,
            protocols=PROTOCOLS, xs=XS, seeds=SEEDS, config=SMOKE_CONFIG,
            cache_dir=cache_dir, campaign_dir=campaign_dir,
            workers=2, backend=backend,
            dist_options=DistOptions(lease_ttl_s=LEASE_TTL_S, poll_s=0.1),
        )
        assassin.join(timeout=5.0)

        if assassin.killed_worker is None:
            return _fail("assassin never found a leased worker to kill")
        if outcome.quarantined:
            return _fail(f"cells quarantined: {outcome.quarantined}")

        done = sum(1 for r in outcome.records.values() if r.status == "done")
        if done != total:
            return _fail(f"only {done}/{total} cells settled")
        per_key = [r for r in outcome.records.values() if r.status == "done"]
        if len({r.key for r in per_key}) != total:
            return _fail("journal double-counted a cell")

        dist = outcome.summary.get("dist") or {}
        if dist.get("workers_died", 0) < 1:
            return _fail(f"no dead worker reported: {dist}")
        if dist.get("steals", 0) < 1 and not dist.get("inline_fallback"):
            return _fail(f"kill produced neither a steal nor an inline "
                         f"fallback: {dist}")
        print(f"dist-smoke: steals={dist.get('steals')} "
              f"heartbeats={dist.get('heartbeats')} "
              f"workers_died={dist.get('workers_died')} "
              f"inline_fallback={dist.get('inline_fallback')}")

        # Every result must be in the shared cache: replay is 100% hits.
        replay = run_campaign(
            run_one,
            protocols=PROTOCOLS, xs=XS, seeds=SEEDS, config=SMOKE_CONFIG,
            cache_dir=cache_dir,
        )
        if replay.summary["cache_hits"] != total:
            return _fail(f"replay was not all cache hits: "
                         f"{replay.summary['cache_hits']}/{total}")
        from repro.stats.series import METRIC_FIELDS
        for protocol in PROTOCOLS:
            first = outcome.results[protocol]
            second = replay.results[protocol]
            for metric in METRIC_FIELDS:
                if first.curve(metric) != second.curve(metric):
                    return _fail(f"replay diverged from the live run for "
                                 f"{protocol}/{metric}")

        print("dist-smoke: PASS — campaign survived the kill, "
              "replay all-cache-hit and identical")
        return 0


def main() -> int:
    return run_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
