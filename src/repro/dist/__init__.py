"""Distributed campaign execution.

The campaign runner settles sweep cells through an
:class:`~repro.dist.backend.ExecutionBackend`; this package holds the
backend protocol plus the three built-in implementations:

* ``local-pool`` — today's in-process :class:`FaultTolerantExecutor`
  (the default; behavior-identical to the pre-backend runner);
* ``ssh`` — stdlib-only multi-host execution: ``python -m
  repro.dist.worker`` agents launched over ssh (or directly for the
  ``local`` pseudo-host) pull cells from a filesystem spool shared
  through the campaign directory;
* ``job-array`` — emit sharded manifests plus SLURM/PBS-compatible
  array scripts so any batch scheduler can run the shards.

Coordination is leaderless, in the spirit of the paper's local leader
election: workers claim cells by creating expiring lease files
(atomic-rename claims, TTL heartbeats) and a worker that dies mid-cell
has its lease expire and its cell stolen by a peer — renew or be
replaced.  Execution is at-least-once but results are idempotent through
the content-addressed cache, so a stolen cell never double-counts.

See ``docs/DISTRIBUTED.md``.
"""

from repro.dist.backend import (
    BackendRun,
    DistOptions,
    ExecutionBackend,
    LocalPoolBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.dist.hosts import HostSpec, check_hosts, parse_hosts_file
from repro.dist.lease import Lease, LeaseDir, LeaseInfo
from repro.dist.spool import CellSpec, WorkSpool

__all__ = [
    "BackendRun",
    "CellSpec",
    "DistOptions",
    "ExecutionBackend",
    "HostSpec",
    "Lease",
    "LeaseDir",
    "LeaseInfo",
    "LocalPoolBackend",
    "WorkSpool",
    "backend_names",
    "check_hosts",
    "get_backend",
    "parse_hosts_file",
    "register_backend",
]
