"""The work spool: a campaign's cells, claims, and outcomes on shared disk.

A spool is one directory (by default ``<campaign-dir>/spool``) that a
coordinator populates and any number of workers — local subprocesses, ssh
agents, batch-array shards — drain concurrently::

    <spool>/
      spool.json            grid size, lease TTL, retry policy, cache dir
      payload.pkl           pickled {run_one, config, extra, observe}
      cells/shard-0000.json sharded cell manifests [{key, protocol, x, seed}]
      leases/<key>.json     expiring claims (see repro.dist.lease)
      done/<key>.json       settlement markers: attempts, wall_s, worker,
                            optional obs snapshot
      failed/<key>.json     quarantine markers: attempts, error, worker
      workers/<id>.json     per-worker liveness + counters (heartbeats,
                            steals, cells done), rewritten periodically
      STOP                  presence tells workers to exit

Settlement markers, worker stats and the manifest are all written
atomically (temp + ``os.replace``), so readers on other hosts never see a
torn file.  Results themselves do *not* live in the spool: workers put
them in the shared content-addressed :class:`~repro.campaign.cache.ResultCache`,
which is what makes at-least-once execution (a stolen cell may run twice)
idempotent — both executions write identical bytes under the same key.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.dist.lease import LeaseDir

__all__ = ["CellSpec", "WorkSpool", "DEFAULT_SHARD_SIZE", "live_spool_keys"]

#: Cells per shard manifest — small enough that a batch-array shard is a
#: sensible work unit, large enough that a million-cell campaign stays at
#: a few thousand manifest files.
DEFAULT_SHARD_SIZE = 500


@dataclass(frozen=True)
class CellSpec:
    """One spooled cell: its content address and grid coordinates."""

    key: str
    protocol: str
    x: float
    seed: int
    shard: int = 0

    def to_dict(self) -> dict:
        return {"key": self.key, "protocol": self.protocol,
                "x": self.x, "seed": self.seed, "shard": self.shard}

    @classmethod
    def from_dict(cls, payload: dict) -> "CellSpec":
        return cls(key=payload["key"], protocol=payload["protocol"],
                   x=payload["x"], seed=payload["seed"],
                   shard=int(payload.get("shard", 0)))


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class WorkSpool:
    """Coordinator- and worker-side view of one spool directory."""

    MANIFEST = "spool.json"
    PAYLOAD = "payload.pkl"
    STOP = "STOP"

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory).expanduser()
        self.cells_dir = self.directory / "cells"
        self.leases_dir = self.directory / "leases"
        self.done_dir = self.directory / "done"
        self.failed_dir = self.directory / "failed"
        self.workers_dir = self.directory / "workers"
        self._cells: Optional[list[CellSpec]] = None
        self._manifest: Optional[dict] = None

    # -------------------------------------------------------------- creation

    @classmethod
    def create(
        cls,
        directory: str | os.PathLike,
        cells: Iterable[CellSpec],
        payload: dict,
        *,
        campaign: str = "",
        ttl_s: float = 30.0,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        observe: bool = False,
        cache_dir: str | os.PathLike | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        shards: int | None = None,
    ) -> "WorkSpool":
        """Populate a fresh spool.  ``payload`` is pickled verbatim; it must
        hold everything a worker needs to execute a cell (``run_one``,
        ``config``, ``extra``).  An existing spool at ``directory`` is
        reset — settled markers from a previous attempt are discarded
        (the cache, not the spool, is the durable layer)."""
        spool = cls(directory)
        spool.reset()
        for sub in (spool.cells_dir, spool.leases_dir, spool.done_dir,
                    spool.failed_dir, spool.workers_dir):
            sub.mkdir(parents=True, exist_ok=True)

        cells = list(cells)
        if shards is not None and shards > 0:
            shard_size = max(1, -(-len(cells) // shards))
        sharded: list[list[CellSpec]] = []
        for i in range(0, len(cells), max(1, shard_size)):
            shard_index = len(sharded)
            sharded.append([
                CellSpec(key=c.key, protocol=c.protocol, x=c.x, seed=c.seed,
                         shard=shard_index)
                for c in cells[i:i + max(1, shard_size)]
            ])
        for index, shard in enumerate(sharded):
            _atomic_write(spool.cells_dir / f"shard-{index:04d}.json",
                          json.dumps([c.to_dict() for c in shard]))

        with open(spool.directory / cls.PAYLOAD, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

        manifest = {
            "campaign": campaign,
            "total_cells": len(cells),
            "shards": len(sharded),
            "ttl_s": float(ttl_s),
            "max_retries": int(max_retries),
            "backoff_s": float(backoff_s),
            "observe": bool(observe),
            "cache_dir": str(Path(cache_dir).absolute()) if cache_dir else None,
            "created_at": time.time(),
        }
        _atomic_write(spool.directory / cls.MANIFEST,
                      json.dumps(manifest, sort_keys=True, indent=1))
        return spool

    def reset(self) -> None:
        """Clear every spool artifact (markers, leases, manifests)."""
        import shutil
        if self.directory.is_dir():
            shutil.rmtree(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ worker side

    def manifest(self) -> dict:
        if self._manifest is None:
            self._manifest = json.loads(
                (self.directory / self.MANIFEST).read_text())
        return self._manifest

    def load_payload(self) -> dict:
        with open(self.directory / self.PAYLOAD, "rb") as handle:
            return pickle.load(handle)

    def cells(self) -> list[CellSpec]:
        """Every spooled cell, shard manifests concatenated in order."""
        if self._cells is None:
            specs: list[CellSpec] = []
            for path in sorted(self.cells_dir.glob("shard-*.json")):
                specs.extend(CellSpec.from_dict(entry)
                             for entry in json.loads(path.read_text()))
            self._cells = specs
        return self._cells

    def lease_dir(self, worker_id: str, ttl_s: float | None = None) -> LeaseDir:
        ttl = float(self.manifest()["ttl_s"]) if ttl_s is None else ttl_s
        return LeaseDir(self.leases_dir, worker_id, ttl_s=ttl)

    # ----------------------------------------------------------- settlements

    def _marker(self, directory: Path, key: str) -> Path:
        return directory / f"{key}.json"

    def mark_done(self, key: str, record: dict) -> None:
        _atomic_write(self._marker(self.done_dir, key),
                      json.dumps(record, sort_keys=True))

    def mark_failed(self, key: str, record: dict) -> None:
        _atomic_write(self._marker(self.failed_dir, key),
                      json.dumps(record, sort_keys=True))

    def is_settled(self, key: str) -> bool:
        return (self._marker(self.done_dir, key).is_file()
                or self._marker(self.failed_dir, key).is_file())

    def read_done(self, key: str) -> Optional[dict]:
        return self._read_marker(self.done_dir, key)

    def read_failed(self, key: str) -> Optional[dict]:
        return self._read_marker(self.failed_dir, key)

    def _read_marker(self, directory: Path, key: str) -> Optional[dict]:
        try:
            return json.loads(self._marker(directory, key).read_text())
        except (OSError, ValueError):
            return None

    def done_keys(self) -> set[str]:
        return {p.stem for p in self.done_dir.glob("*.json")}

    def failed_keys(self) -> set[str]:
        return {p.stem for p in self.failed_dir.glob("*.json")}

    def settled_keys(self) -> set[str]:
        return self.done_keys() | self.failed_keys()

    def unsettled_keys(self) -> set[str]:
        return {c.key for c in self.cells()} - self.settled_keys()

    def all_settled(self) -> bool:
        return not self.unsettled_keys()

    def in_flight_keys(self) -> set[str]:
        """Keys a live (unexpired) lease currently covers but that are not
        yet settled — the set a cache gc must never evict from under a
        running campaign."""
        ttl = float(self.manifest().get("ttl_s", 30.0))
        leases = LeaseDir(self.leases_dir, worker_id="gc-scan", ttl_s=ttl)
        return leases.live_keys() - self.settled_keys()

    # ------------------------------------------------------------- stop flag

    def request_stop(self) -> None:
        _atomic_write(self.directory / self.STOP, "stop\n")

    def stop_requested(self) -> bool:
        return (self.directory / self.STOP).is_file()

    # ----------------------------------------------------------- worker stats

    def write_worker_stats(self, worker_id: str, stats: dict) -> None:
        _atomic_write(self.workers_dir / f"{worker_id}.json",
                      json.dumps(stats, sort_keys=True))

    def worker_stats(self) -> list[dict]:
        stats = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                stats.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue
        return stats


def live_spool_keys(directory: str | os.PathLike) -> set[str]:
    """Cell keys a running campaign still depends on: live-leased plus
    unsettled.  ``directory`` may be a spool or a campaign directory
    containing ``spool/``; anything without a spool manifest yields the
    empty set.  This is what ``repro cache gc --campaign-dir`` protects."""
    root = Path(directory).expanduser()
    for candidate in (root, root / "spool"):
        if (candidate / WorkSpool.MANIFEST).is_file():
            spool = WorkSpool(candidate)
            try:
                return spool.in_flight_keys() | spool.unsettled_keys()
            except (OSError, ValueError):
                return set()
    return set()
