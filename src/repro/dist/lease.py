"""Expiring, stealable work leases over a shared filesystem.

A lease is one file: ``<leases>/<key>.json``.  Ownership protocol — the
renew-or-be-replaced shape the paper's election protocol uses for
coordinators, transplanted onto POSIX rename atomicity:

* **claim** — write the lease payload to a private temp file, then
  ``os.link`` it to the lease path.  ``link`` fails with ``EEXIST`` if
  any other worker holds the lease, and the winner's payload is visible
  in full from the first instant (no torn half-written lease is ever
  observable).
* **renew** (heartbeat) — atomically rewrite the payload via temp +
  ``os.replace``, bumping the file mtime.  Expiry is judged *only* by
  mtime + TTL, so an unreadable payload can never wedge a cell — worst
  case it expires and is stolen.
* **steal** — if ``now - mtime > ttl`` the owner is presumed dead.  The
  stealer first ``os.rename``\\ s the stale lease aside to a private
  tombstone (two racing stealers: exactly one rename succeeds, the loser
  gets ``FileNotFoundError``), then claims fresh with the epoch bumped.
  Between the rename and the re-claim the lease path is briefly absent,
  so a third worker may fresh-claim it first — still exactly one owner.
* **release** — unlink, but only after re-reading the payload and
  checking it is still ours (same worker, same epoch).  The check-then-
  unlink race is benign: the victim of a mistaken unlink just loses its
  lease to the next claimer, who then sees the done marker and skips.

Because expiry compares a *local* clock against an mtime stamped by
whichever host last renewed, wall-clock skew between hosts eats directly
into the TTL — ``repro hosts check`` measures and warns about exactly
this.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["Lease", "LeaseDir", "LeaseInfo", "default_worker_id"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}.{os.getpid()}"


@dataclass(frozen=True)
class LeaseInfo:
    """Decoded lease payload (advisory; expiry is judged by file mtime)."""

    key: str
    worker: str
    host: str
    pid: int
    epoch: int
    acquired_at: float
    ttl_s: float
    heartbeats: int = 0

    def to_dict(self) -> dict:
        return {
            "key": self.key, "worker": self.worker, "host": self.host,
            "pid": self.pid, "epoch": self.epoch,
            "acquired_at": self.acquired_at, "ttl_s": self.ttl_s,
            "heartbeats": self.heartbeats,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LeaseInfo":
        return cls(
            key=str(payload["key"]), worker=str(payload["worker"]),
            host=str(payload.get("host", "?")),
            pid=int(payload.get("pid", 0)), epoch=int(payload.get("epoch", 0)),
            acquired_at=float(payload.get("acquired_at", 0.0)),
            ttl_s=float(payload.get("ttl_s", 0.0)),
            heartbeats=int(payload.get("heartbeats", 0)),
        )


class LeaseDir:
    """All lease operations for one worker over one shared directory."""

    def __init__(self, directory: str | os.PathLike, worker_id: str,
                 ttl_s: float = 30.0):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id
        self.ttl_s = float(ttl_s)
        self.host = socket.gethostname()
        #: Steal attempts lost to a racing worker (telemetry).
        self.lost_steals = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------- inspection

    def info(self, key: str) -> Optional[LeaseInfo]:
        try:
            payload = json.loads(self._path(key).read_text())
            return LeaseInfo.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def mtime(self, key: str) -> Optional[float]:
        try:
            return self._path(key).stat().st_mtime
        except OSError:
            return None

    def is_expired(self, key: str, *, now: float | None = None) -> bool:
        """True if a lease file exists and its TTL has lapsed."""
        mtime = self.mtime(key)
        if mtime is None:
            return False
        return (time.time() if now is None else now) - mtime > self.ttl_s

    def live_keys(self, *, now: float | None = None) -> set[str]:
        """Keys with an unexpired lease on disk (any owner)."""
        now = time.time() if now is None else now
        live: set[str] = set()
        for path in self.directory.glob("*.json"):
            try:
                if now - path.stat().st_mtime <= self.ttl_s:
                    live.add(path.stem)
            except OSError:  # released while scanning
                continue
        return live

    # ------------------------------------------------------------ acquisition

    def _write_lease(self, key: str, epoch: int) -> Optional["Lease"]:
        info = LeaseInfo(key=key, worker=self.worker_id, host=self.host,
                         pid=os.getpid(), epoch=epoch,
                         acquired_at=time.time(), ttl_s=self.ttl_s)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".claim-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(info.to_dict(), sort_keys=True))
            try:
                os.link(tmp, path)
            except FileExistsError:
                return None
            return Lease(self, info)
        finally:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - unlink-after-link races
                pass

    def claim(self, key: str) -> Optional["Lease"]:
        """Claim an unleased key; None if anyone (alive or dead) holds it."""
        return self._write_lease(key, epoch=0)

    def steal(self, key: str, *, now: float | None = None) -> Optional["Lease"]:
        """Take over an *expired* lease; None if it is live or we lost the
        steal race."""
        if not self.is_expired(key, now=now):
            return None
        path = self._path(key)
        old = self.info(key)
        tomb = self.directory / f".steal-{self.worker_id}-{key[:16]}"
        try:
            os.rename(path, tomb)
        except OSError:  # lost the race (or the owner released/renewed)
            self.lost_steals += 1
            return None
        try:
            os.unlink(tomb)
        except OSError:  # pragma: no cover - tombstone cleanup best-effort
            pass
        epoch = (old.epoch + 1) if old is not None else 1
        lease = self._write_lease(key, epoch=epoch)
        if lease is None:
            # A third worker fresh-claimed between our rename and link.
            self.lost_steals += 1
            return None
        lease.stolen = True
        return lease

    def acquire(self, key: str) -> Optional["Lease"]:
        """Claim, or failing that steal if the current lease has expired."""
        lease = self.claim(key)
        if lease is not None:
            return lease
        return self.steal(key)


class Lease:
    """One held lease: renewable, releasable, heartbeat-countable."""

    def __init__(self, leases: LeaseDir, info: LeaseInfo):
        self._leases = leases
        self.info = info
        self.key = info.key
        self.stolen = False
        self.heartbeats = 0
        #: Set when a renew discovers the lease now belongs to someone else.
        self.lost = False

    @property
    def path(self) -> Path:
        return self._leases._path(self.key)

    def _is_mine(self) -> bool:
        current = self._leases.info(self.key)
        return (current is not None
                and current.worker == self.info.worker
                and current.epoch == self.info.epoch)

    def renew(self) -> bool:
        """Heartbeat: atomically rewrite the payload, bumping mtime.
        Returns False (and flags ``lost``) if the lease was stolen."""
        if self.lost or not self._is_mine():
            self.lost = True
            return False
        self.heartbeats += 1
        payload = dict(self.info.to_dict(), heartbeats=self.heartbeats)
        fd, tmp = tempfile.mkstemp(dir=self._leases.directory, prefix=".renew-")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def release(self) -> None:
        """Drop the lease if it is still ours."""
        if self._is_mine():
            try:
                os.unlink(self.path)
            except OSError:
                pass


class HeartbeatThread(threading.Thread):
    """Renews a lease every ``interval_s`` (default TTL/3) while a cell
    executes; stops renewing the moment the lease is lost."""

    def __init__(self, lease: Lease, interval_s: float | None = None):
        super().__init__(daemon=True, name=f"lease-heartbeat-{lease.key[:8]}")
        self.lease = lease
        self.interval_s = (interval_s if interval_s is not None
                           else max(0.05, lease.info.ttl_s / 3.0))
        # NB: not named _stop — threading.Thread has an internal _stop().
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via workers
        while not self._halt.wait(self.interval_s):
            if not self.lease.renew():
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)
