"""Hosts-file parsing and the ``repro hosts check`` preflight.

Hosts-file format — one host per line, ``#`` comments, ``key=value``
options after the name::

    # host            options
    local             workers=2
    node-a.cluster    workers=8 python=/opt/py312/bin/python3
    node-b.cluster    workers=8 ssh_opts="-p 2222 -i ~/.ssh/cluster"

* ``local`` is a pseudo-host: workers are plain subprocesses, no ssh —
  also how CI runs the multi-worker smoke without sshd.
* ``workers`` — agents to launch on that host (default 1).
* ``python`` — interpreter for the worker (default: the coordinator's
  ``sys.executable`` for ``local``, ``python3`` over ssh).
* ``ssh_opts`` — extra ssh arguments, shell-quoted as one value.

The preflight checks, per host: reachability, python version (>= the
package floor), that the shared directory is writable *from that host*,
and wall-clock skew against the coordinator (measured with an RTT/2
correction).  Skew matters because lease expiry compares a local clock
against an mtime stamped by another host — skew eats directly into the
lease TTL, so skew beyond 25% of the TTL draws a warning.
"""

from __future__ import annotations

import argparse
import json
import shlex
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["HostSpec", "HostCheck", "parse_hosts_file", "parse_hosts_text",
           "check_hosts", "main"]

#: Interpreter floor for remote workers (matches pyproject requires-python).
MIN_PYTHON = (3, 10)

#: The snippet a probe runs on each host: report interpreter + clock, and
#: prove the shared dir is writable by creating and removing a temp file.
_PROBE = r"""
import json, os, sys, tempfile, time
shared = sys.argv[1] if len(sys.argv) > 1 else ""
writable = None
if shared:
    try:
        fd, path = tempfile.mkstemp(dir=shared, prefix=".hostcheck-")
        os.close(fd)
        os.unlink(path)
        writable = True
    except OSError:
        writable = False
print(json.dumps({"python": list(sys.version_info[:3]),
                  "time": time.time(), "writable": writable}))
"""


@dataclass(frozen=True)
class HostSpec:
    """One line of a hosts file."""

    name: str
    workers: int = 1
    python: Optional[str] = None
    ssh_opts: tuple[str, ...] = ()

    @property
    def is_local(self) -> bool:
        """The ``local`` pseudo-host runs workers without ssh."""
        return self.name == "local"

    @property
    def interpreter(self) -> str:
        if self.python:
            return self.python
        return sys.executable if self.is_local else "python3"


def parse_hosts_text(text: str, origin: str = "<hosts>") -> list[HostSpec]:
    hosts: list[HostSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            raise ValueError(f"{origin}:{lineno}: {exc}") from None
        name, options = tokens[0], tokens[1:]
        workers, python, ssh_opts = 1, None, ()
        for option in options:
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(
                    f"{origin}:{lineno}: expected key=value, got {option!r}")
            if key == "workers":
                try:
                    workers = int(value)
                except ValueError:
                    raise ValueError(
                        f"{origin}:{lineno}: workers={value!r} is not an "
                        "integer") from None
                if workers < 1:
                    raise ValueError(f"{origin}:{lineno}: workers must be >= 1")
            elif key == "python":
                python = value
            elif key == "ssh_opts":
                ssh_opts = tuple(shlex.split(value))
            else:
                raise ValueError(
                    f"{origin}:{lineno}: unknown host option {key!r} "
                    "(known: workers python ssh_opts)")
        hosts.append(HostSpec(name=name, workers=workers, python=python,
                              ssh_opts=ssh_opts))
    if not hosts:
        raise ValueError(f"{origin}: no hosts defined")
    return hosts


def parse_hosts_file(path: str) -> list[HostSpec]:
    with open(path) as handle:
        return parse_hosts_text(handle.read(), origin=path)


# --------------------------------------------------------------------------
# Preflight.


@dataclass
class HostCheck:
    """Outcome of one host's preflight probe."""

    host: HostSpec
    ok: bool = False
    error: str = ""
    python_version: Optional[tuple] = None
    skew_s: Optional[float] = None
    rtt_s: Optional[float] = None
    writable: Optional[bool] = None
    warnings: list[str] = field(default_factory=list)


def probe_command(host: HostSpec, shared_dir: str | None) -> list[str]:
    """The argv that runs the probe snippet on ``host``."""
    inner = [host.interpreter, "-c", _PROBE]
    if shared_dir:
        inner.append(shared_dir)
    if host.is_local:
        return inner
    remote = " ".join(shlex.quote(part) for part in inner)
    return ["ssh", "-o", "BatchMode=yes", "-o", "ConnectTimeout=10",
            *host.ssh_opts, host.name, remote]


def check_host(host: HostSpec, *, shared_dir: str | None = None,
               lease_ttl_s: float = 30.0,
               timeout_s: float = 30.0) -> HostCheck:
    result = HostCheck(host=host)
    command = probe_command(host, shared_dir)
    sent_at = time.time()
    try:
        proc = subprocess.run(command, capture_output=True, text=True,
                              timeout=timeout_s)
    except (subprocess.TimeoutExpired, OSError) as exc:
        result.error = f"unreachable: {exc!r}"
        return result
    received_at = time.time()
    if proc.returncode != 0:
        stderr = proc.stderr.strip().splitlines()
        result.error = (f"probe exited {proc.returncode}"
                        + (f": {stderr[-1]}" if stderr else ""))
        return result
    try:
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        result.error = f"unparsable probe output: {proc.stdout!r}"
        return result

    result.ok = True
    result.rtt_s = received_at - sent_at
    result.python_version = tuple(payload.get("python", ()))
    result.writable = payload.get("writable")
    # RTT/2 correction: the remote clock was read roughly mid-flight.
    remote_time = float(payload.get("time", 0.0))
    result.skew_s = remote_time - (sent_at + received_at) / 2.0

    if result.python_version and tuple(result.python_version[:2]) < MIN_PYTHON:
        version = ".".join(str(v) for v in result.python_version)
        result.warnings.append(
            f"python {version} < required "
            f"{'.'.join(str(v) for v in MIN_PYTHON)}")
    if shared_dir is not None and result.writable is False:
        result.ok = False
        result.error = f"shared dir {shared_dir} not writable from host"
    skew_budget = max(1.0, 0.25 * lease_ttl_s)
    if result.skew_s is not None and abs(result.skew_s) > skew_budget:
        result.warnings.append(
            f"clock skew {result.skew_s:+.2f}s exceeds {skew_budget:.1f}s "
            f"(25% of the {lease_ttl_s:.0f}s lease TTL) — stale leases may "
            "be stolen early or held too long; fix NTP or raise --lease-ttl")
    return result


def check_hosts(hosts: list[HostSpec], *, shared_dir: str | None = None,
                lease_ttl_s: float = 30.0,
                timeout_s: float = 30.0) -> list[HostCheck]:
    return [check_host(host, shared_dir=shared_dir, lease_ttl_s=lease_ttl_s,
                       timeout_s=timeout_s) for host in hosts]


def format_checks(checks: list[HostCheck]) -> str:
    lines = [f"{'host':<24} {'workers':>7} {'python':>8} {'skew':>9} "
             f"{'rtt':>7}  status"]
    for check in checks:
        host = check.host
        version = (".".join(str(v) for v in check.python_version)
                   if check.python_version else "?")
        skew = f"{check.skew_s:+.3f}s" if check.skew_s is not None else "?"
        rtt = f"{check.rtt_s * 1e3:.0f}ms" if check.rtt_s is not None else "?"
        status = "ok" if check.ok else f"FAIL ({check.error})"
        if check.ok and check.warnings:
            status = "ok, WARN"
        lines.append(f"{host.name:<24} {host.workers:>7} {version:>8} "
                     f"{skew:>9} {rtt:>7}  {status}")
        for warning in check.warnings:
            lines.append(f"    warning: {warning}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments hosts",
        description="Preflight the hosts file for a distributed campaign.")
    sub = parser.add_subparsers(dest="command", required=True)
    p_check = sub.add_parser("check", help="probe every host: reachability, "
                             "python version, shared-dir writability, clock "
                             "skew")
    p_check.add_argument("--hosts", required=True, metavar="FILE",
                         help="hosts file (see docs/DISTRIBUTED.md)")
    p_check.add_argument("--shared-dir", default=None, metavar="DIR",
                         help="shared directory every host must be able to "
                              "write (e.g. the campaign/cache root)")
    p_check.add_argument("--lease-ttl", type=float, default=30.0,
                         metavar="SEC",
                         help="lease TTL the skew warning is scaled to "
                              "(default %(default)s)")
    p_check.add_argument("--timeout", type=float, default=30.0, metavar="SEC",
                         help="per-host probe timeout (default %(default)s)")
    p_check.add_argument("--json", action="store_true",
                         help="emit machine-readable results")
    args = parser.parse_args(argv)

    try:
        hosts = parse_hosts_file(args.hosts)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    checks = check_hosts(hosts, shared_dir=args.shared_dir,
                         lease_ttl_s=args.lease_ttl, timeout_s=args.timeout)
    if args.json:
        print(json.dumps([{
            "host": c.host.name, "workers": c.host.workers, "ok": c.ok,
            "error": c.error, "python": list(c.python_version or ()),
            "skew_s": c.skew_s, "rtt_s": c.rtt_s, "writable": c.writable,
            "warnings": c.warnings,
        } for c in checks], indent=1))
    else:
        print(format_checks(checks))
    return 0 if all(c.ok for c in checks) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
