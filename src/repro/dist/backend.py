"""The execution backend protocol and the local-pool reference backend.

:func:`repro.campaign.runner.run_campaign` no longer hardwires a process
pool: after the journal/cache triage it hands the cells that actually
need execution to an :class:`ExecutionBackend`.  A backend settles every
cell — each either succeeds (``run.on_success``) or is quarantined
(``run.on_quarantine``) — and returns a JSON-safe stats dict that lands
in the campaign summary under ``"dist"``.

``local-pool`` wraps the existing
:class:`~repro.campaign.executor.FaultTolerantExecutor` with exactly the
arguments the runner used to build inline, so a campaign run through it
is bit-identical to the pre-backend runner.  The distributed backends
(``ssh``, ``job-array``) live in :mod:`repro.dist.ssh` and
:mod:`repro.dist.job_array`; both coordinate through a
:class:`~repro.dist.spool.WorkSpool` and share :func:`drain_spool`, the
coordinator loop that folds settlement markers back into the campaign's
journal, cache accounting, and telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Protocol, runtime_checkable

from repro.campaign.cache import ResultCache
from repro.campaign.executor import (
    Cell,
    CellFailure,
    ExecutorConfig,
    FaultTolerantExecutor,
    ObservedResult,
    ObservedRunner,
)
from repro.dist.spool import WorkSpool

__all__ = [
    "BackendRun",
    "DistOptions",
    "ExecutionBackend",
    "LocalPoolBackend",
    "backend_names",
    "drain_spool",
    "get_backend",
    "register_backend",
]


@dataclass(frozen=True)
class DistOptions:
    """Distribution knobs forwarded from the CLI to the backend."""

    #: Hosts file for the ssh backend (see docs/DISTRIBUTED.md); ``None``
    #: means one ``local`` pseudo-host running ``workers`` agents.
    hosts_file: Optional[str] = None
    #: Lease TTL — how long a silent worker keeps a cell before a peer
    #: steals it.  The distributed analogue of ``--timeout``.
    lease_ttl_s: float = 30.0
    #: Shard count for the job-array backend (default: one per ~500 cells).
    shards: Optional[int] = None
    #: Where to put the spool; default ``<campaign-dir>/spool``.
    spool_dir: Optional[str] = None
    #: Coordinator poll interval while waiting on workers.
    poll_s: float = 0.25
    #: job-array: block until externally-run shards settle the spool.
    wait: bool = False


@dataclass
class BackendRun:
    """Everything a backend needs to settle a batch of cells."""

    run_one: Callable
    config: Any
    extra_kwargs: Mapping
    cells: list[Cell]
    executor_config: ExecutorConfig
    on_success: Callable[[Cell, Any, int, float], None]
    on_quarantine: Callable[[CellFailure], None]
    on_retry: Optional[Callable[[Cell, int, str], None]] = None
    observe: bool = False
    runner_name: str = ""
    cache: Optional[ResultCache] = None
    cache_dir: Optional[str] = None
    campaign_dir: Optional[str] = None
    options: DistOptions = field(default_factory=DistOptions)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Settles every cell of a :class:`BackendRun`; returns dist stats."""

    name: str

    def execute(self, run: BackendRun) -> dict: ...


class LocalPoolBackend:
    """Today's in-process fault-tolerant pool, behind the protocol."""

    name = "local-pool"

    def execute(self, run: BackendRun) -> dict:
        runner = ObservedRunner(run.run_one) if run.observe else run.run_one
        executor = FaultTolerantExecutor(
            runner, run.config, extra_kwargs=dict(run.extra_kwargs),
            executor_config=run.executor_config,
            on_retry=run.on_retry,
        )
        executor.run(run.cells, run.on_success, run.on_quarantine)
        return {}


# --------------------------------------------------------------------------
# Spool draining — shared by every spool-based backend.


def fold_worker_stats(stats: list[dict]) -> dict:
    """Collapse per-worker stats files into campaign-level dist counters."""
    totals = {"workers": len(stats), "cells_done": 0, "cells_failed": 0,
              "steals": 0, "lost_steals": 0, "heartbeats": 0}
    hosts: dict[str, dict] = {}
    for entry in stats:
        host = str(entry.get("host", "?"))
        bucket = hosts.setdefault(
            host, {"workers": 0, "cells_done": 0, "steals": 0,
                   "heartbeats": 0})
        bucket["workers"] += 1
        for key in ("cells_done", "cells_failed", "steals", "lost_steals",
                    "heartbeats"):
            value = int(entry.get(key, 0))
            totals[key] += value
            if key in bucket:
                bucket[key] += value
    totals["hosts"] = hosts
    return totals


def dist_obs_snapshot(stats: dict) -> dict:
    """Render dist counters as a metrics-registry snapshot so they merge
    into the campaign's observability aggregate (and are greppable in
    ``repro obs summary --campaign-dir``)."""
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    steals = registry.counter("repro_dist_steals_total",
                              "Cells stolen after lease expiry", ("host",))
    beats = registry.counter("repro_dist_heartbeats_total",
                             "Lease renewals sent by workers", ("host",))
    done = registry.counter("repro_dist_cells_done_total",
                            "Cells settled by dist workers", ("host",))
    for host, bucket in stats.get("hosts", {}).items():
        steals.labels(host).inc(bucket.get("steals", 0))
        beats.labels(host).inc(bucket.get("heartbeats", 0))
        done.labels(host).inc(bucket.get("cells_done", 0))
    return registry.snapshot()


def drain_spool(
    spool: WorkSpool,
    run: BackendRun,
    cache: ResultCache,
    *,
    alive: Callable[[], bool] | None = None,
    fallback: Callable[[], None] | None = None,
    deadline_s: float | None = None,
) -> dict:
    """Coordinator loop: fold settlement markers into the campaign callbacks
    until every spooled cell is settled.

    ``alive`` reports whether any external worker can still make progress;
    when it goes False with cells outstanding, ``fallback`` (typically an
    inline worker pass) is invoked once to guarantee completion.  Folding
    is exactly-once per key regardless of how many workers executed it —
    the done marker is one file, and ``folded`` is consulted before every
    callback, so a stolen-and-reexecuted cell never double-counts in the
    journal.
    """
    cells_by_key = {cell.key: cell for cell in run.cells}
    folded: set[str] = set()
    fallback_used = False
    started = time.monotonic()

    def fold_once() -> None:
        for key in spool.done_keys() - folded:
            cell = cells_by_key.get(key)
            marker = spool.read_done(key)
            if cell is None or marker is None:
                continue
            summary = cache.get(key)
            if summary is None:
                continue  # marker visible before the entry — next pass
            snapshot = marker.get("obs_snapshot")
            payload = (ObservedResult(summary=summary, obs_snapshot=snapshot)
                       if snapshot else summary)
            folded.add(key)
            run.on_success(cell, payload, int(marker.get("attempts", 1)),
                           float(marker.get("wall_s", 0.0)))
        for key in spool.failed_keys() - folded:
            cell = cells_by_key.get(key)
            marker = spool.read_failed(key)
            if cell is None or marker is None:
                continue
            folded.add(key)
            run.on_quarantine(CellFailure(
                cell, int(marker.get("attempts", 1)),
                str(marker.get("error", "worker failure"))))

    try:
        while True:
            fold_once()
            if len(folded) >= len(cells_by_key):
                break
            if deadline_s is not None and time.monotonic() - started > deadline_s:
                raise TimeoutError(
                    f"spool {spool.directory} did not settle within "
                    f"{deadline_s:.0f}s ({len(folded)}/{len(cells_by_key)} "
                    "cells folded)")
            if alive is not None and not alive():
                if fallback is not None and not fallback_used:
                    fallback_used = True
                    fallback()
                    continue
                # No workers and no fallback: fold what exists and report.
                fold_once()
                break
            time.sleep(run.options.poll_s)
    finally:
        spool.request_stop()

    stats = fold_worker_stats(spool.worker_stats())
    stats["cells_folded"] = len(folded)
    stats["cells_spooled"] = len(cells_by_key)
    stats["inline_fallback"] = fallback_used
    return stats


# --------------------------------------------------------------------------
# Registry.

_BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    _BACKENDS[name] = factory


def backend_names() -> list[str]:
    return sorted(_BACKENDS)


def get_backend(name: str) -> ExecutionBackend:
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(choose from: {' '.join(backend_names())})") from None
    return factory()


def _ssh_factory() -> ExecutionBackend:
    from repro.dist.ssh import SshBackend
    return SshBackend()


def _job_array_factory() -> ExecutionBackend:
    from repro.dist.job_array import JobArrayBackend
    return JobArrayBackend()


register_backend("local-pool", LocalPoolBackend)
register_backend("ssh", _ssh_factory)
register_backend("job-array", _job_array_factory)


def default_spool_dir(run: BackendRun) -> Path:
    """Where a spool-based backend coordinates: under the campaign dir when
    there is one, else a campaign-named directory under ``campaigns/``."""
    if run.options.spool_dir:
        return Path(run.options.spool_dir)
    if run.campaign_dir:
        return Path(run.campaign_dir) / "spool"
    safe = (run.runner_name or "campaign").replace("/", "_").replace(":", "_")
    return Path("campaigns") / safe / "spool"
