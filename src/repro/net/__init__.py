"""Network-layer protocols: flooding variants, Routeless Routing, AODV, Gradient."""

from repro.net.aodv import Aodv, AodvConfig, Route
from repro.net.base import DuplicateCache, NetworkProtocol
from repro.net.dsdv import Dsdv, DsdvConfig, DsdvRoute
from repro.net.dsr import Dsr, DsrConfig
from repro.net.flooding import (
    SSAF,
    BlindFlooding,
    Counter1Flooding,
    ElectionFlooding,
    FloodingConfig,
)
from repro.net.gradient import GradientConfig, GradientRouting
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
    SeqCounter,
)
from repro.net.routeless import (
    ActiveNodeTable,
    RelayPhase,
    RoutelessConfig,
    RoutelessRouting,
)

__all__ = [
    "ActiveNodeTable",
    "Aodv",
    "AodvConfig",
    "BlindFlooding",
    "Counter1Flooding",
    "DEFAULT_CTRL_SIZE",
    "Dsdv",
    "DsdvConfig",
    "DsdvRoute",
    "Dsr",
    "DsrConfig",
    "DEFAULT_DATA_SIZE",
    "DuplicateCache",
    "ElectionFlooding",
    "FloodingConfig",
    "GradientConfig",
    "GradientRouting",
    "NetworkProtocol",
    "Packet",
    "PacketKind",
    "RelayPhase",
    "Route",
    "RoutelessConfig",
    "RoutelessRouting",
    "SeqCounter",
]
