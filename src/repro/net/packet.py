"""Network-layer packets.

One packet type covers every protocol in the paper, with the union of the
headers Section 4.1 describes:

* ``origin`` / ``seq`` — who created the packet and its per-origin sequence
  number; together (with ``kind``) they identify a packet uniquely, which is
  what counter-1 flooding's duplicate suppression keys on.
* ``target`` — the destination (source *or* destination node: the paper calls
  both "target nodes").
* ``actual_hops`` — "records the number of hops traveled from the source to
  the receiving node"; receivers use it to update their active node tables.
* ``expected_hops`` — Routeless Routing's election metric: the transmitter's
  table distance to the target minus one.
* ``ref_seq`` — used by acknowledgement packets to name the packet whose
  relay they confirm.

``path`` is simulation instrumentation (the actual relay chain), present so
the Figure 2 visualization and the hop-count metrics do not have to be
reconstructed from traces.  It contributes nothing to ``size_bytes``.

Packets are *logically* immutable in flight: forwarding creates an updated
copy via :meth:`Packet.forwarded`, so ten receivers of one broadcast can each
relay their own variant without aliasing.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

__all__ = ["PacketKind", "Packet", "SeqCounter", "DEFAULT_DATA_SIZE", "DEFAULT_CTRL_SIZE"]

DEFAULT_DATA_SIZE = 512
DEFAULT_CTRL_SIZE = 48


class PacketKind(enum.Enum):
    DATA = "data"
    PATH_DISCOVERY = "path_discovery"
    PATH_REPLY = "path_reply"
    NET_ACK = "net_ack"
    RREQ = "rreq"
    RREP = "rrep"
    RERR = "rerr"
    ANNOUNCE = "announce"
    SYNC = "sync"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Packet:
    kind: PacketKind
    origin: int
    seq: int
    target: Optional[int] = None
    size_bytes: int = DEFAULT_CTRL_SIZE
    created_at: float = 0.0
    actual_hops: int = 0
    expected_hops: int = 0
    ref_seq: Optional[int] = None
    payload: Any = None
    path: tuple[int, ...] = ()

    @property
    def uid(self) -> tuple[PacketKind, int, int]:
        """Network-wide unique identity (kind, origin, per-origin seq)."""
        return (self.kind, self.origin, self.seq)

    def forwarded(self, relay: int, expected_hops: int | None = None) -> "Packet":
        """The copy a relay node puts back on the air: one more actual hop,
        the relay appended to the path, and (for election-routed packets) a
        fresh expected-hop field."""
        return replace(
            self,
            actual_hops=self.actual_hops + 1,
            path=self.path + (relay,),
            expected_hops=self.expected_hops if expected_hops is None else expected_hops,
        )

    def with_fields(self, **changes: Any) -> "Packet":
        return replace(self, **changes)

    def __str__(self) -> str:
        tgt = "-" if self.target is None else self.target
        return (
            f"{self.kind.value}(o={self.origin} s={self.seq} t={tgt} "
            f"ah={self.actual_hops} eh={self.expected_hops})"
        )


class SeqCounter:
    """Per-origin, per-kind sequence number allocator."""

    def __init__(self) -> None:
        self._counters: dict[Any, itertools.count] = {}

    def next(self, key: Any = None) -> int:
        counter = self._counters.get(key)
        if counter is None:
            counter = itertools.count()
            self._counters[key] = counter
        return next(counter)
