"""Shared machinery for network-layer protocols.

Every protocol in the reproduction (flooding variants, Routeless Routing,
AODV, Gradient Routing) extends :class:`NetworkProtocol`: wiring to the MAC,
a duplicate cache keyed on packet uid, per-kind sequence counters, an app
delivery port, and origination/delivery bookkeeping that the metrics layer
consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.packet import Packet, PacketKind, SeqCounter
from repro.obs.ledger import DropReason
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.stats.metrics import MetricsCollector

__all__ = ["NetworkProtocol", "DuplicateCache"]


class DuplicateCache:
    """Remembers packet uids this node has seen.

    Unbounded by default; a capacity turns it into a FIFO-evicting cache
    (enough history to cover any plausible in-flight window, bounded memory
    for long runs).
    """

    def __init__(self, capacity: int | None = None):
        self._seen: dict[tuple, None] = {}
        self.capacity = capacity

    def seen(self, packet: Packet) -> bool:
        return packet.uid in self._seen

    def record(self, packet: Packet) -> bool:
        """Record the uid; returns True when it was new."""
        if packet.uid in self._seen:
            return False
        self._seen[packet.uid] = None
        if self.capacity is not None and len(self._seen) > self.capacity:
            self._seen.pop(next(iter(self._seen)))
        return True

    def __len__(self) -> int:
        return len(self._seen)


class NetworkProtocol(Component):
    """Base class: one instance per node, wired onto that node's MAC."""

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac, name: str,
                 metrics: "MetricsCollector | None" = None):
        super().__init__(ctx, f"{name}[{node_id}]")
        self.node_id = node_id
        self.mac = mac
        self.metrics = metrics
        self.seq = SeqCounter()
        self.dup_cache = DuplicateCache()

        #: Delivers ``(packet, MacRxInfo)`` to the application layer.
        self.deliver = self.outport("deliver")

        mac.to_net.connect(self.on_mac_packet)
        mac.send_failed.connect(self.on_send_failed)

    # ------------------------------------------------------------ overrides

    def send_data(self, target: int, size_bytes: int) -> Packet:
        """Originate one data packet toward ``target``."""
        raise NotImplementedError

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        raise NotImplementedError

    def on_send_failed(self, packet: Packet, dst: Optional[int]) -> None:
        """MAC gave up on a unicast.  Broadcast-only protocols ignore this."""

    # -------------------------------------------------------------- helpers

    def make_data(self, target: int, size_bytes: int) -> Packet:
        packet = Packet(
            kind=PacketKind.DATA,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.DATA),
            target=target,
            size_bytes=size_bytes,
            created_at=self.now,
        )
        if self.metrics is not None:
            self.metrics.on_originated(packet)
        if self.ctx.observing:
            self.ctx.obs.on_originate(self.now, self.node_id, packet.uid)
        return packet

    def deliver_up(self, packet: Packet, rx: MacRxInfo) -> None:
        """Hand a packet that reached its target to the application."""
        if self.metrics is not None:
            self.metrics.on_delivered(packet, self.now, self.node_id)
        if self.ctx.tracing:
            self.trace("net.deliver", packet=str(packet))
        if self.ctx.observing:
            self.ctx.obs.on_deliver(self.now, self.node_id, packet.uid,
                                    self.now - packet.created_at,
                                    packet.actual_hops + 1)
        if self.deliver.connected:
            self.deliver(packet, rx)

    # The thin ledger shims below keep instrumented protocol code to one
    # guarded line per site; each records at this node's net layer.

    def obs_drop(self, packet: Packet, reason: DropReason, **detail) -> None:
        self.ctx.obs.on_drop(self.now, self.node_id, "net", reason,
                             packet.uid, **detail)

    def obs_suppress(self, packet: Packet, **detail) -> None:
        self.ctx.obs.on_suppress(self.now, self.node_id, packet.uid, **detail)

    def obs_forward(self, packet: Packet, **detail) -> None:
        self.ctx.obs.on_forward(self.now, self.node_id, packet.uid, **detail)
