"""Gradient Routing baseline (Poor [32]), the paper's closest prior work.

Section 4.4: "in Gradient Routing only nodes with a smaller hop count to the
destination are allowed to forward packets ... every node with a smaller hop
count may retransmit the same packet, resulting in a significant increase in
the number of packet transmissions.  In fact, the main drawback of Gradient
Routing is that it makes the network more congested."

Implemented accordingly: hop distances are learned exactly like Routeless
Routing's active node table (flooded discovery plus passive listening), but
relaying is *not* an election — every node that (a) has not yet relayed this
packet and (b) sits strictly closer to the target than the transmitter
rebroadcasts after a short collision-avoidance jitter.  No suppression, no
arbiter.  The redundancy buys delivery robustness at a steep transmission
cost, which the ablation bench quantifies against Routeless Routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backoff import BackoffInput, RandomBackoff
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
)
from repro.net.routeless import ActiveNodeTable
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = ["GradientConfig", "GradientRouting"]


@dataclass(frozen=True)
class GradientConfig:
    #: Collision-avoidance jitter before a qualifying node rebroadcasts.
    jitter_s: float = 0.01
    discovery_backoff: float = 0.03
    discovery_timeout_s: float = 2.0
    max_discovery_retries: int = 3
    data_size: int = DEFAULT_DATA_SIZE
    ctrl_size: int = DEFAULT_CTRL_SIZE
    table_stale_after: float = 10.0
    max_hops: int = 32
    max_pending_data: int = 64


class GradientRouting(NetworkProtocol):
    """One node's Gradient Routing entity."""

    PROTOCOL_NAME = "gradient"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: GradientConfig | None = None, metrics=None):
        config = config if config is not None else GradientConfig()
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        self.table = ActiveNodeTable(stale_after=config.table_stale_after)
        self._rng = self.rng("jitter")
        self._discovery_policy = RandomBackoff(max_delay=config.discovery_backoff)
        self._pending_data: dict[int, list[Packet]] = {}
        self._discovery_handles: dict[int, object] = {}
        self._discovery_attempts: dict[int, int] = {}
        self.relays = 0
        self.data_dropped = 0

    # ------------------------------------------------------------------ app

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        if self.table.knows(target):
            self._originate(packet)
        else:
            queue = self._pending_data.setdefault(target, [])
            if len(queue) >= self.config.max_pending_data:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.QUEUE_OVERFLOW,
                                  where="pending_discovery")
            else:
                queue.append(packet)
            self._start_discovery(target)
        return packet

    def _originate(self, packet: Packet) -> None:
        budget = self.table.hops_to(packet.target)
        stamped = packet.with_fields(expected_hops=budget if budget is not None else 0)
        self.dup_cache.record(stamped)
        self.mac.send(stamped)

    # ------------------------------------------------------------ discovery

    def _start_discovery(self, target: int) -> None:
        if target in self._discovery_handles:
            return
        self._discovery_attempts.setdefault(target, 0)
        self._send_discovery(target)

    def _send_discovery(self, target: int) -> None:
        packet = Packet(
            kind=PacketKind.PATH_DISCOVERY,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.PATH_DISCOVERY),
            target=target,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
        )
        self.dup_cache.record(packet)
        self.mac.send(packet)
        self._discovery_handles[target] = self.schedule(
            self.config.discovery_timeout_s, self._discovery_timeout, target
        )

    def _discovery_timeout(self, target: int) -> None:
        self._discovery_handles.pop(target, None)
        if self.table.knows(target):
            self._flush(target)
            return
        attempts = self._discovery_attempts.get(target, 0) + 1
        self._discovery_attempts[target] = attempts
        if attempts > self.config.max_discovery_retries:
            dropped = self._pending_data.pop(target, [])
            self.data_dropped += len(dropped)
            if self.ctx.observing:
                for packet in dropped:
                    self.obs_drop(packet, DropReason.NO_ROUTE, target=target)
            return
        self._send_discovery(target)

    def _flush(self, target: int) -> None:
        handle = self._discovery_handles.pop(target, None)
        if handle is not None:
            handle.cancel()
        for packet in self._pending_data.pop(target, []):
            self._originate(packet)

    # -------------------------------------------------------------- receive

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.origin == self.node_id:
            return
        self.table.update(packet.origin, packet.actual_hops + 1, self.now)

        if packet.kind == PacketKind.PATH_DISCOVERY:
            self._on_discovery(packet)
        elif packet.kind in (PacketKind.DATA, PacketKind.PATH_REPLY):
            self._on_data(packet, rx)

    def _on_discovery(self, packet: Packet) -> None:
        if not self.dup_cache.record(packet):
            return
        if packet.target == self.node_id:
            # The gradient back to the requester now exists network-wide; a
            # short reply builds the *forward* gradient toward us (the
            # requester needs our distance field, not a route).
            reply = Packet(
                kind=PacketKind.PATH_REPLY,
                origin=self.node_id,
                seq=self.seq.next(PacketKind.PATH_REPLY),
                target=packet.origin,
                size_bytes=self.config.ctrl_size,
                created_at=self.now,
                expected_hops=packet.actual_hops + 1,
            )
            self.dup_cache.record(reply)
            self.mac.send(reply)
            return
        if packet.actual_hops + 1 >= self.config.max_hops:
            return
        delay = self._discovery_policy.delay(BackoffInput(rng=self._rng))
        self.schedule(delay, self.mac.send, packet.forwarded(self.node_id))

    def _on_data(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.target == self.node_id:
            if self.dup_cache.record(packet):
                if packet.kind == PacketKind.DATA:
                    self.deliver_up(packet, rx)
                self._flush(packet.origin)
            return
        if not self.dup_cache.record(packet):
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return  # each node relays a given packet at most once
        if packet.actual_hops + 1 >= self.config.max_hops:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.TTL_EXPIRED,
                              hops=packet.actual_hops + 1)
            return
        mine = self.table.hops_to(packet.target)
        if mine is None or mine >= packet.expected_hops:
            if self.ctx.observing:
                self.obs_suppress(packet, how="off_gradient")
            return  # only strictly-closer nodes may forward
        jitter = float(self._rng.uniform(0.0, self.config.jitter_s))
        if self.ctx.observing:
            self.obs_forward(packet, expected_hops=mine)
        forwarded = packet.forwarded(self.node_id, expected_hops=mine)
        self.relays += 1
        self.schedule(jitter, self.mac.send, forwarded)
