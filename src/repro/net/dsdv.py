"""DSDV baseline (Perkins & Bhagwat [26]) — proactive distance-vector routing.

The paper's taxonomy: "these wireless routing protocols can be classified as
either proactive, such as DSDV, or reactive, such as AODV and DSR."  DSDV
completes the comparison set: every node periodically broadcasts its full
distance vector, stamped with per-destination sequence numbers so fresher
information always supersedes staler regardless of metric.

Modelled mechanics:

* **Periodic full dumps** — each node broadcasts ``{dest: (seq, hops)}``
  every update period (jittered to avoid phase-locking).  The dump's cost is
  charged to its size (8 bytes per entry), so the protocol's signature
  weakness — constant background control traffic that grows with network
  size — shows up in the MAC packet and airtime accounting.
* **Sequence-numbered Bellman-Ford** — a route is replaced when the
  advertisement carries a newer sequence number, or the same one with fewer
  hops.
* **Broken-link advertisement** — a MAC-level delivery failure marks routes
  through the dead next hop with an odd (infinite-metric) sequence number
  and triggers an immediate advertisement, per the paper's protocol.

Data forwarding is hop-by-hop unicast out of the routing table, like AODV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
)
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = ["DsdvConfig", "DsdvRoute", "Dsdv"]

#: Advertisement bytes per table entry.
ENTRY_BYTES = 8
#: Hop metric representing an unreachable destination.
INFINITY = 9999


@dataclass
class DsdvRoute:
    next_hop: int
    hops: int
    seq: int

    @property
    def valid(self) -> bool:
        return self.hops < INFINITY


@dataclass(frozen=True)
class DsdvConfig:
    update_period_s: float = 3.0
    #: Uniform jitter applied to every periodic dump.
    update_jitter_s: float = 0.5
    data_size: int = DEFAULT_DATA_SIZE
    base_ctrl_size: int = DEFAULT_CTRL_SIZE
    #: Packets buffered per destination while no route exists yet.
    max_pending_data: int = 64
    #: Drop buffered packets if no route appears within this time.
    pending_timeout_s: float = 10.0


class Dsdv(NetworkProtocol):
    """One node's DSDV entity."""

    PROTOCOL_NAME = "dsdv"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: DsdvConfig | None = None, metrics=None):
        config = config if config is not None else DsdvConfig()
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        self.routes: dict[int, DsdvRoute] = {}
        self._own_seq = 0  # always even while we are alive
        self._pending_data: dict[int, list[tuple[float, Packet]]] = {}
        self._rng = self.rng("jitter")

        self.updates_sent = 0
        self.data_forwarded = 0
        self.data_dropped = 0
        self.link_failures = 0

        self._schedule_update(first=True)

    # ----------------------------------------------------------- scheduling

    def _schedule_update(self, first: bool = False) -> None:
        period = self.config.update_period_s
        jitter = float(self._rng.uniform(0.0, self.config.update_jitter_s))
        delay = jitter if first else period + jitter
        self.schedule(delay, self._periodic_update)

    def _periodic_update(self) -> None:
        self._broadcast_update()
        self._expire_pending()
        self._schedule_update()

    # -------------------------------------------------------------- updates

    def _vector(self) -> dict[int, tuple[int, int]]:
        """Our advertised distance vector, self entry included."""
        self._own_seq += 2
        vector = {self.node_id: (self._own_seq, 0)}
        for dest, route in self.routes.items():
            vector[dest] = (route.seq, route.hops)
        return vector

    def _broadcast_update(self) -> None:
        vector = self._vector()
        packet = Packet(
            kind=PacketKind.ANNOUNCE,  # reused as "routing advertisement"
            origin=self.node_id,
            seq=self.seq.next("dsdv-update"),
            size_bytes=self.config.base_ctrl_size + ENTRY_BYTES * len(vector),
            created_at=self.now,
            payload=vector,
        )
        self.updates_sent += 1
        self.trace("dsdv.update", entries=len(vector))
        self.mac.send(packet)

    def _on_update(self, packet: Packet, rx: MacRxInfo) -> None:
        changed = False
        for dest, (seq, hops) in packet.payload.items():
            if dest == self.node_id:
                continue
            metric = hops + 1 if hops < INFINITY else INFINITY
            current = self.routes.get(dest)
            newer = current is None or seq > current.seq or (
                seq == current.seq and metric < current.hops)
            if newer:
                self.routes[dest] = DsdvRoute(next_hop=rx.src, hops=metric, seq=seq)
                changed = True
        if changed:
            self._flush_pending()

    # ------------------------------------------------------------------ app

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        self._dispatch_data(packet)
        return packet

    def _dispatch_data(self, packet: Packet) -> None:
        route = self.routes.get(packet.target)
        if route is not None and route.valid:
            self.mac.send(packet, dst=route.next_hop)
            return
        queue = self._pending_data.setdefault(packet.target, [])
        if len(queue) >= self.config.max_pending_data:
            self.data_dropped += 1
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.QUEUE_OVERFLOW,
                              where="pending_route")
        else:
            queue.append((self.now, packet))

    def _flush_pending(self) -> None:
        for target in list(self._pending_data):
            route = self.routes.get(target)
            if route is None or not route.valid:
                continue
            for _, packet in self._pending_data.pop(target):
                self.mac.send(packet, dst=route.next_hop)

    def _expire_pending(self) -> None:
        deadline = self.now - self.config.pending_timeout_s
        for target in list(self._pending_data):
            kept = [(t, p) for t, p in self._pending_data[target] if t > deadline]
            self.data_dropped += len(self._pending_data[target]) - len(kept)
            if self.ctx.observing:
                for t, packet in self._pending_data[target]:
                    if t <= deadline:
                        self.obs_drop(packet, DropReason.NO_ROUTE,
                                      cause="pending_expired")
            if kept:
                self._pending_data[target] = kept
            else:
                del self._pending_data[target]

    # -------------------------------------------------------------- receive

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.origin == self.node_id:
            return
        if packet.kind == PacketKind.ANNOUNCE:
            self._on_update(packet, rx)
        elif packet.kind == PacketKind.DATA:
            self._on_data(packet, rx)

    def _on_data(self, packet: Packet, rx: MacRxInfo) -> None:
        if not self.dup_cache.record(packet):
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return
        if packet.target == self.node_id:
            self.deliver_up(packet, rx)
            return
        route = self.routes.get(packet.target)
        if route is None or not route.valid:
            self.data_dropped += 1
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.NO_ROUTE,
                              target=packet.target)
            return
        self.data_forwarded += 1
        if self.ctx.observing:
            self.obs_forward(packet, next_hop=route.next_hop)
        self.mac.send(packet.forwarded(self.node_id), dst=route.next_hop)

    # ---------------------------------------------------- failure machinery

    def on_send_failed(self, packet: Packet, dst: Optional[int]) -> None:
        if dst is None:
            return
        self.link_failures += 1
        broken = False
        for dest, route in self.routes.items():
            if route.valid and route.next_hop == dst:
                # Infinite metric with an odd sequence number one above the
                # last known — DSDV's broken-link advertisement rule.
                route.hops = INFINITY
                route.seq += 1
                broken = True
        if packet is not None and packet.kind == PacketKind.DATA:
            if packet.origin == self.node_id:
                self._dispatch_data(packet)  # re-buffer until routes heal
            else:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  next_hop=dst, cause="link_broken")
        if broken:
            self.trace("dsdv.broken_links", next_hop=dst)
            self._broadcast_update()
