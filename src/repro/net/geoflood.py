"""Location-based flooding — the oracle SSAF approximates.

Section 3: "nodes furthest from the previous sender of the packet should be
given higher priorities.  This is the main idea of location-based flooding
[19, 20].  However, location information is not generally available in
wireless networks."

SSAF's pitch is that received signal strength is a *free substitute* for
location.  To quantify how much is lost in the substitution, this module
implements the oracle: the same election flooding with the backoff computed
from **true distance** to the previous transmitter (as if every node had
GPS).  The ablation bench runs counter-1 (no metric), SSAF (signal
strength), and this protocol (exact location) on identical scenarios — SSAF
should land between the two, close to the oracle under free-space
propagation where signal strength *is* distance, and the gap widens with
fading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backoff import BackoffInput, BackoffPolicy
from repro.mac.csma import CsmaMac
from repro.net.flooding import ElectionFlooding, FloodingConfig
from repro.phy.channel import Channel
from repro.sim.components import SimContext

__all__ = ["LocationBackoff", "LocationFlooding"]


@dataclass(frozen=True)
class LocationBackoff(BackoffPolicy):
    """Delay shrinks linearly with true distance from the previous sender.

    ``delay = λ · (1 − d/range) + U(0, jitter)`` — the GPS-oracle version of
    :class:`~repro.core.backoff.SignalStrengthBackoff`, with the distance
    supplied out-of-band via ``BackoffInput.metric``.
    """

    lam: float = 0.05
    range_m: float = 250.0
    jitter: float = 0.002

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.range_m <= 0 or self.jitter < 0:
            raise ValueError("lam and range must be positive, jitter >= 0")

    def delay(self, observed: BackoffInput) -> float:
        if observed.metric is None:
            raise ValueError("LocationBackoff requires the true distance in .metric")
        fraction = min(observed.metric / self.range_m, 1.0)
        return self.lam * (1.0 - fraction) + float(observed.rng.uniform(0.0, self.jitter))


class LocationFlooding(ElectionFlooding):
    """Election flooding with oracle location knowledge.

    Needs the channel (for true positions); everything else is the shared
    :class:`~repro.net.flooding.ElectionFlooding` engine, so any difference
    from SSAF is attributable purely to the metric.
    """

    PROTOCOL_NAME = "geoflood"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 channel: Channel, config: FloodingConfig | None = None,
                 metrics=None, lam: float = 0.05, range_m: float = 250.0):
        if config is None:
            config = FloodingConfig(
                policy=LocationBackoff(lam=lam, range_m=range_m),
                suppress_on_duplicate=True,
            )
        super().__init__(ctx, node_id, mac, config, metrics)
        self.channel = channel

    def on_mac_packet(self, packet, rx) -> None:
        # Thread the oracle distance through; the base engine consumes the
        # BackoffInput we stash for this reception.
        self._oracle_distance = self.channel.pair_distance_m(
            rx.src, self.node_id)
        super().on_mac_packet(packet, rx)

    def observe(self, packet, rx) -> BackoffInput:
        return BackoffInput(rng=self._policy_rng, metric=self._oracle_distance)
