"""The Routeless Routing protocol (Section 4).

No route is stored anywhere: every data packet's next hop is decided *after*
the packet leaves the current hop, by a local leader election among the
receivers.  The moving parts, mapped to the paper:

* **Active node table** (§4.1) — each node's passively-learned hop distance
  to every origin it has overheard ("each entry consists of the identity of a
  target node and the number of hops from this target node to the node
  owning the table").
* **Path discovery** — counter-1 flooding of a discovery packet whose
  ``actual_hops`` field populates the tables ("in Routeless Routing counter-1
  flooding is used").
* **Path reply & data relay** — broadcast, never addressed to a next hop.
  Receivers compute :class:`~repro.core.backoff.HopCountBackoff` delays from
  their table distance versus the packet's ``expected_hops`` field; the
  election winner rebroadcasts with ``expected_hops`` set to its own table
  distance minus one.
* **Arbitration** — every transmitter (originator or relay) listens for the
  rebroadcast of its packet.  Hearing one, it broadcasts an acknowledgement
  (silencing election losers that missed the rebroadcast); hearing none
  within a timeout, it retransmits.  The target sends a final
  acknowledgement so the last relay stops.  Acknowledgements carry a
  *level* — the expected-hop count of the best copy the acker has witnessed
  (0 meaning delivered) — so one comparison rule scopes every ack to
  exactly the elections it makes redundant; an upstream arbiter's ack
  (higher level) is never mistaken for downstream progress.

One deliberate refinement over the paper's prose: a node whose election
timer is pending re-arms (rather than suppresses) when the duplicate it hears
is a *retransmission by the same sender* — otherwise an arbiter's retry would
silence the very fallback candidates it is trying to recruit.

Failure resilience falls out of the structure: a dead next-hop simply loses
an election it never entered, and whoever else heard the packet relays
instead — no route repair, no control storm (the Figure 4 claim).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.backoff import BackoffInput, HopCountBackoff, RandomBackoff
from repro.core.timer import CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
)
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = ["ActiveNodeTable", "RoutelessConfig", "RoutelessRouting", "RelayPhase"]


@dataclass
class _TableEntry:
    hops: int
    updated_at: float


class ActiveNodeTable:
    """Passively learned hop distances to overheard origins.

    Update rule: an equal-or-better distance is always accepted; a *worse*
    distance replaces the entry only once it has gone stale, which is how the
    table tracks topology changes without thrashing during a flood (where
    many long-way copies of the same packet arrive within milliseconds).
    """

    def __init__(self, stale_after: float = 10.0):
        self.stale_after = stale_after
        self._entries: dict[int, _TableEntry] = {}

    def update(self, target: int, hops: int, now: float) -> bool:
        """Record that we are ``hops`` from ``target``; True if accepted."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        entry = self._entries.get(target)
        if entry is None or hops <= entry.hops or now - entry.updated_at > self.stale_after:
            self._entries[target] = _TableEntry(hops, now)
            return True
        return False

    def hops_to(self, target: int) -> Optional[int]:
        entry = self._entries.get(target)
        return None if entry is None else entry.hops

    def knows(self, target: int) -> bool:
        return target in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class RelayPhase(enum.Enum):
    BACKOFF = "backoff"       # election timer armed
    ARBITER = "arbiter"       # we transmitted; awaiting the next relay
    SUPPRESSED = "suppressed" # someone else relayed / an ack arrived
    DONE = "done"             # resolved (acked, delivered, or gave up)


@dataclass
class _RelayState:
    phase: RelayPhase
    timer: Optional[CandidateTimer] = None
    heard_from: Optional[int] = None      # MAC source of the copy we armed on
    pending: Optional[Packet] = None      # the copy we would forward
    my_expected: int = 0                  # expected_hops we stamped on our tx
    forwarded: Optional[Packet] = None    # what we actually put on air
    armed_delay: float = 0.0              # the election backoff we drew
    retries: int = 0
    arbiter_handle: object = None
    #: Last time an ack for this uid was sent by us *or* overheard; used to
    #: suppress redundant acknowledgements (one voice per neighborhood).
    last_ack: float = -1e18
    ack_handle: object = None
    #: Best (lowest) copy level witnessed for this uid, from relays or acks.
    witness_level: Optional[int] = None

    def note_witness(self, level: int) -> None:
        if self.witness_level is None or level < self.witness_level:
            self.witness_level = level


@dataclass
class _Discovery:
    target: int
    attempts: int = 0
    handle: object = None


@dataclass(frozen=True)
class RoutelessConfig:
    #: λ of the backoff equation — the full-scale election delay (seconds).
    lam: float = 0.05
    #: Table-hops handicap for nodes with no entry for the target.
    unknown_penalty: int = 2
    #: Whether entry-less nodes compete at all (the failure-resilience
    #: fallback; disabling it is an ablation).
    participate_without_entry: bool = True
    #: Nodes whose table distance exceeds the packet's expectation by more
    #: than this sit the election out entirely — they are off the gradient.
    max_excess_hops: int = 2
    #: Random backoff bound for counter-1 flooding of discovery packets.
    discovery_backoff: float = 0.03
    #: Arbiter patience before retransmitting.  Must exceed the largest
    #: plausible election delay, λ·(unknown_penalty + 1).
    arbiter_timeout_s: float = 0.25
    max_relay_retries: int = 3
    #: Minimum spacing between acknowledgements a node emits (or needs to
    #: see) per packet — suppresses ack storms around redundant relays.
    ack_window_s: float = 0.05
    #: Patience for the whole discovery round trip before retrying.
    discovery_timeout_s: float = 2.0
    max_discovery_retries: int = 3
    data_size: int = DEFAULT_DATA_SIZE
    ctrl_size: int = DEFAULT_CTRL_SIZE
    table_stale_after: float = 10.0
    max_hops: int = 32
    max_pending_data: int = 64


class RoutelessRouting(NetworkProtocol):
    """One node's Routeless Routing entity."""

    PROTOCOL_NAME = "routeless"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: RoutelessConfig | None = None, metrics=None):
        config = config if config is not None else RoutelessConfig()
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        self.table = ActiveNodeTable(stale_after=config.table_stale_after)
        self._rng = self.rng("policy")
        self._relay_policy = HopCountBackoff(
            lam=config.lam, unknown_penalty=config.unknown_penalty
        )
        self._discovery_policy = RandomBackoff(max_delay=config.discovery_backoff)
        self._states: dict[tuple, _RelayState] = {}
        self._discoveries: dict[int, _Discovery] = {}
        self._pending_data: dict[int, list[Packet]] = {}

        # counters for tests and ablations
        self.relays = 0
        self.acks_sent = 0
        self.arbiter_retransmits = 0
        self.gave_up = 0
        self.data_dropped = 0

    # ------------------------------------------------------------------ app

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        if self.table.knows(target):
            self._originate(packet)
        else:
            queue = self._pending_data.setdefault(target, [])
            if len(queue) >= self.config.max_pending_data:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.QUEUE_OVERFLOW,
                                  where="pending_discovery")
            else:
                queue.append(packet)
            self._start_discovery(target)
        return packet

    def _originate(self, packet: Packet) -> None:
        hops = self.table.hops_to(packet.target)
        expected = max((hops or 1) - 1, 0)
        stamped = packet.with_fields(expected_hops=expected)
        self.dup_cache.record(stamped)
        self._transmit_and_arbitrate(stamped, expected)

    # -------------------------------------------------------- path discovery

    def _start_discovery(self, target: int) -> None:
        if target in self._discoveries:
            return
        disc = _Discovery(target=target)
        self._discoveries[target] = disc
        self._send_discovery(disc)

    def _send_discovery(self, disc: _Discovery) -> None:
        packet = Packet(
            kind=PacketKind.PATH_DISCOVERY,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.PATH_DISCOVERY),
            target=disc.target,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
        )
        self.dup_cache.record(packet)
        self.trace("rr.discovery", packet=str(packet), attempt=disc.attempts)
        self.mac.send(packet)
        disc.handle = self.schedule(
            self.config.discovery_timeout_s, self._discovery_timeout, disc
        )

    def _discovery_timeout(self, disc: _Discovery) -> None:
        if self._discoveries.get(disc.target) is not disc:
            return
        disc.attempts += 1
        if disc.attempts > self.config.max_discovery_retries:
            del self._discoveries[disc.target]
            dropped = self._pending_data.pop(disc.target, [])
            self.data_dropped += len(dropped)
            if self.ctx.observing:
                for packet in dropped:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  target=disc.target)
            self.trace("rr.discovery_failed", target=disc.target, dropped=len(dropped))
            return
        self._send_discovery(disc)

    def _discovery_succeeded(self, target: int) -> None:
        disc = self._discoveries.pop(target, None)
        if disc is not None and disc.handle is not None:
            disc.handle.cancel()
        for packet in self._pending_data.pop(target, []):
            self._originate(packet)

    # -------------------------------------------------------------- receive

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.origin == self.node_id and packet.kind != PacketKind.NET_ACK:
            # Our own packet echoed back by a relay: handled by the relay
            # state machine below for arbitration, but never re-learned.
            self._on_own_echo(packet, rx)
            return
        # Passive listening (§4.1): every packet teaches its receiver the
        # current distance to the packet's origin.
        if packet.origin != self.node_id:
            self.table.update(packet.origin, packet.actual_hops + 1, self.now)

        if packet.kind == PacketKind.PATH_DISCOVERY:
            self._on_discovery(packet, rx)
        elif packet.kind in (PacketKind.PATH_REPLY, PacketKind.DATA):
            self._on_election_packet(packet, rx)
        elif packet.kind == PacketKind.NET_ACK:
            self._on_net_ack(packet)

    def _on_own_echo(self, packet: Packet, rx: MacRxInfo) -> None:
        """A copy of a packet we originated came back (a relay's broadcast)."""
        state = self._states.get(packet.uid)
        if state is not None and state.phase == RelayPhase.ARBITER:
            if packet.expected_hops <= state.my_expected:
                state.note_witness(packet.expected_hops)
                self._ack_and_finish(state, packet.uid, packet.target,
                                     witnessed=packet.expected_hops)

    # ---- discovery flooding (counter-1 inside the protocol)

    def _on_discovery(self, packet: Packet, rx: MacRxInfo) -> None:
        uid = packet.uid
        state = self._states.get(uid)
        if not self.dup_cache.record(packet):
            if state is not None and state.phase == RelayPhase.BACKOFF:
                state.timer.suppress()
                state.phase = RelayPhase.SUPPRESSED
            return
        if packet.target == self.node_id:
            self.trace("rr.discovery_reached", packet=str(packet))
            self._send_reply(packet)
            return
        if packet.actual_hops + 1 >= self.config.max_hops:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.TTL_EXPIRED,
                              hops=packet.actual_hops + 1)
            return
        state = _RelayState(phase=RelayPhase.BACKOFF, heard_from=rx.src,
                            pending=packet)
        delay = self._discovery_policy.delay(BackoffInput(rng=self._rng))
        state.timer = CandidateTimer(self, lambda: self._relay_discovery(uid))
        state.timer.arm(delay)
        self._states[uid] = state

    def _relay_discovery(self, uid: tuple) -> None:
        state = self._states.get(uid)
        if state is None or state.pending is None:
            return
        state.phase = RelayPhase.DONE
        self.relays += 1
        self.mac.send(state.pending.forwarded(self.node_id))

    def _send_reply(self, discovery: Packet) -> None:
        source = discovery.origin
        hops = self.table.hops_to(source)
        # We just updated the table from this very discovery packet, so the
        # entry always exists; assert the invariant rather than guess.
        assert hops is not None, "table must know the source after a discovery"
        expected = max(hops - 1, 0)
        reply = Packet(
            kind=PacketKind.PATH_REPLY,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.PATH_REPLY),
            target=source,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            expected_hops=expected,
            ref_seq=discovery.seq,
        )
        self.dup_cache.record(reply)
        self.trace("rr.reply", packet=str(reply))
        self._transmit_and_arbitrate(reply, expected)

    # ---- reply/data relay election

    def _on_election_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        uid = packet.uid
        state = self._states.get(uid)

        if packet.target == self.node_id:
            self._on_reached_target(packet, rx)
            return

        if state is None:
            self.dup_cache.record(packet)
            if packet.actual_hops + 1 >= self.config.max_hops:
                self._states[uid] = _RelayState(phase=RelayPhase.DONE)
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.TTL_EXPIRED,
                                  hops=packet.actual_hops + 1)
                return
            table_hops = self.table.hops_to(packet.target)
            if table_hops is None and not self.config.participate_without_entry:
                self._states[uid] = _RelayState(phase=RelayPhase.SUPPRESSED)
                return
            if (table_hops is not None
                    and table_hops - packet.expected_hops > self.config.max_excess_hops):
                # We are demonstrably far off the gradient toward the target;
                # relaying would diffuse the packet, not deliver it.  (Nodes
                # with *unknown* distance still compete, penalized — that is
                # the failure-resilience fallback.)
                self._states[uid] = _RelayState(phase=RelayPhase.SUPPRESSED,
                                                heard_from=rx.src, pending=packet)
                return
            state = _RelayState(phase=RelayPhase.BACKOFF, heard_from=rx.src,
                                pending=packet)
            delay = self._relay_policy.delay(BackoffInput(
                rng=self._rng,
                table_hops=table_hops,
                expected_hops=packet.expected_hops,
            ))
            state.timer = CandidateTimer(self, lambda: self._relay_fire(uid))
            state.timer.arm(delay)
            state.armed_delay = delay
            self._states[uid] = state
            if self.ctx.tracing:
                self.trace("rr.candidate", packet=str(packet), backoff=delay,
                           table_hops=table_hops)
            return

        # Duplicate handling depends on our phase.  Throughout, a copy's
        # ``expected_hops`` is its *level*: the election it opens.  A copy at
        # a level below the one we armed on is the chain moving past us; a
        # copy at our level or above is lateral redundancy or an upstream
        # retransmission and says nothing about whether *our* level is
        # served.
        if state.phase == RelayPhase.BACKOFF:
            state.note_witness(packet.expected_hops)
            if rx.src == state.heard_from and packet.expected_hops >= state.pending.expected_hops:
                # Retransmission by the same arbiter: a fresh election
                # attempt, not evidence that somebody relayed.  Re-arm.
                delay = self._relay_policy.delay(BackoffInput(
                    rng=self._rng,
                    table_hops=self.table.hops_to(packet.target),
                    expected_hops=packet.expected_hops,
                ))
                state.timer.arm(delay)
                state.armed_delay = delay
            else:
                # The paper's rule: hearing the same packet again cancels the
                # backoff.  This prunes forked chains aggressively — and when
                # it over-prunes (two simultaneous winners mutually silence
                # all candidates), the arbiter retransmission below recovers.
                state.timer.suppress()
                state.phase = RelayPhase.SUPPRESSED
                if self.ctx.observing:
                    self.obs_suppress(packet, how="rebroadcast_heard")
        elif state.phase == RelayPhase.ARBITER:
            # "If it captures the rebroadcast of the same packet by another
            # node, it will immediately, as an arbiter, transmit an
            # acknowledgement packet."  A copy at or below our own level
            # qualifies (thanks to the expected-hops ceiling, every relay of
            # our transmission does); an upstream arbiter's retransmission
            # (higher level) does not — and must not, or both ends of a hop
            # would declare it done with nobody carrying the packet forward.
            if packet.expected_hops <= state.my_expected:
                state.note_witness(packet.expected_hops)
                self._ack_and_finish(state, uid, packet.target,
                                     witnessed=packet.expected_hops)
        elif state.phase == RelayPhase.SUPPRESSED:
            # We were silenced because we witnessed progress.  A copy at or
            # above the level we armed on means its sender missed that
            # evidence — answer with an ack naming the best level we saw.
            # A progressing duplicate is the live chain passing by: note it,
            # stay out of the way.
            state.note_witness(packet.expected_hops)
            if state.pending is None or packet.expected_hops >= state.pending.expected_hops:
                self._schedule_suppressed_ack(state, uid, packet.target)
        # DONE: nothing to do.

    def _on_reached_target(self, packet: Packet, rx: MacRxInfo) -> None:
        uid = packet.uid
        first = self.dup_cache.record(packet)
        state = self._states.get(uid)
        if first:
            state = _RelayState(phase=RelayPhase.DONE)
            self._states[uid] = state
            if packet.kind == PacketKind.DATA:
                self.deliver_up(packet, rx)
            else:  # PATH_REPLY back at the source: the path is discovered
                self.trace("rr.reply_received", packet=str(packet))
                self._discovery_succeeded(packet.origin)
        elif state is None:
            state = _RelayState(phase=RelayPhase.DONE)
            self._states[uid] = state
        # Duplicate copies mean somebody upstream has not heard that the
        # packet already arrived — but one ack per ack-window is plenty.
        state.note_witness(0)
        if self.now - state.last_ack >= self.config.ack_window_s or first:
            state.last_ack = self.now
            self._send_net_ack(uid, packet.target, level=0)

    def _relay_fire(self, uid: tuple) -> None:
        state = self._states.get(uid)
        if state is None or state.pending is None:
            return
        packet = state.pending
        table_hops = self.table.hops_to(packet.target)
        # Our advertised expectation never exceeds the chain's previous
        # expectation minus one: a fallback relay (worse or unknown table
        # distance) must not inflate the field, or a duplicate-winner chain
        # wanders outward recruiting ever-farther candidates.
        ceiling = max(packet.expected_hops - 1, 0)
        if table_hops is not None:
            my_expected = min(max(table_hops - 1, 0), ceiling)
        else:
            my_expected = ceiling
        state.my_expected = my_expected
        self.relays += 1
        forwarded = packet.forwarded(self.node_id, expected_hops=my_expected)
        state.forwarded = forwarded
        if self.ctx.observing:
            self.obs_forward(packet, backoff_s=state.armed_delay,
                             expected_hops=my_expected)
            self.ctx.obs.on_election_win(self.now, self.node_id, packet.uid,
                                         self.PROTOCOL_NAME, state.armed_delay)
        if self.ctx.tracing:
            self.trace("rr.relay", packet=str(forwarded))
        self.mac.send(forwarded, priority=0.0)
        self._enter_arbiter(state, uid)

    # ---- arbitration

    def _transmit_and_arbitrate(self, packet: Packet, my_expected: int) -> None:
        state = _RelayState(phase=RelayPhase.BACKOFF, my_expected=my_expected,
                            forwarded=packet)
        self._states[packet.uid] = state
        self.mac.send(packet)
        self._enter_arbiter(state, packet.uid)

    def _enter_arbiter(self, state: _RelayState, uid: tuple) -> None:
        state.phase = RelayPhase.ARBITER
        # Jittered: two arbiters that transmitted near-simultaneously (and
        # mutually silenced each other's candidates) must not also retransmit
        # in lockstep, or the next election round collides the same way.
        timeout = self.config.arbiter_timeout_s * (1.0 + float(self._rng.uniform(0.0, 0.5)))
        state.arbiter_handle = self.schedule(timeout, self._arbiter_timeout, uid)

    def _arbiter_timeout(self, uid: tuple) -> None:
        state = self._states.get(uid)
        if state is None or state.phase != RelayPhase.ARBITER:
            return
        state.retries += 1
        if state.retries > self.config.max_relay_retries:
            state.phase = RelayPhase.DONE
            self.gave_up += 1
            if self.ctx.observing and state.forwarded is not None:
                # No receiver ever relayed, despite our retransmissions.
                self.obs_drop(state.forwarded, DropReason.NO_FORWARDER,
                              retries=state.retries - 1)
            self.trace("rr.gave_up", uid=str(uid))
            return
        self.arbiter_retransmits += 1
        self.trace("rr.retransmit", uid=str(uid), attempt=state.retries)
        self.mac.send(state.forwarded)
        state.arbiter_handle = self.schedule(
            self.config.arbiter_timeout_s, self._arbiter_timeout, uid
        )

    def _ack_and_finish(self, state: _RelayState, uid: tuple,
                        target: int | None, witnessed: int) -> None:
        state.phase = RelayPhase.DONE
        if state.arbiter_handle is not None:
            state.arbiter_handle.cancel()
            state.arbiter_handle = None
        # Our own copy may still be sitting in the MAC queue (we "relayed"
        # into a busy medium and somebody else got through first) — withdraw
        # it rather than add redundancy.
        if state.forwarded is not None:
            self.mac.cancel_send(state.forwarded)
        # Resolution acks always go out (once per node per packet — phase is
        # DONE now).  Rate-limiting them against *overheard* acks would be
        # wrong: a neighbor's ack covered its neighborhood, not ours, and
        # our election losers are waiting on ours.
        state.last_ack = self.now
        self._send_net_ack(uid, target, level=witnessed)

    def _schedule_suppressed_ack(self, state: _RelayState, uid: tuple,
                                 target: int | None) -> None:
        if state.ack_handle is not None:
            return  # one pending answer is enough
        if self.now - state.last_ack < self.config.ack_window_s:
            return

        def fire() -> None:
            state.ack_handle = None
            if self.now - state.last_ack < self.config.ack_window_s:
                return  # somebody answered while we waited
            state.last_ack = self.now
            level = state.witness_level if state.witness_level is not None else 0
            self._send_net_ack(uid, target, level=level)

        jitter = float(self._rng.uniform(0.0, self.config.lam / 2))
        state.ack_handle = self.schedule(jitter, fire)

    def _send_net_ack(self, uid: tuple, target: int | None, level: int) -> None:
        """Broadcast "a copy of ``uid`` at ``level`` is on the air" (0 from
        the target means delivered).  The level scopes the ack: it silences
        exactly the elections it makes redundant."""
        kind, origin, seq = uid
        ack = Packet(
            kind=PacketKind.NET_ACK,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.NET_ACK),
            target=target,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            expected_hops=level,
            ref_seq=seq,
            payload=uid,
        )
        self.acks_sent += 1
        self.trace("rr.ack", ref=str(uid), level=level)
        self.mac.send(ack)

    def _on_net_ack(self, packet: Packet) -> None:
        uid = packet.payload
        state = self._states.get(uid)
        if state is None:
            # An ack for a packet we never heard: remember it as resolved so
            # a late first copy does not trigger a pointless election.
            state = _RelayState(phase=RelayPhase.SUPPRESSED)
            state.last_ack = self.now
            state.note_witness(packet.expected_hops)
            self._states[uid] = state
            return
        state.last_ack = self.now
        state.note_witness(packet.expected_hops)
        if state.ack_handle is not None:
            state.ack_handle.cancel()
            state.ack_handle = None
        level = packet.expected_hops
        if state.phase == RelayPhase.BACKOFF:
            # The ack confirms a copy at ``level``.  If that is below the
            # level we armed on, our election is already served (this is the
            # paper's "notifying those nodes not detecting the rebroadcast").
            # An ack about an *upstream* copy says nothing about our level.
            armed_level = state.pending.expected_hops if state.pending is not None else 0
            if level < armed_level or level == 0:
                state.timer.suppress()
                state.phase = RelayPhase.SUPPRESSED
                if self.ctx.observing and state.pending is not None:
                    self.obs_suppress(state.pending, how="ack_heard")
        elif state.phase == RelayPhase.ARBITER:
            if level < state.my_expected or level == 0:
                state.phase = RelayPhase.DONE
                if state.arbiter_handle is not None:
                    state.arbiter_handle.cancel()
                    state.arbiter_handle = None
                if state.forwarded is not None:
                    self.mac.cancel_send(state.forwarded)
