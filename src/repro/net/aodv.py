"""AODV baseline (Perkins & Royer [28]), as the paper's comparison point.

A classic on-demand distance-vector protocol with explicit routes — the
antithesis of Routeless Routing and the foil for Figures 3 and 4:

* **Route discovery** — the source floods a RREQ; per the paper, "in this
  particular implementation of AODV, the route discovery procedure is based
  on original flooding" (first-copy rebroadcast with duplicate suppression
  but *no* counter-based cancellation — every node forwards every new RREQ).
  Each receiver learns a reverse route toward the origin from the RREQ's
  traveled hop count.
* **Route reply** — the destination unicasts a RREP back along the reverse
  path; intermediate nodes learn the forward route.
* **Data forwarding** — hop-by-hop unicast with MAC-level acknowledgements.
* **Route maintenance** — a MAC unicast that exhausts its retries marks the
  link broken: routes through the dead next hop are invalidated, a RERR
  propagates toward affected sources, and sources re-discover.  This is the
  machinery whose cost grows with the failure rate in Figure 4.

Deliberate simplifications (none of which favor Routeless Routing): no
destination sequence numbers (topologies are static except for transceiver
failures, so stale-route loops cannot form the way they do under mobility),
no intermediate-node RREP, no hello beacons (link failure is detected by
data-plane ack failure, which the paper describes as the slow path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
)
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = ["AodvConfig", "Route", "Aodv"]


@dataclass
class Route:
    next_hop: int
    hops: int
    expires_at: float
    valid: bool = True


@dataclass
class _RreqAttempt:
    target: int
    attempts: int = 0
    handle: object = None


@dataclass(frozen=True)
class AodvConfig:
    route_lifetime_s: float = 300.0
    rreq_timeout_s: float = 1.0
    max_rreq_retries: int = 3
    #: Jitter before rebroadcasting a RREQ (collision avoidance only).
    rreq_jitter_s: float = 0.01
    data_size: int = DEFAULT_DATA_SIZE
    ctrl_size: int = DEFAULT_CTRL_SIZE
    max_hops: int = 32
    max_pending_data: int = 64


class Aodv(NetworkProtocol):
    """One node's AODV entity."""

    PROTOCOL_NAME = "aodv"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: AodvConfig | None = None, metrics=None):
        config = config if config is not None else AodvConfig()
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        self.routes: dict[int, Route] = {}
        self._pending_data: dict[int, list[Packet]] = {}
        self._rreqs: dict[int, _RreqAttempt] = {}
        self._rng = self.rng("jitter")

        # counters for tests and ablations
        self.rreqs_sent = 0
        self.rreps_sent = 0
        self.rerrs_sent = 0
        self.data_forwarded = 0
        self.data_dropped = 0
        self.link_failures = 0

    # ------------------------------------------------------------------ app

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        self._dispatch_data(packet)
        return packet

    def _dispatch_data(self, packet: Packet) -> None:
        route = self._valid_route(packet.target)
        if route is not None:
            self._touch(packet.target, route)
            self.mac.send(packet, dst=route.next_hop)
        else:
            queue = self._pending_data.setdefault(packet.target, [])
            if len(queue) >= self.config.max_pending_data:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.QUEUE_OVERFLOW,
                                  where="pending_discovery")
            else:
                queue.append(packet)
            self._start_discovery(packet.target)

    # ------------------------------------------------------------ discovery

    def _start_discovery(self, target: int) -> None:
        if target in self._rreqs:
            return
        attempt = _RreqAttempt(target=target)
        self._rreqs[target] = attempt
        self._send_rreq(attempt)

    def _send_rreq(self, attempt: _RreqAttempt) -> None:
        packet = Packet(
            kind=PacketKind.RREQ,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.RREQ),
            target=attempt.target,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
        )
        self.dup_cache.record(packet)
        self.rreqs_sent += 1
        self.trace("aodv.rreq", packet=str(packet), attempt=attempt.attempts)
        self.mac.send(packet)
        attempt.handle = self.schedule(
            self.config.rreq_timeout_s, self._rreq_timeout, attempt
        )

    def _rreq_timeout(self, attempt: _RreqAttempt) -> None:
        if self._rreqs.get(attempt.target) is not attempt:
            return
        if self._valid_route(attempt.target) is not None:
            del self._rreqs[attempt.target]
            return
        attempt.attempts += 1
        if attempt.attempts > self.config.max_rreq_retries:
            del self._rreqs[attempt.target]
            dropped = self._pending_data.pop(attempt.target, [])
            self.data_dropped += len(dropped)
            if self.ctx.observing:
                for packet in dropped:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  target=attempt.target)
            self.trace("aodv.discovery_failed", target=attempt.target,
                       dropped=len(dropped))
            return
        self._send_rreq(attempt)

    def _discovery_succeeded(self, target: int) -> None:
        attempt = self._rreqs.pop(target, None)
        if attempt is not None and attempt.handle is not None:
            attempt.handle.cancel()
        for packet in self._pending_data.pop(target, []):
            self._dispatch_data(packet)

    # -------------------------------------------------------------- receive

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.origin == self.node_id:
            return  # our own flood echoing back
        if packet.kind == PacketKind.RREQ:
            self._on_rreq(packet, rx)
        elif packet.kind == PacketKind.RREP:
            self._on_rrep(packet, rx)
        elif packet.kind == PacketKind.DATA:
            self._on_data(packet, rx)
        elif packet.kind == PacketKind.RERR:
            self._on_rerr(packet, rx)

    def _on_rreq(self, packet: Packet, rx: MacRxInfo) -> None:
        if not self.dup_cache.record(packet):
            # duplicate suppression — but never backoff cancellation
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return
        self._learn(packet.origin, rx.src, packet.actual_hops + 1)
        if packet.target == self.node_id:
            self._send_rrep(packet, rx)
            return
        if packet.actual_hops + 1 >= self.config.max_hops:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.TTL_EXPIRED,
                              hops=packet.actual_hops + 1)
            return
        jitter = float(self._rng.uniform(0.0, self.config.rreq_jitter_s))
        forwarded = packet.forwarded(self.node_id)
        self.schedule(jitter, self.mac.send, forwarded)

    def _send_rrep(self, rreq: Packet, rx: MacRxInfo) -> None:
        reply = Packet(
            kind=PacketKind.RREP,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.RREP),
            target=rreq.origin,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            ref_seq=rreq.seq,
        )
        self.rreps_sent += 1
        self.trace("aodv.rrep", packet=str(reply))
        # The reverse route we just learned points at rx.src.
        self.mac.send(reply, dst=rx.src)

    def _on_rrep(self, packet: Packet, rx: MacRxInfo) -> None:
        self._learn(packet.origin, rx.src, packet.actual_hops + 1)
        if packet.target == self.node_id:
            self.trace("aodv.route_ready", target=packet.origin)
            self._discovery_succeeded(packet.origin)
            return
        route = self._valid_route(packet.target)
        if route is None:
            return  # reverse route evaporated; the source will retry
        self.mac.send(packet.forwarded(self.node_id), dst=route.next_hop)

    def _on_data(self, packet: Packet, rx: MacRxInfo) -> None:
        # MAC retransmission after a lost ack can deliver the same packet
        # twice; forwarding it twice would double-count transmissions.
        if not self.dup_cache.record(packet):
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return
        if packet.target == self.node_id:
            self.deliver_up(packet, rx)
            return
        route = self._valid_route(packet.target)
        if route is None:
            self.data_dropped += 1
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.NO_ROUTE,
                              target=packet.target)
            self._send_rerr({packet.target})
            return
        self._touch(packet.target, route)
        self.data_forwarded += 1
        if self.ctx.observing:
            self.obs_forward(packet, next_hop=route.next_hop)
        self.mac.send(packet.forwarded(self.node_id), dst=route.next_hop)

    # ------------------------------------------------------- route handling

    def _learn(self, dest: int, next_hop: int, hops: int) -> None:
        route = self.routes.get(dest)
        if route is None or not route.valid or hops <= route.hops:
            self.routes[dest] = Route(
                next_hop=next_hop,
                hops=hops,
                expires_at=self.now + self.config.route_lifetime_s,
            )

    def _valid_route(self, dest: int) -> Optional[Route]:
        route = self.routes.get(dest)
        if route is None or not route.valid or route.expires_at < self.now:
            return None
        return route

    def _touch(self, dest: int, route: Route) -> None:
        route.expires_at = self.now + self.config.route_lifetime_s

    # ---------------------------------------------------- failure machinery

    def on_send_failed(self, packet: Packet, dst: Optional[int]) -> None:
        if dst is None:
            return
        self.link_failures += 1
        unreachable = {
            dest for dest, route in self.routes.items()
            if route.valid and route.next_hop == dst
        }
        for dest in unreachable:
            self.routes[dest].valid = False
        self.trace("aodv.link_broken", next_hop=dst,
                   unreachable=sorted(unreachable))
        if packet is not None and packet.kind == PacketKind.DATA:
            if packet.origin == self.node_id:
                # We are the source: buffer the packet and rediscover.
                self._dispatch_data(packet)
            else:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  next_hop=dst, cause="link_broken")
                if unreachable:
                    self._send_rerr(unreachable)
        elif unreachable:
            self._send_rerr(unreachable)

    def _send_rerr(self, unreachable: set[int]) -> None:
        rerr = Packet(
            kind=PacketKind.RERR,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.RERR),
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            payload=frozenset(unreachable),
        )
        self.rerrs_sent += 1
        self.trace("aodv.rerr", unreachable=sorted(unreachable))
        self.mac.send(rerr)

    def _on_rerr(self, packet: Packet, rx: MacRxInfo) -> None:
        affected = set()
        for dest in packet.payload:
            route = self.routes.get(dest)
            if route is not None and route.valid and route.next_hop == rx.src:
                route.valid = False
                affected.add(dest)
        if affected:
            # Propagate only for routes that actually died here, so the RERR
            # walks back along the broken route's tree and then stops.
            self._send_rerr(affected)
