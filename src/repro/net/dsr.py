"""DSR baseline (Johnson & Maltz [27]) — on-demand *source* routing.

The paper groups AODV and DSR together as the reactive explicit-route
protocols that Routeless Routing is an alternative to.  DSR's distinguishing
features, all modelled:

* **Route record discovery** — the flooded route request accumulates the
  node list it traversed; the destination reverses the record into a
  complete source route and unicasts the reply back along it.
* **Source routes in data packets** — every data packet carries its full
  route (charged to its header size: 4 bytes per hop), and intermediate
  nodes forward by position in that route, keeping no per-flow state.
* **Route caching** — the source keeps the discovered route until a hop on
  it is reported broken.
* **Route error** — a relay that fails to reach the next hop unicasts a
  route error naming the broken link back toward the source along the
  prefix of the route it was given; every node on the way (and the source)
  drops cached routes using that link.

Simplifications mirroring the AODV baseline: no promiscuous route shortening
and no replies from intermediate caches — the paper's own comparison treats
discovery quality as the reactive protocols' weak point, so the baseline
stays classic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import (
    DEFAULT_CTRL_SIZE,
    DEFAULT_DATA_SIZE,
    Packet,
    PacketKind,
)
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = ["DsrConfig", "Dsr"]

#: Header bytes charged per hop carried in a source route.
ROUTE_ENTRY_BYTES = 4


@dataclass
class _Discovery:
    target: int
    attempts: int = 0
    handle: object = None


@dataclass(frozen=True)
class DsrConfig:
    rreq_timeout_s: float = 1.0
    max_rreq_retries: int = 3
    rreq_jitter_s: float = 0.01
    data_size: int = DEFAULT_DATA_SIZE
    ctrl_size: int = DEFAULT_CTRL_SIZE
    max_hops: int = 32
    max_pending_data: int = 64


class Dsr(NetworkProtocol):
    """One node's DSR entity.

    Packet conventions: ``payload`` carries the source route as a tuple of
    node ids ``(source, ..., destination)``; for route errors it carries the
    broken link ``(from_node, to_node)`` plus the return route.
    """

    PROTOCOL_NAME = "dsr"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: DsrConfig | None = None, metrics=None):
        config = config if config is not None else DsrConfig()
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        #: destination -> full source route (tuple of node ids, ends at dest)
        self.route_cache: dict[int, tuple[int, ...]] = {}
        self._pending_data: dict[int, list[Packet]] = {}
        self._discoveries: dict[int, _Discovery] = {}
        self._rng = self.rng("jitter")

        self.rreqs_sent = 0
        self.rreps_sent = 0
        self.rerrs_sent = 0
        self.data_forwarded = 0
        self.data_dropped = 0
        self.link_failures = 0

    # ------------------------------------------------------------------ app

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        self._dispatch_data(packet)
        return packet

    def _dispatch_data(self, packet: Packet) -> None:
        route = self.route_cache.get(packet.target)
        if route is not None:
            self._send_along(packet, route)
        else:
            queue = self._pending_data.setdefault(packet.target, [])
            if len(queue) >= self.config.max_pending_data:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.QUEUE_OVERFLOW,
                                  where="pending_discovery")
            else:
                queue.append(packet)
            self._start_discovery(packet.target)

    def _send_along(self, packet: Packet, route: tuple[int, ...]) -> None:
        """Stamp the source route and unicast to its first hop."""
        stamped = packet.with_fields(
            payload=route,
            size_bytes=packet.size_bytes + ROUTE_ENTRY_BYTES * len(route),
        )
        next_hop = route[1] if len(route) > 1 else packet.target
        self.mac.send(stamped, dst=next_hop)

    # ------------------------------------------------------------ discovery

    def _start_discovery(self, target: int) -> None:
        if target in self._discoveries:
            return
        disc = _Discovery(target=target)
        self._discoveries[target] = disc
        self._send_rreq(disc)

    def _send_rreq(self, disc: _Discovery) -> None:
        packet = Packet(
            kind=PacketKind.RREQ,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.RREQ),
            target=disc.target,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            payload=(self.node_id,),  # the route record starts with us
        )
        self.dup_cache.record(packet)
        self.rreqs_sent += 1
        self.trace("dsr.rreq", packet=str(packet), attempt=disc.attempts)
        self.mac.send(packet)
        disc.handle = self.schedule(
            self.config.rreq_timeout_s, self._rreq_timeout, disc
        )

    def _rreq_timeout(self, disc: _Discovery) -> None:
        if self._discoveries.get(disc.target) is not disc:
            return
        if disc.target in self.route_cache:
            del self._discoveries[disc.target]
            return
        disc.attempts += 1
        if disc.attempts > self.config.max_rreq_retries:
            del self._discoveries[disc.target]
            dropped = self._pending_data.pop(disc.target, [])
            self.data_dropped += len(dropped)
            if self.ctx.observing:
                for packet in dropped:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  target=disc.target)
            self.trace("dsr.discovery_failed", target=disc.target,
                       dropped=len(dropped))
            return
        self._send_rreq(disc)

    def _discovery_succeeded(self, target: int) -> None:
        disc = self._discoveries.pop(target, None)
        if disc is not None and disc.handle is not None:
            disc.handle.cancel()
        route = self.route_cache.get(target)
        if route is None:
            return
        for packet in self._pending_data.pop(target, []):
            self._send_along(packet, route)

    # -------------------------------------------------------------- receive

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.origin == self.node_id and packet.kind == PacketKind.RREQ:
            return  # our own flood echoing back
        if packet.kind == PacketKind.RREQ:
            self._on_rreq(packet)
        elif packet.kind == PacketKind.RREP:
            self._on_rrep(packet)
        elif packet.kind == PacketKind.DATA:
            self._on_data(packet, rx)
        elif packet.kind == PacketKind.RERR:
            self._on_rerr(packet)

    def _on_rreq(self, packet: Packet) -> None:
        if not self.dup_cache.record(packet):
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return
        record = packet.payload
        if self.node_id in record:
            return  # loop; cannot happen with dup suppression, but be safe
        record = record + (self.node_id,)
        if packet.target == self.node_id:
            route = record  # source ... us — a complete forward route
            reply = Packet(
                kind=PacketKind.RREP,
                origin=self.node_id,
                seq=self.seq.next(PacketKind.RREP),
                target=packet.origin,
                size_bytes=self.config.ctrl_size + ROUTE_ENTRY_BYTES * len(route),
                created_at=self.now,
                ref_seq=packet.seq,
                payload=route,
            )
            self.rreps_sent += 1
            self.trace("dsr.rrep", route=route)
            # Walk the reply back along the reversed record.
            self.mac.send(reply, dst=route[-2])
            return
        if len(record) >= self.config.max_hops:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.TTL_EXPIRED,
                              hops=len(record))
            return
        forwarded = packet.forwarded(self.node_id).with_fields(payload=record)
        jitter = float(self._rng.uniform(0.0, self.config.rreq_jitter_s))
        self.schedule(jitter, self.mac.send, forwarded)

    def _on_rrep(self, packet: Packet) -> None:
        route = packet.payload  # (source, ..., destination)
        if packet.target == self.node_id:
            self.route_cache[route[-1]] = route
            self.trace("dsr.route_ready", route=route)
            self._discovery_succeeded(route[-1])
            return
        # Forward toward the source: previous entry in the record.
        try:
            index = route.index(self.node_id)
        except ValueError:
            return
        if index == 0:
            return
        self.mac.send(packet.forwarded(self.node_id), dst=route[index - 1])

    def _on_data(self, packet: Packet, rx: MacRxInfo) -> None:
        if not self.dup_cache.record(packet):
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return  # MAC-retransmission duplicate
        if packet.target == self.node_id:
            self.deliver_up(packet, rx)
            return
        route = packet.payload
        try:
            index = route.index(self.node_id)
        except (ValueError, AttributeError):
            self.data_dropped += 1
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.NO_ROUTE,
                              cause="not_on_source_route")
            return
        if index + 1 >= len(route):
            self.data_dropped += 1
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.NO_ROUTE,
                              cause="route_exhausted")
            return
        self.data_forwarded += 1
        if self.ctx.observing:
            self.obs_forward(packet, next_hop=route[index + 1])
        self.mac.send(packet.forwarded(self.node_id), dst=route[index + 1])

    # ---------------------------------------------------- failure machinery

    def on_send_failed(self, packet: Packet, dst: Optional[int]) -> None:
        if dst is None or packet is None:
            return
        self.link_failures += 1
        broken = (self.node_id, dst)
        self._purge_routes(broken)
        self.trace("dsr.link_broken", link=broken)

        if packet.kind == PacketKind.DATA:
            route = packet.payload if isinstance(packet.payload, tuple) else ()
            if packet.origin == self.node_id:
                # We are the source: strip the dead route and rediscover.
                bare = packet.with_fields(
                    payload=None,
                    size_bytes=max(packet.size_bytes - ROUTE_ENTRY_BYTES * len(route),
                                   self.config.data_size),
                )
                self._dispatch_data(bare)
            else:
                self.data_dropped += 1
                if self.ctx.observing:
                    self.obs_drop(packet, DropReason.NO_ROUTE,
                                  cause="link_broken")
                self._send_rerr(broken, route, packet.origin)
        # Lost RREPs / RERRs: the requester's timeout machinery recovers.

    def _send_rerr(self, broken: tuple[int, int], route: tuple[int, ...],
                   source: int) -> None:
        """Unicast a route error back toward the data packet's source."""
        try:
            index = route.index(self.node_id)
        except ValueError:
            return
        if index == 0:
            return
        rerr = Packet(
            kind=PacketKind.RERR,
            origin=self.node_id,
            seq=self.seq.next(PacketKind.RERR),
            target=source,
            size_bytes=self.config.ctrl_size,
            created_at=self.now,
            payload=(broken, route),
        )
        self.rerrs_sent += 1
        self.mac.send(rerr, dst=route[index - 1])

    def _on_rerr(self, packet: Packet) -> None:
        broken, route = packet.payload
        self._purge_routes(broken)
        if packet.target == self.node_id:
            return
        try:
            index = route.index(self.node_id)
        except ValueError:
            return
        if index > 0:
            self.mac.send(packet.forwarded(self.node_id), dst=route[index - 1])

    def _purge_routes(self, broken: tuple[int, int]) -> None:
        u, v = broken
        dead = [dest for dest, route in self.route_cache.items()
                if any(route[i] == u and route[i + 1] == v
                       for i in range(len(route) - 1))]
        for dest in dead:
            del self.route_cache[dest]
