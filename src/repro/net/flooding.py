"""Flooding protocols as instances of local leader election.

Section 3 frames packet forwarding in flooding as a local leader election:
the end of a packet's transmission is the implicit synchronization point, and
the receivers compete — with metric-derived backoffs — for the right to
rebroadcast.  One configurable protocol class therefore covers the paper's
whole flooding family:

* **Blind ("original") flooding** — every node rebroadcasts the first copy of
  every packet after a short random delay; hearing the packet again does
  *not* suppress the pending rebroadcast.  This is the route-discovery
  flooding the paper's AODV implementation uses.
* **Counter-1 flooding** [19] — like blind flooding, but a node that hears
  the same packet again *before its own backoff expires* cancels the
  rebroadcast (the counter-based scheme of the broadcast-storm paper with a
  threshold of one).  Backoffs are random, so the election winner is
  arbitrary.
* **SSAF** — counter-1 flooding with the backoff derived from received
  signal strength (see :class:`~repro.core.backoff.SignalStrengthBackoff`):
  likely-distant receivers win the election, rebroadcasts cover more fresh
  area, hop counts shrink and delivery rises.  Pair it with the MAC priority
  queue so short-backoff packets also overtake within a node (the paper's
  explanation for the delay advantage under load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.backoff import BackoffInput, BackoffPolicy, RandomBackoff, SignalStrengthBackoff
from repro.core.timer import CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.base import NetworkProtocol
from repro.net.packet import DEFAULT_DATA_SIZE, Packet, PacketKind
from repro.obs.ledger import DropReason
from repro.sim.components import SimContext

__all__ = [
    "FloodingConfig",
    "ElectionFlooding",
    "BlindFlooding",
    "Counter1Flooding",
    "SSAF",
]


@dataclass(frozen=True)
class FloodingConfig:
    policy: BackoffPolicy = field(default_factory=RandomBackoff)
    #: Cancel a pending rebroadcast on hearing a duplicate (counter-1 rule).
    suppress_on_duplicate: bool = True
    #: Hop budget; packets are not rebroadcast beyond this many hops.
    max_hops: int = 32
    data_size: int = DEFAULT_DATA_SIZE


class ElectionFlooding(NetworkProtocol):
    """The election-structured flooding engine behind all three variants."""

    PROTOCOL_NAME = "flood"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: FloodingConfig, metrics=None):
        super().__init__(ctx, node_id, mac, self.PROTOCOL_NAME, metrics)
        self.config = config
        self._policy_rng = self.rng("policy")
        self._timers: dict[tuple, CandidateTimer] = {}
        self._queued_fwd: dict[tuple, Packet] = {}
        # counters for tests / ablations
        self.rebroadcasts = 0
        self.suppressed = 0

    # ---------------------------------------------------------------- sends

    def send_data(self, target: int, size_bytes: int | None = None) -> Packet:
        packet = self.make_data(
            target, self.config.data_size if size_bytes is None else size_bytes
        )
        self.dup_cache.record(packet)
        # The source is trivially the leader for hop zero: transmit at once.
        self.mac.send(packet)
        return packet

    # ------------------------------------------------------------- receives

    def observe(self, packet: Packet, rx: MacRxInfo) -> BackoffInput:
        """What this node knows at the implicit sync point.  Subclasses with
        richer knowledge (e.g. oracle location) override this."""
        return BackoffInput(
            rng=self._policy_rng,
            rx_power_dbm=rx.power_dbm,
            expected_hops=packet.expected_hops,
        )

    def on_mac_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.kind != PacketKind.DATA:
            return
        if not self.dup_cache.record(packet):
            self._on_duplicate(packet)
            return
        if self.ctx.tracing:
            self.trace("flood.first_copy", packet=str(packet))
        if packet.target == self.node_id:
            self.deliver_up(packet, rx)
            return  # the destination never needs to rebroadcast
        if packet.actual_hops + 1 >= self.config.max_hops:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.TTL_EXPIRED,
                              hops=packet.actual_hops + 1)
            return
        delay = self.config.policy.delay(self.observe(packet, rx))
        timer = CandidateTimer(self, lambda: self._rebroadcast(packet, delay))
        self._timers[packet.uid] = timer
        timer.arm(delay)

    def _on_duplicate(self, packet: Packet) -> None:
        if not self.config.suppress_on_duplicate:
            if self.ctx.observing:
                self.obs_drop(packet, DropReason.DUPLICATE)
            return
        timer = self._timers.get(packet.uid)
        if timer is not None and timer.suppress():
            self.suppressed += 1
            if self.ctx.tracing:
                self.trace("flood.suppressed", packet=str(packet))
            if self.ctx.observing:
                self.obs_suppress(packet, how="timer")
            return
        # The election may be lost after the timer fired but before our copy
        # reached the air; withdraw it from the MAC if it is still queued.
        queued = self._queued_fwd.get(packet.uid)
        if queued is not None and self.mac.cancel_send(queued):
            del self._queued_fwd[packet.uid]
            self.rebroadcasts -= 1
            self.suppressed += 1
            if self.ctx.tracing:
                self.trace("flood.suppressed_queued", packet=str(packet))
            if self.ctx.observing:
                self.obs_suppress(packet, how="queued_cancel")
            return
        if self.ctx.observing:
            # Plain discarded duplicate: we already relayed (or never armed).
            self.obs_drop(packet, DropReason.DUPLICATE)

    def _rebroadcast(self, packet: Packet, backoff_used: float) -> None:
        self._timers.pop(packet.uid, None)
        self.rebroadcasts += 1
        forwarded = packet.forwarded(self.node_id)
        if self.ctx.observing:
            self.obs_forward(packet, backoff_s=backoff_used)
            self.ctx.obs.on_election_win(self.now, self.node_id, packet.uid,
                                         self.PROTOCOL_NAME, backoff_used)
        self._queued_fwd[packet.uid] = forwarded
        # The election backoff doubles as the intra-node queue priority: with
        # the MAC priority queue, urgent relays overtake queued laggards.
        self.mac.send(forwarded, priority=backoff_used)


class BlindFlooding(ElectionFlooding):
    """Original flooding: first copy always rebroadcast, no suppression."""

    PROTOCOL_NAME = "blind_flood"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: FloodingConfig | None = None, metrics=None,
                 max_backoff: float = 0.01):
        if config is None:
            config = FloodingConfig(
                policy=RandomBackoff(max_delay=max_backoff),
                suppress_on_duplicate=False,
            )
        super().__init__(ctx, node_id, mac, config, metrics)


class Counter1Flooding(ElectionFlooding):
    """Duplicate-suppressing flooding with a random (unprioritized) backoff."""

    PROTOCOL_NAME = "counter1"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: FloodingConfig | None = None, metrics=None,
                 max_backoff: float = 0.05):
        if config is None:
            config = FloodingConfig(
                policy=RandomBackoff(max_delay=max_backoff),
                suppress_on_duplicate=True,
            )
        super().__init__(ctx, node_id, mac, config, metrics)


class SSAF(ElectionFlooding):
    """Signal Strength Aware Flooding (Section 3)."""

    PROTOCOL_NAME = "ssaf"

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: FloodingConfig | None = None, metrics=None,
                 lam: float = 0.05, rx_threshold_dbm: float = -64.0):
        if config is None:
            config = FloodingConfig(
                policy=SignalStrengthBackoff(lam=lam, rx_threshold_dbm=rx_threshold_dbm),
                suppress_on_duplicate=True,
            )
        super().__init__(ctx, node_id, mac, config, metrics)
