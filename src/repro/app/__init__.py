"""Application layer: traffic generation and sinks."""

from repro.app.cbr import CbrConfig, CbrSource, PacketSink

__all__ = ["CbrConfig", "CbrSource", "PacketSink"]
