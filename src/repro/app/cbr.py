"""Constant-bit-rate traffic sources (the paper's workload model).

Both evaluations drive the network with CBR flows: Figure 1 sweeps the
packet generation interval over 50 random source→destination connections;
Figures 3 and 4 use 1-10 *bidirectional* communicating pairs.  A
:class:`CbrSource` emits one data packet every ``interval`` seconds through
whatever network protocol it is attached to; an optional start jitter
desynchronizes the sources so they do not all hit the medium in phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.base import NetworkProtocol
from repro.sim.components import Component, SimContext

__all__ = ["CbrConfig", "CbrSource", "PacketSink"]


@dataclass(frozen=True)
class CbrConfig:
    """Cadence and lifetime of one constant-bit-rate flow."""
    interval_s: float
    start_s: float = 0.0
    stop_s: Optional[float] = None
    size_bytes: Optional[int] = None  # None = protocol default
    #: Uniform random offset added to ``start_s``, bounded by this value.
    start_jitter_s: float = 0.0


class CbrSource(Component):
    """Feeds ``protocol.send_data(target, ...)`` on a fixed cadence."""

    def __init__(self, ctx: SimContext, protocol: NetworkProtocol, target: int,
                 config: CbrConfig):
        super().__init__(ctx, f"cbr[{protocol.node_id}->{target}]")
        if config.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.protocol = protocol
        self.target = target
        self.config = config
        self.generated = 0
        #: Local-clock rate factor (clock-skew fault); 1.0 is bit-exact.
        self.time_scale = 1.0
        start = config.start_s
        if config.start_jitter_s > 0:
            start += float(self.rng().uniform(0.0, config.start_jitter_s))
        self.schedule(start, self._tick)

    def _tick(self) -> None:
        if self.config.stop_s is not None and self.now >= self.config.stop_s:
            return
        self.generated += 1
        self.protocol.send_data(self.target, self.config.size_bytes)
        self.schedule(self.config.interval_s * self.time_scale, self._tick)


class PacketSink(Component):
    """Counts (deduplicated) application-layer deliveries at one node.

    The central :class:`~repro.stats.metrics.MetricsCollector` already
    aggregates network-wide results; sinks exist for tests and examples that
    want per-node receive logs.
    """

    def __init__(self, ctx: SimContext, protocol: NetworkProtocol):
        super().__init__(ctx, f"sink[{protocol.node_id}]")
        self.received: list = []
        self._seen: set = set()
        protocol.deliver.connect(self._on_packet)

    def _on_packet(self, packet, rx) -> None:
        if packet.uid in self._seen:
            return
        self._seen.add(packet.uid)
        self.received.append((self.now, packet))

    def __len__(self) -> int:
        return len(self.received)
