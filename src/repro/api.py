"""repro.api — the supported programmatic surface, in one place.

Everything importable from this module is covered by the compatibility
promise: names stay put across releases, config dataclasses are
keyword-only (positional construction was never supported and is now a
``TypeError``), and every experiment ``run_one`` returns an
:class:`ExperimentResult`.  Anything imported from deeper module paths is
internal and may move without notice.

The surface, by task:

**Build and run a network** — :class:`ScenarioConfig` describes one
deployment (terrain, density, range, propagation, energy); pass it and a
protocol factory to :func:`build_network`, attach workload with
:func:`attach_cbr`, then ``net.run(until=...)``::

    from repro.api import ScenarioConfig, build_network, attach_cbr
    from repro import SSAF
    net = build_network(
        lambda ctx, nid, mac, m: SSAF(ctx, nid, mac, metrics=m),
        ScenarioConfig(n_nodes=50, seed=7),
    )
    attach_cbr(net, [(0, 42)], interval_s=2.0)
    net.run(until=60.0)

**Shape the deployment** — an :class:`Arena` describes the deployment box
(2-D terrain, or a 3-D volume via ``depth_m``); mobility models
(:class:`RandomWaypoint`, :class:`RandomWalk`, :class:`GaussMarkov3D`) and
the :class:`VirtualForceControl` topology controller move nodes through
it, and :func:`mobility_model` resolves models by registry name so
campaigns can sweep them (see ``docs/SCENARIOS.md``)::

    from repro.api import Arena, GaussMarkov3D, GaussMarkovConfig
    arena = Arena(900.0, 900.0, depth_m=200.0)
    GaussMarkov3D(net.ctx, net.channel, arena=arena,
                  config=GaussMarkovConfig(alpha=0.85))

**Run experiment sweeps** — the :mod:`~repro.experiments.registry` maps
experiment names to their sweep definitions; :func:`run_campaign` /
:func:`run_spec` execute a :class:`CampaignSpec` with caching, journaling
and multiprocess fan-out.  Every cell comes back as an
:class:`ExperimentResult` (metrics dict + config fingerprint + seed +
wall time)::

    from repro.api import registry, run_spec
    outcome = run_spec(registry.get("fig3").build_spec(), workers=4)

**Inject faults** — a :class:`FaultPlan` is a declarative, serializable,
seed-reproducible chaos schedule; :func:`install_plan` arms it on a built
network, and :func:`check_invariants` audits the run's observability
ledger afterwards (see ``docs/FAULTS.md``)::

    from repro.api import FaultPlan, NodeCrash, install_plan, check_invariants
    plan = FaultPlan(name="crash", faults=(
        NodeCrash(nodes=(7,), start_s=3.0, recover_s=6.0),))
    controller = install_plan(net, plan, exempt={0, 42})

**Distribute campaigns** — :func:`run_campaign` takes an
:class:`ExecutionBackend` (``"local-pool"``, ``"ssh"``, ``"job-array"``,
or a custom one via :func:`register_backend`) plus :class:`DistOptions`;
workers coordinate through expiring filesystem leases and a shared
spool, so a killed worker's cells are stolen by peers (see
``docs/DISTRIBUTED.md``)::

    from repro.api import DistOptions, run_campaign
    outcome = run_campaign(run_one, ..., backend="ssh",
                           dist_options=DistOptions(hosts_file="hosts.txt"))

**Serve results** — :class:`ReproServer` (or ``repro serve``) puts the
campaign cache and executor behind a long-lived HTTP/JSON + SSE daemon
with single-flight dedup and two-lane admission control;
:class:`ServeClient` (or ``repro query``) is the matching client, and
:class:`ServerThread` embeds a daemon in-process (see
``docs/SERVING.md``)::

    from repro.api import ServeClient, ServeConfig, ServerThread
    with ServerThread(ServeConfig(port=0, cache_dir="campaigns/cache")) as srv:
        reply = ServeClient(srv.base_url).run(
            {"experiment": "fig1", "protocol": "ssaf", "x": 1.0, "seed": 1})
"""

from __future__ import annotations

from repro.campaign import (
    CampaignOutcome,
    CampaignSpec,
    ResultCache,
    run_campaign,
    run_spec,
)
from repro.dist import (
    DistOptions,
    ExecutionBackend,
    HostSpec,
    check_hosts,
    parse_hosts_file,
    register_backend,
)
from repro.experiments import registry
from repro.experiments.common import (
    Network,
    ScenarioConfig,
    attach_cbr,
    build_network,
    build_protocol_network,
    pick_flows,
)
from repro.experiments.result import ExperimentResult, config_fingerprint
from repro.faults import (
    ClockSkew,
    DutyCycleOutage,
    EnergyDepletion,
    FaultController,
    FaultPlan,
    InvariantViolation,
    LinkDegradation,
    NodeCrash,
    PacketCorruption,
    Partition,
    Violation,
    check_invariants,
    fig4_plan,
    install_plan,
    mixed_chaos_plan,
)
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
)
from repro.stats import MetricsSummary, SweepSeries
from repro.topology import (
    Arena,
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    RandomWalk,
    RandomWaypoint,
    VirtualForceConfig,
    VirtualForceControl,
    mobility_model,
    mobility_model_names,
    register_mobility_model,
)

__all__ = [
    # network construction
    "Network",
    "ScenarioConfig",
    "attach_cbr",
    "build_network",
    "build_protocol_network",
    "pick_flows",
    # geometry and mobility
    "Arena",
    "GaussMarkov3D",
    "GaussMarkovConfig",
    "MobilityConfig",
    "RandomWalk",
    "RandomWaypoint",
    "VirtualForceConfig",
    "VirtualForceControl",
    "mobility_model",
    "mobility_model_names",
    "register_mobility_model",
    # campaigns and results
    "CampaignOutcome",
    "CampaignSpec",
    "ExperimentResult",
    "MetricsSummary",
    "ResultCache",
    "SweepSeries",
    "config_fingerprint",
    "registry",
    "run_campaign",
    "run_spec",
    # distributed execution
    "DistOptions",
    "ExecutionBackend",
    "HostSpec",
    "check_hosts",
    "parse_hosts_file",
    "register_backend",
    # fault injection
    "ClockSkew",
    "DutyCycleOutage",
    "EnergyDepletion",
    "FaultController",
    "FaultPlan",
    "InvariantViolation",
    "LinkDegradation",
    "NodeCrash",
    "PacketCorruption",
    "Partition",
    "Violation",
    "check_invariants",
    "fig4_plan",
    "install_plan",
    "mixed_chaos_plan",
    # result serving
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
]
