"""Half-duplex transceiver with carrier sensing, collisions and power states.

The transceiver mediates between the MAC layer and the shared
:class:`~repro.phy.channel.Channel`:

* **Transmit** — the MAC hands it a frame and a duration; the radio enters
  ``TX`` and asks the channel to deliver the frame to every node in range.
* **Receive** — the channel calls :meth:`begin_receive` / :meth:`end_receive`
  for every frame whose power at this node exceeds the carrier-sense
  threshold.  Frames above the *receive* threshold can be decoded; two
  decodable frames overlapping in time corrupt each other (a collision),
  unless the optional capture margin lets the stronger one survive.
* **Carrier sense** — any energy above the carrier-sense threshold marks the
  medium busy; the MAC is notified on busy/idle transitions.  The sense
  threshold sits below the receive threshold, so nodes defer to transmissions
  they cannot decode — the standard CSMA behaviour the paper's backoff
  machinery assumes.
* **Power states** — ``SLEEP`` and ``OFF`` make the node deaf and mute.  The
  Figure 4 failure model drives :meth:`set_power` directly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.ledger import DropReason
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame
    from repro.phy.channel import Channel
    from repro.phy.energy import EnergyMeter

__all__ = ["RadioState", "RxInfo", "RadioConfig", "Transceiver"]


class RadioState(enum.Enum):
    IDLE = "idle"
    TX = "tx"
    RX = "rx"
    SLEEP = "sleep"
    OFF = "off"


@dataclass(frozen=True)
class RxInfo:
    """Reception metadata delivered to the MAC alongside a decoded frame.

    ``power_dbm`` is what SSAF's backoff policy consumes — the signal strength
    of the received packet.
    """

    power_dbm: float
    begin_time: float
    end_time: float


@dataclass(frozen=True)
class RadioConfig:
    tx_power_dbm: float = 15.0
    rx_threshold_dbm: float = -64.0
    #: Offset below the receive threshold at which energy is still sensed.
    cs_margin_db: float = 6.0
    #: A decodable frame survives a collision if it is stronger than the sum
    #: of interferers by this margin.  ``None`` disables capture.
    #: (Simple-collision model only.)
    capture_margin_db: float | None = None
    #: Use the SINR reception model instead of the simple collision model:
    #: a locked frame survives as long as its power over (noise + summed
    #: interference) stays above ``sinr_threshold_db`` for its whole
    #: duration.  Weak interferers then no longer destroy strong frames.
    sinr_model: bool = False
    sinr_threshold_db: float = 10.0
    noise_floor_dbm: float = -100.0

    @property
    def cs_threshold_dbm(self) -> float:
        return self.rx_threshold_dbm - self.cs_margin_db


class _Reception:
    __slots__ = ("frame", "power_dbm", "begin_time", "decodable", "corrupted")

    def __init__(self, frame: "Frame", power_dbm: float, begin_time: float, decodable: bool):
        self.frame = frame
        self.power_dbm = power_dbm
        self.begin_time = begin_time
        self.decodable = decodable
        self.corrupted = False


class Transceiver(Component):
    """One node's radio."""

    def __init__(
        self,
        ctx: SimContext,
        node_id: int,
        channel: "Channel",
        config: RadioConfig,
        energy: "EnergyMeter | None" = None,
    ):
        super().__init__(ctx, f"radio[{node_id}]")
        self.node_id = node_id
        self.channel = channel
        self.config = config
        self.energy = energy

        self.state = RadioState.IDLE
        self._locked: int | None = None  # token of the frame being decoded
        self._receptions: dict[int, _Reception] = {}
        self._sensed = 0  # number of ongoing above-CS-threshold receptions
        self._tx_end_handle = None

        #: Fault injection (see :mod:`repro.faults`): probability that an
        #: otherwise-intact reception is corrupted by random bit errors.
        #: 0.0 = off; the hot path pays one float compare.  The RNG is set
        #: by the injector together with a nonzero probability.
        self.fault_corrupt_prob = 0.0
        self._fault_rng = None

        #: Delivers ``(frame, RxInfo)`` for every intact decoded frame.
        self.to_mac = self.outport("to_mac")
        #: Delivers ``busy: bool`` on medium busy/idle transitions.
        self.carrier = self.outport("carrier")
        #: Fires (no args) when our own transmission completes.
        self.tx_done = self.outport("tx_done")

        channel.register(self)

    # ----------------------------------------------------------------- state

    @property
    def is_on(self) -> bool:
        return self.state not in (RadioState.SLEEP, RadioState.OFF)

    def carrier_busy(self) -> bool:
        """True when the MAC should defer (energy sensed or transmitting)."""
        return self.state == RadioState.TX or self._sensed > 0

    def _set_state(self, state: RadioState) -> None:
        if self.energy is not None:
            self.energy.on_state_change(self.now, self.state, state)
        self.state = state

    def set_power(self, on: bool, sleep: bool = False) -> None:
        """Turn the transceiver on or off (Figure 4's failure model).

        Turning off aborts any reception in progress; the node simply misses
        frames that were in flight — exactly the behaviour that breaks AODV
        routes and that Routeless Routing shrugs off.
        """
        if on:
            if self.state in (RadioState.SLEEP, RadioState.OFF):
                self._set_state(RadioState.IDLE)
                self.trace("radio.on")
        else:
            was_busy = self.carrier_busy()
            if self._tx_end_handle is not None:
                self._tx_end_handle.cancel()
                self._tx_end_handle = None
            self._receptions.clear()
            self._locked = None
            self._sensed = 0
            self._set_state(RadioState.SLEEP if sleep else RadioState.OFF)
            self.trace("radio.off")
            if was_busy and self.carrier.connected:
                self.carrier(False)

    # -------------------------------------------------------------- transmit

    def transmit(self, frame: "Frame", duration: float) -> bool:
        """Start transmitting.  Returns False if the radio cannot send now."""
        if not self.is_on or self.state == RadioState.TX:
            return False
        # Half-duplex: starting a transmission destroys any reception that
        # was being decoded.
        if self._locked is not None:
            reception = self._receptions.get(self._locked)
            if reception is not None:
                reception.corrupted = True
            self._locked = None
        self._set_state(RadioState.TX)
        if self.ctx.tracing:
            self.trace("radio.tx", frame=str(frame), duration=duration)
        self._tx_end_handle = self.schedule(duration, self._finish_tx)
        self.channel.transmit(self.node_id, frame, duration)
        return True

    def _finish_tx(self) -> None:
        self._tx_end_handle = None
        self._set_state(RadioState.IDLE)
        # A reception that began mid-transmission was corrupted at
        # begin_receive time; nothing to resume here.
        if self.tx_done.connected:
            self.tx_done()
        if not self.carrier_busy() and self.carrier.connected:
            # Leaving TX may have freed the medium from the MAC's viewpoint.
            self.carrier(False)

    # --------------------------------------------------------------- receive

    def begin_receive(self, token: int, frame: "Frame", power_dbm: float) -> None:
        """Channel callback: a frame's leading edge reached this node."""
        if not self.is_on:
            return
        decodable = power_dbm >= self.config.rx_threshold_dbm
        reception = _Reception(frame, power_dbm, self.now, decodable)
        self._receptions[token] = reception

        if power_dbm >= self.config.cs_threshold_dbm:
            self._sensed += 1
            if self._sensed == 1 and self.state != RadioState.TX and self.carrier.connected:
                self.carrier(True)

        if not decodable:
            if self.config.sinr_model:
                self._check_locked_sinr()
            return
        if self.state == RadioState.TX:
            reception.corrupted = True
            return
        if self.config.sinr_model:
            self._begin_receive_sinr(token, reception)
            return
        if self._locked is None:
            self._locked = token
            self._set_state(RadioState.RX)
        else:
            current = self._receptions.get(self._locked)
            if current is not None:
                margin = self.config.capture_margin_db
                if margin is not None and current.power_dbm >= power_dbm + margin:
                    # Strong ongoing frame captures the channel; the newcomer
                    # is lost but the lock survives.
                    reception.corrupted = True
                    return
                current.corrupted = True
            reception.corrupted = True
            if self.ctx.tracing:
                self.trace("radio.collision", frame=str(frame))

    # -------------------------------------------------------- SINR variant

    def _interference_mw(self, excluding: int | None) -> float:
        """Summed linear power of every ongoing reception except one."""
        total = 0.0
        for tok, reception in self._receptions.items():
            if tok != excluding:
                total += 10.0 ** (reception.power_dbm / 10.0)
        return total

    def _sinr_db(self, token: int) -> float:
        reception = self._receptions[token]
        signal_mw = 10.0 ** (reception.power_dbm / 10.0)
        noise_mw = 10.0 ** (self.config.noise_floor_dbm / 10.0)
        return 10.0 * math.log10(signal_mw / (noise_mw + self._interference_mw(token)))

    def _check_locked_sinr(self) -> None:
        """Corrupt the locked frame if interference just drowned it."""
        if self._locked is None:
            return
        current = self._receptions.get(self._locked)
        if current is not None and not current.corrupted:
            if self._sinr_db(self._locked) < self.config.sinr_threshold_db:
                current.corrupted = True
                if self.ctx.tracing:
                    self.trace("radio.sinr_drowned", frame=str(current.frame))

    def _begin_receive_sinr(self, token: int, reception: "_Reception") -> None:
        if self._locked is None:
            # Lock on only if the frame clears the SINR bar right now.
            if self._sinr_db(token) >= self.config.sinr_threshold_db:
                self._locked = token
                self._set_state(RadioState.RX)
            else:
                reception.corrupted = True
            return
        # A decodable newcomer: it is interference to the locked frame...
        self._check_locked_sinr()
        current = self._receptions.get(self._locked)
        if current is not None and current.corrupted:
            # ...and may capture the lock if it is strong enough itself.
            if self._sinr_db(token) >= self.config.sinr_threshold_db:
                self._locked = token
                if self.ctx.tracing:
                    self.trace("radio.sinr_capture", frame=str(reception.frame))
                return
        reception.corrupted = True

    def end_receive(self, token: int) -> None:
        """Channel callback: the frame's trailing edge passed this node."""
        reception = self._receptions.pop(token, None)
        if reception is None:
            return  # radio was off when the frame arrived (or cycled off/on)

        if reception.power_dbm >= self.config.cs_threshold_dbm:
            self._sensed = max(0, self._sensed - 1)
            if self._sensed == 0 and self.state != RadioState.TX and self.carrier.connected:
                self.carrier(False)

        if self._locked == token:
            self._locked = None
            if self.state == RadioState.RX:
                self._set_state(RadioState.IDLE)
            if (not reception.corrupted and self.fault_corrupt_prob > 0.0
                    and float(self._fault_rng.random()) < self.fault_corrupt_prob):
                # Injected PHY fault: the frame decoded fine, but random bit
                # errors destroyed it.  Distinct from COLLISION so chaos
                # reports attribute the loss to the fault plan.
                if self.ctx.tracing:
                    self.trace("radio.fault_corrupt", frame=str(reception.frame))
                if self.ctx.observing:
                    payload = reception.frame.payload
                    self.ctx.obs.on_drop(
                        self.now, self.node_id, "phy",
                        DropReason.FAULT_CORRUPTED,
                        payload.uid if payload is not None else None)
                return
            if not reception.corrupted:
                info = RxInfo(reception.power_dbm, reception.begin_time, self.now)
                if self.ctx.tracing:
                    self.trace("radio.rx", frame=str(reception.frame), power=reception.power_dbm)
                if self.ctx.observing:
                    payload = reception.frame.payload
                    self.ctx.obs.on_rx(
                        self.now, self.node_id,
                        payload.uid if payload is not None else None,
                        reception.power_dbm)
                if self.to_mac.connected:
                    self.to_mac(reception.frame, info)
            else:
                if self.ctx.tracing:
                    self.trace("radio.rx_corrupt", frame=str(reception.frame))
                if self.ctx.observing:
                    # The frame this radio locked onto arrived corrupted:
                    # that copy died to a collision (or SINR drowning).
                    payload = reception.frame.payload
                    self.ctx.obs.on_drop(
                        self.now, self.node_id, "phy", DropReason.COLLISION,
                        payload.uid if payload is not None else None)
