"""The shared wireless medium.

The channel owns node positions and the propagation model, precomputing the
link budget so the per-transmission hot path reduces to an indexed lookup
plus one scheduler call per reachable neighbor.  "Reachable" means
*sensable*: every node that would register energy above its carrier-sense
threshold gets the frame's leading and trailing edges, because carrier
sensing by non-decoders is part of the protocols' behaviour.

Two interchangeable link-budget representations exist (``link_budget=``):

* ``"dense"`` — the full N×N distance/power/delay matrices, vectorized in
  one numpy pass.  Simple, and exposes the matrices (``distance_m``,
  ``rx_power_dbm``, ``delay_s``) for inspection; O(n²) memory and rebuild
  time, which caps topologies at a few thousand nodes.
* ``"sparse"`` — a uniform-grid spatial index (:mod:`repro.phy.spatial`)
  sized to the reach radius, storing only per-source CSR-style
  reach/power/delay arrays for pairs that can actually hear each other:
  O(n·k) in the local density k.  Mobility ticks go through
  :meth:`move_nodes`, which re-bins the moved nodes and recomputes only
  the affected grid neighborhoods.  Both representations produce
  bit-identical reach lists, powers and delays (the golden-equivalence
  tests pin this), so results never depend on the choice.

``"auto"`` (the default) picks sparse for large shadowing-free topologies
and dense otherwise.

Per-link propagation delay (distance / c) is modelled by default.  The paper
treats it as negligible — and at these scales it is (µs against ms-scale
backoffs) — but keeping it nonzero breaks exact ties between receivers
naturally instead of through scheduler ordering.

The channel is also where the evaluation's "Number of MAC Packets" metric is
counted: every frame put on the air increments :attr:`tx_count`, bucketed by
frame kind.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter, OrderedDict
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel
from repro.phy.spatial import UniformGrid
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame
    from repro.phy.radio import Transceiver

__all__ = ["Channel", "AUTO_SPARSE_MIN_NODES", "NEIGHBOR_CACHE_THRESHOLDS"]

#: ``link_budget="auto"`` switches to the sparse representation at this many
#: nodes (dense wins below it: the matrices are small and the vectorized
#: full-matrix pass has less per-call overhead).
AUTO_SPARSE_MIN_NODES = 1024

#: Distinct explicit thresholds memoized by :meth:`Channel.neighbors` before
#: the least-recently-used one is evicted — bounds the cache under
#: ``reach_threshold_dbm`` sweeps.
NEIGHBOR_CACHE_THRESHOLDS = 32

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=float)


class Channel(Component):
    """Broadcast medium connecting every registered transceiver.

    Parameters
    ----------
    positions:
        ``(N, 2)`` or ``(N, 3)`` array of node coordinates in meters.  The
        channel's dimensionality is fixed at construction from this shape;
        every later position update must match it.
    model:
        Propagation model used for the link budget.
    tx_power_dbm:
        Transmit power, identical for all nodes (as in the paper).
    reach_threshold_dbm:
        Minimum received power at which a frame is delivered to a node at
        all.  Set this to the *lowest* carrier-sense threshold in the
        network; radios discard what they cannot even sense.
    propagation_delay:
        Model per-link delay of ``distance / c`` when True.
    link_budget:
        ``"dense"``, ``"sparse"`` or ``"auto"`` (see the module docstring).
        Per-link shadowing requires the dense representation (the shadowing
        draw is itself an N×N matrix); ``"auto"`` respects that,
        ``"sparse"`` raises.
    """

    def __init__(
        self,
        ctx: SimContext,
        positions: np.ndarray,
        model: PropagationModel,
        tx_power_dbm: float,
        reach_threshold_dbm: float,
        propagation_delay: bool = True,
        shadowing_sigma_db: float = 0.0,
        shadowing_asymmetric: bool = False,
        link_budget: str = "auto",
    ):
        super().__init__(ctx, "channel")
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] not in (2, 3):
            raise ValueError(
                f"positions must be (N, 2) or (N, 3), got {positions.shape}")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        if link_budget not in ("dense", "sparse", "auto"):
            raise ValueError(
                f"link_budget must be 'dense', 'sparse' or 'auto', "
                f"got {link_budget!r}")
        if link_budget == "sparse" and shadowing_sigma_db > 0:
            raise ValueError(
                "the sparse link budget does not support per-link shadowing "
                "(the shadowing draw is an N×N matrix); use link_budget="
                "'dense' or 'auto'")
        self.model = model
        self.tx_power_dbm = float(tx_power_dbm)
        self.reach_threshold_dbm = float(reach_threshold_dbm)
        self._propagation_delay = propagation_delay
        self.n_nodes = len(positions)
        #: Coordinate dimensionality (2 or 3), fixed at construction.
        self.dim = int(positions.shape[1])
        #: Requested representation ("dense" | "sparse" | "auto").
        self.link_budget_mode = link_budget
        #: Resolved representation actually in use ("dense" | "sparse").
        self.link_budget = (
            "sparse" if link_budget == "sparse"
            or (link_budget == "auto"
                and self.n_nodes >= AUTO_SPARSE_MIN_NODES
                and shadowing_sigma_db == 0)
            else "dense")

        #: Per-link log-normal shadowing (dB), fixed per link for the run.
        #: Symmetric by default; asymmetric shadowing produces the
        #: *unidirectional links* whose effect on Routeless Routing the paper
        #: discusses ("may negatively affect the efficiency, but not the
        #: correctness").
        if shadowing_sigma_db > 0:
            rng = ctx.streams.stream("channel.shadowing")
            raw = rng.normal(0.0, shadowing_sigma_db,
                             size=(self.n_nodes, self.n_nodes))
            if not shadowing_asymmetric:
                raw = (raw + raw.T) / np.sqrt(2.0)  # symmetrize, keep sigma
            np.fill_diagonal(raw, 0.0)
            self.shadowing_db = raw
        else:
            self.shadowing_db = None

        # With stochastic fading a deep fade can only lose frames, never
        # extend reach beyond +fade_headroom_db; reach lists are widened by
        # that headroom so constructive fades still deliver.
        self._headroom_db = 10.0 if model.stochastic else 0.0

        #: Per-link additive pathloss offsets (dB) — the fault injector's
        #: handle on the medium (link degradation, asymmetry, partitions).
        #: ``offsets[i, j]`` (or ``offsets[(i, j)]`` in mapping form) is
        #: added to the i→j link budget, so a negative value degrades the
        #: link and ``-inf``-like values sever it; asymmetric offsets give
        #: unidirectional links.  Dense mode keeps the matrix; sparse mode
        #: keeps only the offset-bearing pairs.
        self._link_offset_db: np.ndarray | None = None
        self._offset_pairs: dict[tuple[int, int], float] = {}
        self._offset_pk: np.ndarray = _EMPTY_IDS  # sorted i*n+j keys
        self._offset_vals: np.ndarray = _EMPTY_F64
        self._offset_src: np.ndarray = _EMPTY_IDS

        # Sparse machinery (populated by set_positions in sparse mode).
        self._grid: UniformGrid | None = None
        self._candidate_radius_m = 0.0
        self._threshold_radius: dict[float, float] = {}
        if self.link_budget == "sparse":
            self._candidate_radius_m = model.max_range_m(
                self.tx_power_dbm,
                self.reach_threshold_dbm - self._headroom_db)
            self.reach: list[np.ndarray] = [_EMPTY_IDS] * self.n_nodes
            self._reach_power_arrays: list[np.ndarray] = \
                [_EMPTY_F64] * self.n_nodes
            self._reach_ids: list[list] = [[]] * self.n_nodes
            self._reach_powers: list[list] = [[]] * self.n_nodes
            self._reach_delays: list[list] = [[]] * self.n_nodes

        #: LRU memo for explicit-threshold :meth:`neighbors` queries:
        #: threshold -> {node_id -> ids}, bounded to
        #: :data:`NEIGHBOR_CACHE_THRESHOLDS` distinct thresholds.
        self._neighbors_cache: OrderedDict[float, dict[int, np.ndarray]] = \
            OrderedDict()

        self.set_positions(positions)

        # Dense, id-indexed: transmit() does one list index per receiver
        # instead of a dict lookup + int() conversion.
        self._radios: list["Transceiver | None"] = [None] * self.n_nodes
        self._token = itertools.count()
        self._fade_rng = ctx.streams.stream("channel.fading")

        #: Total frames put on the air (the paper's MAC packet count).
        self.tx_count = 0
        #: Same, bucketed by ``frame.kind``.
        self.tx_count_by_kind: Counter[str] = Counter()
        #: Cumulative airtime of every transmission (seconds).  Divided by
        #: elapsed time this is the network-wide offered channel load —
        #: >1 means spatial reuse is carrying more than one medium's worth.
        self.airtime_s = 0.0
        self.airtime_by_kind: Counter[str] = Counter()

    # ---------------------------------------------------------------- wiring

    def set_positions(self, positions: np.ndarray) -> None:
        """(Re)compute the link budget for new node positions.

        Called at construction and on wholesale placement changes.  Dense
        mode recomputes the full N×N matrices in one vectorized pass;
        sparse mode re-bins the grid and rebuilds every per-source row
        (still O(n·k)).  Mobility managers should prefer :meth:`move_nodes`,
        which only touches the affected neighborhoods.  Frames already in
        flight keep the power they were launched with (mobility ticks are
        coarse against packet airtimes).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (self.n_nodes, self.dim):
            raise ValueError(
                f"positions must be ({self.n_nodes}, {self.dim}) for this "
                f"{self.dim}-D channel, got {positions.shape}")
        self.positions = positions.copy()
        if self.link_budget == "sparse":
            self._rebin_grid()
            self._rebuild_sources(None)
        else:
            self._rebuild_dense_geometry()
            self._rebuild_dense_power()
        self._after_rebuild()

    def move_nodes(self, ids, new_positions) -> None:
        """Incremental mobility update: ``ids`` moved to ``new_positions``.

        Sparse mode re-bins only the moved nodes and recomputes the link
        budget solely for sources whose grid neighborhood contained a moved
        node before or after the move — everyone else's rows are untouched,
        so a tick where a fraction of the network moves costs a fraction of
        a rebuild.  Dense mode falls back to the full recomputation (the
        matrices are monolithic).  Results are identical to a full
        :meth:`set_positions` with the same final positions.
        """
        ids = np.asarray(ids, dtype=np.int64)
        new_positions = np.asarray(new_positions, dtype=float)
        if new_positions.shape != (len(ids), self.dim):
            raise ValueError(
                f"new_positions must be ({len(ids)}, {self.dim}) for this "
                f"{self.dim}-D channel, got {new_positions.shape}")
        if len(ids) == 0:
            return
        if len(ids) and (ids.min() < 0 or ids.max() >= self.n_nodes):
            raise ValueError(f"node ids out of range 0..{self.n_nodes - 1}")
        if self.link_budget != "sparse":
            self.positions[ids] = new_positions
            self._rebuild_dense_geometry()
            self._rebuild_dense_power()
            self._after_rebuild()
            return
        assert self._grid is not None
        if len(ids) >= self.n_nodes:
            # Everyone moved: the affected set is everyone by definition,
            # so skip the neighborhood bookkeeping and rebuild outright.
            self.positions[ids] = new_positions
            self._rebin_grid()
            self._rebuild_sources(None)
            self._after_rebuild()
            return
        affected_old = self._grid.neighborhood_members(ids)
        self.positions[ids] = new_positions
        self._rebin_grid()
        affected_new = self._grid.neighborhood_members(ids)
        affected = np.union1d(affected_old, affected_new)
        # When (nearly) everyone is affected the restricted pass degenerates
        # to the full one; take the simpler code path.
        self._rebuild_sources(None if len(affected) >= self.n_nodes
                              else affected)
        self._after_rebuild()

    def set_link_offsets(
        self,
        offsets_db: "np.ndarray | Mapping[tuple[int, int], float] | None",
    ) -> None:
        """Install (or clear, with ``None``) per-link pathloss offsets and
        patch the link budget.

        Fault-injection entry point.  Accepts a full N×N matrix or a sparse
        ``{(i, j): db}`` mapping.  Positions are unchanged by definition, so
        neither representation recomputes geometry: dense mode re-derives
        power/reach from the cached distance matrix (no pathloss model
        evaluation), sparse mode rebuilds only the rows of sources that
        carry an offset before or after this call.  Frames already in
        flight keep the power they were launched with.
        """
        pairs = self._normalize_offsets(offsets_db)
        if self.link_budget == "sparse":
            changed = {i for i, _ in self._offset_pairs} | \
                      {i for i, _ in pairs}
            self._store_sparse_offsets(pairs)
            if changed:
                self._rebuild_sources(
                    np.fromiter(changed, dtype=np.int64, count=len(changed)))
        else:
            if pairs:
                matrix = np.zeros((self.n_nodes, self.n_nodes))
                for (i, j), db in pairs.items():
                    matrix[i, j] = db
                self._link_offset_db = matrix
            else:
                self._link_offset_db = None
            self._offset_pairs = dict(pairs)
            self._rebuild_dense_power()
        self._after_rebuild()

    def _normalize_offsets(self, offsets_db) -> dict[tuple[int, int], float]:
        """Validate either offset form into a ``{(i, j): db}`` dict."""
        if offsets_db is None:
            return {}
        if isinstance(offsets_db, np.ndarray):
            if offsets_db.shape != (self.n_nodes, self.n_nodes):
                raise ValueError(
                    f"offsets must be ({self.n_nodes}, {self.n_nodes}), "
                    f"got {offsets_db.shape}")
            rows, cols = np.nonzero(offsets_db)
            return {(int(i), int(j)): float(offsets_db[i, j])
                    for i, j in zip(rows, cols)}
        pairs: dict[tuple[int, int], float] = {}
        for (i, j), db in dict(offsets_db).items():
            i, j = int(i), int(j)
            if not (0 <= i < self.n_nodes and 0 <= j < self.n_nodes):
                raise ValueError(
                    f"offset pair ({i}, {j}) outside 0..{self.n_nodes - 1}")
            if db != 0.0:
                pairs[(i, j)] = float(db)
        return pairs

    def _store_sparse_offsets(self, pairs: dict[tuple[int, int], float]) -> None:
        self._offset_pairs = dict(pairs)
        if pairs:
            n = self.n_nodes
            pk = np.fromiter((i * n + j for i, j in pairs),
                             dtype=np.int64, count=len(pairs))
            vals = np.fromiter(pairs.values(), dtype=float, count=len(pairs))
            order = np.argsort(pk)
            self._offset_pk = pk[order]
            self._offset_vals = vals[order]
            self._offset_src = self._offset_pk // n
        else:
            self._offset_pk = _EMPTY_IDS
            self._offset_vals = _EMPTY_F64
            self._offset_src = _EMPTY_IDS

    def register(self, radio: "Transceiver") -> None:
        if not 0 <= radio.node_id < self.n_nodes:
            raise ValueError(f"node id {radio.node_id} out of range 0..{self.n_nodes - 1}")
        if self._radios[radio.node_id] is not None:
            raise ValueError(f"node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio

    # ----------------------------------------------------- dense link budget

    def _rebuild_dense_geometry(self) -> None:
        """Distances, delays and the offset-free power matrix — the
        expensive vectorized pass, skipped when only offsets change."""
        positions = self.positions
        diff = positions[:, None, :] - positions[None, :, :]
        self.distance_m = np.sqrt((diff**2).sum(axis=-1))
        base = self.model.rx_power_dbm(self.tx_power_dbm, self.distance_m)
        if self.shadowing_db is not None:
            base = base + self.shadowing_db
        self._base_power_dbm = base

        # Per-link propagation delay, cached once per placement instead of
        # dividing by c on every transmit.
        if self._propagation_delay:
            self.delay_s = self.distance_m / SPEED_OF_LIGHT
        else:
            self.delay_s = np.zeros_like(self.distance_m)

    def _rebuild_dense_power(self) -> None:
        """Fold offsets into the cached base power and re-derive the reach
        lists — the cheap half of a dense rebuild, sufficient on its own
        for fault transitions (positions unchanged)."""
        if self._link_offset_db is not None:
            self.rx_power_dbm = self._base_power_dbm + self._link_offset_db
        else:
            self.rx_power_dbm = self._base_power_dbm

        # reach[i] = receiver ids whose mean rx power from i clears the
        # floor (self excluded), widened by the stochastic fade headroom.
        reachable = self.rx_power_dbm >= (self.reach_threshold_dbm
                                          - self._headroom_db)
        np.fill_diagonal(reachable, False)
        self.reach = [np.flatnonzero(reachable[i]) for i in range(self.n_nodes)]

        # Hot-path mirrors of the per-source slices: transmit() iterates
        # plain Python lists (no numpy scalar boxing per receiver) and, for
        # stochastic models, adds the fade to a pre-sliced power array.
        self._reach_ids = [r.tolist() for r in self.reach]
        self._reach_power_arrays = [self.rx_power_dbm[i, r]
                                    for i, r in enumerate(self.reach)]
        self._reach_powers = [p.tolist() for p in self._reach_power_arrays]
        self._reach_delays = [self.delay_s[i, r].tolist()
                              for i, r in enumerate(self.reach)]

    # ---------------------------------------------------- sparse link budget

    def _rebin_grid(self) -> None:
        cell = max(self._candidate_radius_m, 1.0)
        if self._grid is None or self._grid.cell_size_m != cell:
            self._grid = UniformGrid(self.positions, cell)
        else:
            self._grid.rebin(self.positions)

    def _offsets_for_keys(self, pk: np.ndarray) -> np.ndarray:
        """Vectorized offset lookup for packed ``src * n + dst`` keys."""
        out = np.zeros(len(pk))
        if len(self._offset_pk):
            pos = np.searchsorted(self._offset_pk, pk)
            pos_c = np.minimum(pos, len(self._offset_pk) - 1)
            hit = self._offset_pk[pos_c] == pk
            out[hit] = self._offset_vals[pos_c[hit]]
        return out

    def _rebuild_sources(self, sources: np.ndarray | None) -> None:
        """Recompute the per-source reach/power/delay rows.

        ``sources=None`` rebuilds every row (fresh structures); an id array
        patches only those rows in place.  One vectorized pass over the
        candidate pairs either way — the same arithmetic, in the same
        elementwise order, as the dense matrices, so the surviving values
        are bit-identical to the dense representation's.
        """
        assert self._grid is not None
        n = self.n_nodes
        full = sources is None
        if full:
            sources = np.arange(n, dtype=np.int64)
        else:
            sources = np.unique(np.asarray(sources, dtype=np.int64))

        srcs, dsts = self._grid.candidates(sources)
        pk = srcs * n + dsts
        has_extras = False
        if len(self._offset_pk):
            # Offset-bearing pairs are candidates even beyond the grid
            # radius: a positive offset can extend reach.
            extra = np.isin(self._offset_src, sources)
            if extra.any():
                pk = np.concatenate([pk, self._offset_pk[extra]])
                has_extras = True
        if has_extras:
            pk = np.unique(pk)  # sorted by (src, dst); dedups the extras
        else:
            # Grid candidates are unique by construction (neighbor cells
            # are disjoint): a plain sort gives the same (src, dst) order
            # np.unique would, at a fraction of the cost.
            pk.sort()
        srcs = pk // n
        dsts = pk % n

        # 1-D per-axis gathers beat fancy-indexing (k, dim) rows by a wide
        # margin, and the left-to-right ``dx*dx + dy*dy [+ dz*dz]`` sum is
        # bit-identical to the dense matrix's ``(diff**2).sum(axis=-1)``
        # (numpy's axis sum over 2 or 3 elements is the same sequential
        # addition order).
        pos = self.positions
        axes = [np.ascontiguousarray(pos[:, a]) for a in range(self.dim)]
        d2 = None
        for axis in axes:
            delta = axis[srcs] - axis[dsts]
            sq = delta * delta
            d2 = sq if d2 is None else d2 + sq
        if not len(self._offset_pk):
            # No offsets can rescue a far pair, so prune the square-cell
            # corners by squared distance before paying for sqrt/log10 on
            # them — only ~π/9 of candidates survive.  The slack absorbs
            # ulp-level rounding; the exact power test below still decides.
            r = self._candidate_radius_m + 1e-6
            within = d2 <= r * r
            srcs = srcs[within]
            dsts = dsts[within]
            d2 = d2[within]
            pk = pk[within]
        dist = np.sqrt(d2)
        power = self.model.rx_power_dbm(self.tx_power_dbm, dist)
        if len(self._offset_pk):
            power = power + self._offsets_for_keys(pk)
        keep = power >= (self.reach_threshold_dbm - self._headroom_db)
        srcs = srcs[keep]
        dsts = dsts[keep]
        dist = dist[keep]
        power = power[keep]
        if self._propagation_delay:
            delay = dist / SPEED_OF_LIGHT
        else:
            delay = np.zeros_like(dist)

        counts = np.bincount(srcs, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indptr = indptr.tolist()  # plain-int slice bounds: faster slicing
        ids_list = dsts.tolist()
        powers_list = power.tolist()
        delays_list = delay.tolist()

        if full:
            # Rebuilding every row: batch the per-source slicing through
            # shared slice objects — measurably faster than an indexed
            # store loop at n=10k, and this is the mobility-tick hot path.
            slices = list(map(slice, indptr[:-1], indptr[1:]))
            self.reach = [dsts[sl] for sl in slices]
            self._reach_power_arrays = [power[sl] for sl in slices]
            self._reach_ids = [ids_list[sl] for sl in slices]
            self._reach_powers = [powers_list[sl] for sl in slices]
            self._reach_delays = [delays_list[sl] for sl in slices]
            return
        reach = self.reach
        power_arrays = self._reach_power_arrays
        reach_ids = self._reach_ids
        reach_powers = self._reach_powers
        reach_delays = self._reach_delays
        for s in sources.tolist():
            lo = indptr[s]
            hi = indptr[s + 1]
            reach[s] = dsts[lo:hi]
            power_arrays[s] = power[lo:hi]
            reach_ids[s] = ids_list[lo:hi]
            reach_powers[s] = powers_list[lo:hi]
            reach_delays[s] = delays_list[lo:hi]

    # ------------------------------------------------------------- accessors

    def pair_distance_m(self, src_id: int, dst_id: int) -> float:
        """Distance between two nodes, independent of representation (the
        dense matrix entry and this scalar computation are bit-identical)."""
        if self.link_budget != "sparse":
            return float(self.distance_m[src_id, dst_id])
        p = self.positions
        d2 = 0.0
        for axis in range(self.dim):
            delta = p[src_id, axis] - p[dst_id, axis]
            d2 += delta * delta
        return math.sqrt(d2)

    def link_budget_bytes(self) -> int:
        """Approximate bytes held by the link-budget representation —
        what the ``repro_channel_link_budget_bytes`` gauge reports."""
        total = 0
        if self.link_budget == "sparse":
            for row in self.reach:
                total += row.nbytes
            for row in self._reach_power_arrays:
                total += row.nbytes
            # Python-list mirrors: ~8-byte slot per element, three lists
            # (the boxed floats/ints they reference are shared or cached).
            total += sum(len(r) for r in self._reach_ids) * 3 * 8
            total += self.positions.nbytes
            if self._grid is not None:
                total += self._grid.index_bytes()
        else:
            seen: set[int] = set()
            for arr in (self.distance_m, self._base_power_dbm,
                        self.rx_power_dbm, self.delay_s, self.shadowing_db,
                        self._link_offset_db):
                if arr is not None and id(arr) not in seen:
                    seen.add(id(arr))
                    total += arr.nbytes
            for row in self._reach_power_arrays:
                total += row.nbytes
            total += sum(len(r) for r in self._reach_ids) * 3 * 8
        return total

    def _after_rebuild(self) -> None:
        self._neighbors_cache.clear()
        if self.ctx.observing:
            self.ctx.obs.on_link_budget(self.link_budget_bytes())

    def _radius_for_threshold(self, threshold_dbm: float) -> float:
        radius = self._threshold_radius.get(threshold_dbm)
        if radius is None:
            radius = self.model.max_range_m(self.tx_power_dbm, threshold_dbm)
            if len(self._threshold_radius) >= NEIGHBOR_CACHE_THRESHOLDS:
                self._threshold_radius.clear()
            self._threshold_radius[threshold_dbm] = radius
        return radius

    def _sparse_neighbors(self, node_id: int, threshold_dbm: float) -> np.ndarray:
        """Explicit-threshold neighbor query against the grid: widen the
        cell neighborhood to the threshold's own radius, then apply the
        exact power test the dense row comparison would."""
        assert self._grid is not None
        radius = self._radius_for_threshold(threshold_dbm)
        cell = self._grid.cell_size_m
        reach_cells = max(1, int(math.ceil(radius / cell)))
        source = np.array([node_id], dtype=np.int64)
        srcs, dsts = self._grid.candidates(source, reach_cells=reach_cells)
        n = self.n_nodes
        pk = srcs * n + dsts
        if len(self._offset_pk):
            extra = self._offset_src == node_id
            if extra.any():
                pk = np.concatenate([pk, self._offset_pk[extra]])
        pk = np.unique(pk)
        dsts = pk % n
        pos = self.positions
        diff = pos[node_id] - pos[dsts]
        dist = np.sqrt((diff**2).sum(axis=-1))
        power = self.model.rx_power_dbm(self.tx_power_dbm, dist)
        if len(self._offset_pk):
            power = power + self._offsets_for_keys(pk)
        return dsts[power >= threshold_dbm]

    def neighbors(self, node_id: int, threshold_dbm: float | None = None) -> np.ndarray:
        """Node ids whose mean received power from ``node_id`` clears the
        threshold (defaults to the channel reach floor).

        The default-threshold answer is the precomputed ``reach`` list;
        explicit thresholds are computed on demand and memoized in an LRU
        cache bounded to :data:`NEIGHBOR_CACHE_THRESHOLDS` distinct
        thresholds (invalidated by any link-budget rebuild), so threshold
        sweeps cannot grow the memo without limit.
        """
        if threshold_dbm is None:
            return self.reach[node_id]
        per_threshold = self._neighbors_cache.get(threshold_dbm)
        if per_threshold is None:
            while len(self._neighbors_cache) >= NEIGHBOR_CACHE_THRESHOLDS:
                self._neighbors_cache.popitem(last=False)
            per_threshold = {}
            self._neighbors_cache[threshold_dbm] = per_threshold
        else:
            self._neighbors_cache.move_to_end(threshold_dbm)
        cached = per_threshold.get(node_id)
        if cached is None:
            if self.link_budget == "sparse":
                cached = self._sparse_neighbors(node_id, threshold_dbm)
            else:
                ids = np.flatnonzero(self.rx_power_dbm[node_id] >= threshold_dbm)
                cached = ids[ids != node_id]
            per_threshold[node_id] = cached
        return cached

    # ------------------------------------------------------------- transmit

    def transmit(self, src_id: int, frame: "Frame", duration: float) -> None:
        """Deliver ``frame`` to every reachable radio.

        Called by the source transceiver, which has already entered TX.
        The per-source receiver/power/delay slices are precomputed by the
        link-budget rebuilds; this method is an indexed lookup plus one
        batched schedule call, identical under either representation.
        """
        kind = frame.kind
        self.tx_count += 1
        self.tx_count_by_kind[kind] += 1
        self.airtime_s += duration
        self.airtime_by_kind[kind] += duration
        if self.ctx.tracing:
            self.trace("channel.tx", src=src_id, frame=str(frame))
        if self.ctx.observing:
            payload = frame.payload
            self.ctx.obs.on_tx(self.ctx.now, src_id,
                               payload.uid if payload is not None else None,
                               kind, duration)

        receivers = self._reach_ids[src_id]
        if not receivers:
            return
        if self.model.stochastic:
            fade = self.model.sample_fade_db(self._fade_rng, len(receivers))
            powers = (self._reach_power_arrays[src_id] + fade).tolist()
        else:
            # Deterministic models: every precomputed receiver clears the
            # floor by construction (headroom is 0), so no per-receiver
            # threshold check is needed.
            powers = None

        radios = self._radios
        token_counter = self._token
        floor = self.reach_threshold_dbm
        items: list[tuple[float, Any, tuple]] = []
        append = items.append
        if powers is None:
            for j, power, delay in zip(receivers, self._reach_powers[src_id],
                                       self._reach_delays[src_id]):
                radio = radios[j]
                if radio is None:
                    continue
                token = next(token_counter)
                append((delay, radio.begin_receive, (token, frame, power)))
                append((delay + duration, radio.end_receive, (token,)))
        else:
            for j, power, delay in zip(receivers, powers,
                                       self._reach_delays[src_id]):
                if power < floor:
                    continue  # faded below the floor for this reception
                radio = radios[j]
                if radio is None:
                    continue
                token = next(token_counter)
                append((delay, radio.begin_receive, (token, frame, power)))
                append((delay + duration, radio.end_receive, (token,)))
        if items:
            self.ctx.simulator.schedule_many(items)
