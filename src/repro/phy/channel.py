"""The shared wireless medium.

The channel owns node positions and the propagation model.  At construction
it vectorizes the full N×N link budget (pairwise received power) with numpy —
the per-transmission hot path then reduces to an indexed lookup plus one
scheduler call per reachable neighbor.  "Reachable" means *sensable*: every
node that would register energy above its carrier-sense threshold gets the
frame's leading and trailing edges, because carrier sensing by non-decoders
is part of the protocols' behaviour.

Per-link propagation delay (distance / c) is modelled by default.  The paper
treats it as negligible — and at these scales it is (µs against ms-scale
backoffs) — but keeping it nonzero breaks exact ties between receivers
naturally instead of through scheduler ordering.

The channel is also where the evaluation's "Number of MAC Packets" metric is
counted: every frame put on the air increments :attr:`tx_count`, bucketed by
frame kind.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame
    from repro.phy.radio import Transceiver

__all__ = ["Channel"]


class Channel(Component):
    """Broadcast medium connecting every registered transceiver.

    Parameters
    ----------
    positions:
        ``(N, 2)`` array of node coordinates in meters.
    model:
        Propagation model used for the link budget.
    tx_power_dbm:
        Transmit power, identical for all nodes (as in the paper).
    reach_threshold_dbm:
        Minimum received power at which a frame is delivered to a node at
        all.  Set this to the *lowest* carrier-sense threshold in the
        network; radios discard what they cannot even sense.
    propagation_delay:
        Model per-link delay of ``distance / c`` when True.
    """

    def __init__(
        self,
        ctx: SimContext,
        positions: np.ndarray,
        model: PropagationModel,
        tx_power_dbm: float,
        reach_threshold_dbm: float,
        propagation_delay: bool = True,
        shadowing_sigma_db: float = 0.0,
        shadowing_asymmetric: bool = False,
    ):
        super().__init__(ctx, "channel")
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        self.model = model
        self.tx_power_dbm = float(tx_power_dbm)
        self.reach_threshold_dbm = float(reach_threshold_dbm)
        self._propagation_delay = propagation_delay
        self.n_nodes = len(positions)
        #: Per-link log-normal shadowing (dB), fixed per link for the run.
        #: Symmetric by default; asymmetric shadowing produces the
        #: *unidirectional links* whose effect on Routeless Routing the paper
        #: discusses ("may negatively affect the efficiency, but not the
        #: correctness").
        if shadowing_sigma_db > 0:
            rng = ctx.streams.stream("channel.shadowing")
            raw = rng.normal(0.0, shadowing_sigma_db,
                             size=(self.n_nodes, self.n_nodes))
            if not shadowing_asymmetric:
                raw = (raw + raw.T) / np.sqrt(2.0)  # symmetrize, keep sigma
            np.fill_diagonal(raw, 0.0)
            self.shadowing_db = raw
        else:
            self.shadowing_db = None
        #: Per-link additive pathloss offsets (dB), ``None`` when no link
        #: faults are active — the fault injector's handle on the medium
        #: (link degradation, asymmetry, partitions).  Entry ``[i, j]`` is
        #: added to the i→j link budget, so a negative value degrades the
        #: link and ``-inf``-like values sever it; asymmetric matrices give
        #: unidirectional links.
        self._link_offset_db: np.ndarray | None = None
        self.set_positions(positions)

        # Dense, id-indexed: transmit() does one list index per receiver
        # instead of a dict lookup + int() conversion.
        self._radios: list["Transceiver | None"] = [None] * self.n_nodes
        self._token = itertools.count()
        self._fade_rng = ctx.streams.stream("channel.fading")

        #: Total frames put on the air (the paper's MAC packet count).
        self.tx_count = 0
        #: Same, bucketed by ``frame.kind``.
        self.tx_count_by_kind: Counter[str] = Counter()
        #: Cumulative airtime of every transmission (seconds).  Divided by
        #: elapsed time this is the network-wide offered channel load —
        #: >1 means spatial reuse is carrying more than one medium's worth.
        self.airtime_s = 0.0
        self.airtime_by_kind: Counter[str] = Counter()

    # ---------------------------------------------------------------- wiring

    def set_positions(self, positions: np.ndarray) -> None:
        """(Re)compute the link budget for new node positions.

        Called at construction and by mobility managers each tick.  The full
        N×N recomputation is one vectorized pass; frames already in flight
        keep the power they were launched with (mobility ticks are coarse
        against packet airtimes).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (self.n_nodes, 2):
            raise ValueError(
                f"positions must be ({self.n_nodes}, 2), got {positions.shape}")
        self.positions = positions.copy()
        diff = positions[:, None, :] - positions[None, :, :]
        self.distance_m = np.sqrt((diff**2).sum(axis=-1))
        self.rx_power_dbm = self.model.rx_power_dbm(self.tx_power_dbm, self.distance_m)
        if self.shadowing_db is not None:
            self.rx_power_dbm = self.rx_power_dbm + self.shadowing_db
        if self._link_offset_db is not None:
            self.rx_power_dbm = self.rx_power_dbm + self._link_offset_db

        # Per-link propagation delay, cached once per placement instead of
        # dividing by c on every transmit.
        if self._propagation_delay:
            self.delay_s = self.distance_m / SPEED_OF_LIGHT
        else:
            self.delay_s = np.zeros_like(self.distance_m)

        # reach[i] = receiver ids whose mean rx power from i clears the floor
        # (self excluded).  With stochastic fading a deep fade can only lose
        # frames, never extend reach beyond +fade_headroom_db; we widen the
        # reach lists by that headroom so constructive fades still deliver.
        headroom = 10.0 if self.model.stochastic else 0.0
        reachable = self.rx_power_dbm >= (self.reach_threshold_dbm - headroom)
        np.fill_diagonal(reachable, False)
        self.reach = [np.flatnonzero(reachable[i]) for i in range(self.n_nodes)]

        # Hot-path mirrors of the per-source slices: transmit() iterates
        # plain Python lists (no numpy scalar boxing per receiver) and, for
        # stochastic models, adds the fade to a pre-sliced power array.
        self._reach_ids = [r.tolist() for r in self.reach]
        self._reach_power_arrays = [self.rx_power_dbm[i, r]
                                    for i, r in enumerate(self.reach)]
        self._reach_powers = [p.tolist() for p in self._reach_power_arrays]
        self._reach_delays = [self.delay_s[i, r].tolist()
                              for i, r in enumerate(self.reach)]
        self._neighbors_cache: dict[tuple[int, float], np.ndarray] = {}

    def set_link_offsets(self, offsets_db: np.ndarray | None) -> None:
        """Install (or clear, with ``None``) the per-link pathloss offset
        matrix and rebuild the link budget.

        Fault-injection entry point: a full N×N recomputation per fault
        transition, same cost as a mobility tick.  Frames already in flight
        keep the power they were launched with.
        """
        if offsets_db is not None:
            offsets_db = np.asarray(offsets_db, dtype=float)
            if offsets_db.shape != (self.n_nodes, self.n_nodes):
                raise ValueError(
                    f"offsets must be ({self.n_nodes}, {self.n_nodes}), "
                    f"got {offsets_db.shape}")
            offsets_db = offsets_db.copy()
        self._link_offset_db = offsets_db
        self.set_positions(self.positions)

    def register(self, radio: "Transceiver") -> None:
        if not 0 <= radio.node_id < self.n_nodes:
            raise ValueError(f"node id {radio.node_id} out of range 0..{self.n_nodes - 1}")
        if self._radios[radio.node_id] is not None:
            raise ValueError(f"node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio

    def neighbors(self, node_id: int, threshold_dbm: float | None = None) -> np.ndarray:
        """Node ids whose mean received power from ``node_id`` clears the
        threshold (defaults to the channel reach floor).

        The default-threshold answer is the precomputed ``reach`` list;
        explicit thresholds are computed without the boolean full-row
        intermediate and memoized until the next :meth:`set_positions`.
        """
        if threshold_dbm is None:
            return self.reach[node_id]
        key = (node_id, threshold_dbm)
        cached = self._neighbors_cache.get(key)
        if cached is None:
            ids = np.flatnonzero(self.rx_power_dbm[node_id] >= threshold_dbm)
            cached = ids[ids != node_id]
            self._neighbors_cache[key] = cached
        return cached

    # ------------------------------------------------------------- transmit

    def transmit(self, src_id: int, frame: "Frame", duration: float) -> None:
        """Deliver ``frame`` to every reachable radio.

        Called by the source transceiver, which has already entered TX.
        The per-source receiver/power/delay slices are precomputed by
        :meth:`set_positions`; this method is an indexed lookup plus one
        batched schedule call.
        """
        kind = frame.kind
        self.tx_count += 1
        self.tx_count_by_kind[kind] += 1
        self.airtime_s += duration
        self.airtime_by_kind[kind] += duration
        if self.ctx.tracing:
            self.trace("channel.tx", src=src_id, frame=str(frame))
        if self.ctx.observing:
            payload = frame.payload
            self.ctx.obs.on_tx(self.ctx.now, src_id,
                               payload.uid if payload is not None else None,
                               kind, duration)

        receivers = self._reach_ids[src_id]
        if not receivers:
            return
        if self.model.stochastic:
            fade = self.model.sample_fade_db(self._fade_rng, len(receivers))
            powers = (self._reach_power_arrays[src_id] + fade).tolist()
        else:
            # Deterministic models: every precomputed receiver clears the
            # floor by construction (headroom is 0), so no per-receiver
            # threshold check is needed.
            powers = None

        radios = self._radios
        token_counter = self._token
        floor = self.reach_threshold_dbm
        items: list[tuple[float, Any, tuple]] = []
        append = items.append
        if powers is None:
            for j, power, delay in zip(receivers, self._reach_powers[src_id],
                                       self._reach_delays[src_id]):
                radio = radios[j]
                if radio is None:
                    continue
                token = next(token_counter)
                append((delay, radio.begin_receive, (token, frame, power)))
                append((delay + duration, radio.end_receive, (token,)))
        else:
            for j, power, delay in zip(receivers, powers,
                                       self._reach_delays[src_id]):
                if power < floor:
                    continue  # faded below the floor for this reception
                radio = radios[j]
                if radio is None:
                    continue
                token = next(token_counter)
                append((delay, radio.begin_receive, (token, frame, power)))
                append((delay + duration, radio.end_receive, (token,)))
        if items:
            self.ctx.simulator.schedule_many(items)
