"""The shared wireless medium.

The channel owns node positions and the propagation model.  At construction
it vectorizes the full N×N link budget (pairwise received power) with numpy —
the per-transmission hot path then reduces to an indexed lookup plus one
scheduler call per reachable neighbor.  "Reachable" means *sensable*: every
node that would register energy above its carrier-sense threshold gets the
frame's leading and trailing edges, because carrier sensing by non-decoders
is part of the protocols' behaviour.

Per-link propagation delay (distance / c) is modelled by default.  The paper
treats it as negligible — and at these scales it is (µs against ms-scale
backoffs) — but keeping it nonzero breaks exact ties between receivers
naturally instead of through scheduler ordering.

The channel is also where the evaluation's "Number of MAC Packets" metric is
counted: every frame put on the air increments :attr:`tx_count`, bucketed by
frame kind.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from repro.phy.propagation import SPEED_OF_LIGHT, PropagationModel
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frame import Frame
    from repro.phy.radio import Transceiver

__all__ = ["Channel"]


class Channel(Component):
    """Broadcast medium connecting every registered transceiver.

    Parameters
    ----------
    positions:
        ``(N, 2)`` array of node coordinates in meters.
    model:
        Propagation model used for the link budget.
    tx_power_dbm:
        Transmit power, identical for all nodes (as in the paper).
    reach_threshold_dbm:
        Minimum received power at which a frame is delivered to a node at
        all.  Set this to the *lowest* carrier-sense threshold in the
        network; radios discard what they cannot even sense.
    propagation_delay:
        Model per-link delay of ``distance / c`` when True.
    """

    def __init__(
        self,
        ctx: SimContext,
        positions: np.ndarray,
        model: PropagationModel,
        tx_power_dbm: float,
        reach_threshold_dbm: float,
        propagation_delay: bool = True,
        shadowing_sigma_db: float = 0.0,
        shadowing_asymmetric: bool = False,
    ):
        super().__init__(ctx, "channel")
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (N, 2), got {positions.shape}")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        self.model = model
        self.tx_power_dbm = float(tx_power_dbm)
        self.reach_threshold_dbm = float(reach_threshold_dbm)
        self._propagation_delay = propagation_delay
        self.n_nodes = len(positions)
        #: Per-link log-normal shadowing (dB), fixed per link for the run.
        #: Symmetric by default; asymmetric shadowing produces the
        #: *unidirectional links* whose effect on Routeless Routing the paper
        #: discusses ("may negatively affect the efficiency, but not the
        #: correctness").
        if shadowing_sigma_db > 0:
            rng = ctx.streams.stream("channel.shadowing")
            raw = rng.normal(0.0, shadowing_sigma_db,
                             size=(self.n_nodes, self.n_nodes))
            if not shadowing_asymmetric:
                raw = (raw + raw.T) / np.sqrt(2.0)  # symmetrize, keep sigma
            np.fill_diagonal(raw, 0.0)
            self.shadowing_db = raw
        else:
            self.shadowing_db = None
        self.set_positions(positions)

        self._radios: dict[int, "Transceiver"] = {}
        self._token = itertools.count()
        self._fade_rng = ctx.streams.stream("channel.fading")

        #: Total frames put on the air (the paper's MAC packet count).
        self.tx_count = 0
        #: Same, bucketed by ``frame.kind``.
        self.tx_count_by_kind: Counter[str] = Counter()
        #: Cumulative airtime of every transmission (seconds).  Divided by
        #: elapsed time this is the network-wide offered channel load —
        #: >1 means spatial reuse is carrying more than one medium's worth.
        self.airtime_s = 0.0
        self.airtime_by_kind: Counter[str] = Counter()

    # ---------------------------------------------------------------- wiring

    def set_positions(self, positions: np.ndarray) -> None:
        """(Re)compute the link budget for new node positions.

        Called at construction and by mobility managers each tick.  The full
        N×N recomputation is one vectorized pass; frames already in flight
        keep the power they were launched with (mobility ticks are coarse
        against packet airtimes).
        """
        positions = np.asarray(positions, dtype=float)
        if positions.shape != (self.n_nodes, 2):
            raise ValueError(
                f"positions must be ({self.n_nodes}, 2), got {positions.shape}")
        self.positions = positions.copy()
        diff = positions[:, None, :] - positions[None, :, :]
        self.distance_m = np.sqrt((diff**2).sum(axis=-1))
        self.rx_power_dbm = self.model.rx_power_dbm(self.tx_power_dbm, self.distance_m)
        if self.shadowing_db is not None:
            self.rx_power_dbm = self.rx_power_dbm + self.shadowing_db

        # reach[i] = receiver ids whose mean rx power from i clears the floor
        # (self excluded).  With stochastic fading a deep fade can only lose
        # frames, never extend reach beyond +fade_headroom_db; we widen the
        # reach lists by that headroom so constructive fades still deliver.
        headroom = 10.0 if self.model.stochastic else 0.0
        reachable = self.rx_power_dbm >= (self.reach_threshold_dbm - headroom)
        np.fill_diagonal(reachable, False)
        self.reach = [np.flatnonzero(reachable[i]) for i in range(self.n_nodes)]

    def register(self, radio: "Transceiver") -> None:
        if radio.node_id in self._radios:
            raise ValueError(f"node {radio.node_id} already registered")
        if not 0 <= radio.node_id < self.n_nodes:
            raise ValueError(f"node id {radio.node_id} out of range 0..{self.n_nodes - 1}")
        self._radios[radio.node_id] = radio

    def neighbors(self, node_id: int, threshold_dbm: float | None = None) -> np.ndarray:
        """Node ids whose mean received power from ``node_id`` clears the
        threshold (defaults to the channel reach floor)."""
        if threshold_dbm is None:
            return self.reach[node_id]
        row = self.rx_power_dbm[node_id]
        mask = row >= threshold_dbm
        mask[node_id] = False
        return np.flatnonzero(mask)

    # ------------------------------------------------------------- transmit

    def transmit(self, src_id: int, frame: "Frame", duration: float) -> None:
        """Deliver ``frame`` to every reachable radio.

        Called by the source transceiver, which has already entered TX.
        """
        self.tx_count += 1
        self.tx_count_by_kind[frame.kind] += 1
        self.airtime_s += duration
        self.airtime_by_kind[frame.kind] += duration
        self.trace("channel.tx", src=src_id, frame=str(frame))

        receivers = self.reach[src_id]
        if len(receivers) == 0:
            return
        powers = self.rx_power_dbm[src_id, receivers]
        if self.model.stochastic:
            powers = powers + self.model.sample_fade_db(self._fade_rng, len(receivers))
        if self._propagation_delay:
            delays = self.distance_m[src_id, receivers] / SPEED_OF_LIGHT
        else:
            delays = np.zeros(len(receivers))

        sim = self.ctx.simulator
        for j, power, delay in zip(receivers, powers, delays):
            if power < self.reach_threshold_dbm:
                continue  # faded below the floor for this reception
            radio = self._radios.get(int(j))
            if radio is None:
                continue
            token = next(self._token)
            sim.schedule(delay, radio.begin_receive, token, frame, float(power))
            sim.schedule(delay + duration, radio.end_receive, token)
