"""Physical layer: propagation, transceivers, the shared medium, energy."""

from repro.phy.channel import Channel
from repro.phy.energy import EnergyMeter, EnergyModel
from repro.phy.propagation import (
    SPEED_OF_LIGHT,
    FreeSpace,
    LogDistance,
    PropagationModel,
    RayleighFading,
    TwoRayGround,
    range_to_threshold_dbm,
)
from repro.phy.radio import RadioConfig, RadioState, RxInfo, Transceiver

__all__ = [
    "Channel",
    "EnergyMeter",
    "EnergyModel",
    "FreeSpace",
    "LogDistance",
    "PropagationModel",
    "RadioConfig",
    "RadioState",
    "RayleighFading",
    "RxInfo",
    "SPEED_OF_LIGHT",
    "Transceiver",
    "TwoRayGround",
    "range_to_threshold_dbm",
]
