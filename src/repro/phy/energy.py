"""Per-node energy accounting.

A meter integrates power draw over time, bucketed by radio state.  The paper
motivates Routeless Routing with energy-limited sensor networks (nodes free
to sleep because no route depends on them); the ``sensor_sleep`` example uses
these meters to quantify that claim.

Draw figures default to the mica2-era numbers commonly used in 2005 sensor
network studies (values in watts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.radio import RadioState

__all__ = ["EnergyModel", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyModel:
    tx_w: float = 0.0810
    rx_w: float = 0.0300
    idle_w: float = 0.0300
    sleep_w: float = 0.00003
    off_w: float = 0.0

    def draw_w(self, state: RadioState) -> float:
        return {
            RadioState.TX: self.tx_w,
            RadioState.RX: self.rx_w,
            RadioState.IDLE: self.idle_w,
            RadioState.SLEEP: self.sleep_w,
            RadioState.OFF: self.off_w,
        }[state]


@dataclass
class EnergyMeter:
    """Integrates energy use; attach one per transceiver."""

    model: EnergyModel = field(default_factory=EnergyModel)
    consumed_j: float = 0.0
    time_by_state: dict[RadioState, float] = field(
        default_factory=lambda: {s: 0.0 for s in RadioState}
    )
    _last_time: float = 0.0
    _last_state: RadioState = RadioState.IDLE

    def on_state_change(self, now: float, old: RadioState, new: RadioState) -> None:
        self._accumulate(now, old)
        self._last_state = new

    def _accumulate(self, now: float, state: RadioState) -> None:
        dt = now - self._last_time
        if dt > 0:
            self.consumed_j += dt * self.model.draw_w(state)
            self.time_by_state[state] += dt
        self._last_time = now

    def finalize(self, now: float) -> float:
        """Account time since the last transition; returns total joules."""
        self._accumulate(now, self._last_state)
        return self.consumed_j
