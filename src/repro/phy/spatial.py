"""Uniform-grid spatial index over 2-D or 3-D node positions.

The sparse link budget (:mod:`repro.phy.channel`) and the large-topology
connectivity check (:mod:`repro.topology.placement`) both need the same
primitive: *which nodes sit within radius r of this node*, answered without
materializing the O(n²) pairwise-distance matrix.  :class:`UniformGrid`
hashes every node into a cubic cell of side ``cell_size_m`` and stores the
membership as one id array sorted by cell key — a CSR-style layout queried
with two :func:`numpy.searchsorted` calls per cell, so candidate generation
for a whole batch of sources is a handful of vectorized passes instead of a
Python loop over nodes.

The grid is dimension-agnostic: the cell key is a mixed-radix encoding of
the per-axis cell coordinates, and the query neighborhood is the Cartesian
product of per-axis offsets — 3×3 (9 cells) in 2-D, 3×3×3 (27 cells) in
3-D.  With ``cell_size_m >= r`` every pair within r falls inside that
1-cell neighborhood (``reach_cells=1``); larger query radii widen it via
``reach_cells``.  Candidates are a superset of the true neighbors — callers
apply their own exact distance or power test — but the superset is bounded
by local density, so the whole pipeline is O(n·k), not O(n²).
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["UniformGrid", "neighbor_pairs"]

_EMPTY = np.empty(0, dtype=np.int64)


class UniformGrid:
    """Uniform hash grid with sorted-key (CSR-style) cell membership."""

    def __init__(self, positions: np.ndarray, cell_size_m: float):
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        self.rebin(positions)

    # ------------------------------------------------------------- building

    def rebin(self, positions: np.ndarray) -> None:
        """(Re)assign every node to its cell — one vectorized O(n) pass.

        Mobility calls this each tick with mostly-unchanged positions; the
        binning itself is cheap (a floor-divide, a normalize and an argsort),
        it is the *link budget* downstream that is worth recomputing only
        for the affected neighborhoods.
        """
        positions = np.asarray(positions, dtype=float)
        n = len(positions)
        self.n = n
        if n == 0:
            self.dim = 2
            self._cells: list[np.ndarray] = [_EMPTY, _EMPTY]
            self._ncells: list[int] = [1, 1]
            self._order = _EMPTY
            self._sorted_keys = _EMPTY
            return
        if positions.ndim != 2 or positions.shape[1] not in (2, 3):
            raise ValueError(
                f"positions must be (N, 2) or (N, 3), got {positions.shape}")
        self.dim = positions.shape[1]
        cells = []
        for axis in range(self.dim):
            c = np.floor(positions[:, axis] / self.cell_size_m).astype(np.int64)
            # Normalize to a zero-based box so linear keys stay small and
            # positive whatever the coordinate frame (mobility reflection
            # can momentarily produce negative coordinates).
            c -= c.min()
            cells.append(c)
        self._cells = cells
        self._ncells = [int(c.max()) + 1 for c in cells]
        # Mixed-radix linear key: for 2-D exactly the historical
        # ``cx * ncy + cy``, so 2-D candidate order (and therefore the
        # sparse link budget's bit-identity guarantee) is unchanged.
        keys = cells[0]
        for c, nc in zip(cells[1:], self._ncells[1:]):
            keys = keys * nc + c
        order = np.argsort(keys, kind="stable")
        self._order = order
        self._sorted_keys = keys[order]

    # -------------------------------------------------------------- queries

    def candidates(self, sources: np.ndarray,
                   reach_cells: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ``(src, dst)`` pairs for every source id in ``sources``.

        ``dst`` ranges over every node in the ``(2·reach_cells+1)**dim``
        cell neighborhood of its source (self-pairs excluded).  Pairs come
        back unsorted and deduplicated-by-construction (neighbor cells are
        disjoint); callers typically sort/filter downstream.
        """
        sources = np.asarray(sources, dtype=np.int64)
        if self.n == 0 or len(sources) == 0:
            return _EMPTY, _EMPTY
        # A pathological radius can exceed the whole grid; clamp the loop.
        reach_cells = min(int(reach_cells), max(self._ncells))
        src_cells = [c[sources] for c in self._cells]
        offsets = range(-reach_cells, reach_cells + 1)
        out_src: list[np.ndarray] = []
        out_dst: list[np.ndarray] = []
        # itertools.product iterates the last axis fastest — for 2-D the
        # exact (dx outer, dy inner) order of the historical nested loops.
        for delta in itertools.product(offsets, repeat=self.dim):
            valid = None
            keys = None
            for axis, (d, nc) in enumerate(zip(delta, self._ncells)):
                nco = src_cells[axis] + d
                ok = (nco >= 0) & (nco < nc)
                valid = ok if valid is None else (valid & ok)
                keys = nco if keys is None else keys * nc + nco
            if not valid.any():
                continue
            keys = keys[valid]
            src_sel = sources[valid]
            lo = np.searchsorted(self._sorted_keys, keys, side="left")
            hi = np.searchsorted(self._sorted_keys, keys, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                continue
            # Segment-arange expansion: for source s with occupied
            # neighbor cell [lo, hi), emit order[lo], …, order[hi-1].
            rep_src = np.repeat(src_sel, counts)
            starts = np.repeat(lo, counts)
            segment = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts)
            out_src.append(rep_src)
            out_dst.append(self._order[starts + segment])
        if not out_src:
            return _EMPTY, _EMPTY
        srcs = np.concatenate(out_src)
        dsts = np.concatenate(out_dst)
        keep = srcs != dsts
        return srcs[keep], dsts[keep]

    def neighborhood_members(self, ids: np.ndarray,
                             reach_cells: int = 1) -> np.ndarray:
        """Unique node ids in the cell neighborhoods of ``ids`` (including
        ``ids`` themselves) — the set whose link-budget rows a move of
        ``ids`` can possibly change."""
        ids = np.asarray(ids, dtype=np.int64)
        _, dsts = self.candidates(ids, reach_cells=reach_cells)
        return np.union1d(dsts, ids)

    def index_bytes(self) -> int:
        """Approximate bytes held by the index arrays (for the channel's
        link-budget gauge)."""
        return (self._sorted_keys.nbytes + self._order.nbytes
                + sum(c.nbytes for c in self._cells))


def neighbor_pairs(positions: np.ndarray,
                   range_m: float) -> tuple[np.ndarray, np.ndarray]:
    """All directed ``(src, dst)`` pairs with ``distance <= range_m``,
    computed through the grid in O(n·k) — the sparse counterpart of
    :func:`repro.topology.placement.adjacency`.  Dimension-agnostic: the
    exact distance test sums squared deltas over however many axes the
    positions carry."""
    positions = np.asarray(positions, dtype=float)
    if len(positions) == 0:
        return _EMPTY, _EMPTY
    grid = UniformGrid(positions, max(float(range_m), 1e-9))
    srcs, dsts = grid.candidates(np.arange(len(positions)))
    if len(srcs) == 0:
        return srcs, dsts
    diff = positions[srcs] - positions[dsts]
    within = (diff ** 2).sum(axis=-1) <= float(range_m) ** 2
    return srcs[within], dsts[within]
