"""Uniform-grid spatial index over 2-D node positions.

The sparse link budget (:mod:`repro.phy.channel`) and the large-topology
connectivity check (:mod:`repro.topology.placement`) both need the same
primitive: *which nodes sit within radius r of this node*, answered without
materializing the O(n²) pairwise-distance matrix.  :class:`UniformGrid`
hashes every node into a square cell of side ``cell_size_m`` and stores the
membership as one id array sorted by cell key — a CSR-style layout queried
with two :func:`numpy.searchsorted` calls per cell, so candidate generation
for a whole batch of sources is a handful of vectorized passes instead of a
Python loop over nodes.

With ``cell_size_m >= r`` every pair within r falls inside the 3×3 cell
neighborhood (``reach_cells=1``); larger query radii widen the neighborhood
via ``reach_cells``.  Candidates are a superset of the true neighbors —
callers apply their own exact distance or power test — but the superset is
bounded by local density, so the whole pipeline is O(n·k), not O(n²).
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniformGrid", "neighbor_pairs"]

_EMPTY = np.empty(0, dtype=np.int64)


class UniformGrid:
    """Uniform hash grid with sorted-key (CSR-style) cell membership."""

    def __init__(self, positions: np.ndarray, cell_size_m: float):
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        self.rebin(positions)

    # ------------------------------------------------------------- building

    def rebin(self, positions: np.ndarray) -> None:
        """(Re)assign every node to its cell — one vectorized O(n) pass.

        Mobility calls this each tick with mostly-unchanged positions; the
        binning itself is cheap (a floor-divide, a normalize and an argsort),
        it is the *link budget* downstream that is worth recomputing only
        for the affected neighborhoods.
        """
        positions = np.asarray(positions, dtype=float)
        n = len(positions)
        self.n = n
        if n == 0:
            self._cx = self._cy = _EMPTY
            self._ncx = self._ncy = 1
            self._order = _EMPTY
            self._sorted_keys = _EMPTY
            return
        cx = np.floor(positions[:, 0] / self.cell_size_m).astype(np.int64)
        cy = np.floor(positions[:, 1] / self.cell_size_m).astype(np.int64)
        # Normalize to a zero-based box so linear keys stay small and
        # positive whatever the coordinate frame (mobility reflection can
        # momentarily produce negative coordinates).
        cx -= cx.min()
        cy -= cy.min()
        self._cx, self._cy = cx, cy
        self._ncx = int(cx.max()) + 1
        self._ncy = int(cy.max()) + 1
        keys = cx * self._ncy + cy
        order = np.argsort(keys, kind="stable")
        self._order = order
        self._sorted_keys = keys[order]

    # -------------------------------------------------------------- queries

    def candidates(self, sources: np.ndarray,
                   reach_cells: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ``(src, dst)`` pairs for every source id in ``sources``.

        ``dst`` ranges over every node in the ``(2·reach_cells+1)²`` cell
        neighborhood of its source (self-pairs excluded).  Pairs come back
        unsorted and deduplicated-by-construction (neighbor cells are
        disjoint); callers typically sort/filter downstream.
        """
        sources = np.asarray(sources, dtype=np.int64)
        if self.n == 0 or len(sources) == 0:
            return _EMPTY, _EMPTY
        # A pathological radius can exceed the whole grid; clamp the loop.
        reach_cells = min(int(reach_cells), max(self._ncx, self._ncy))
        cxs = self._cx[sources]
        cys = self._cy[sources]
        out_src: list[np.ndarray] = []
        out_dst: list[np.ndarray] = []
        for dx in range(-reach_cells, reach_cells + 1):
            ncx = cxs + dx
            valid_x = (ncx >= 0) & (ncx < self._ncx)
            for dy in range(-reach_cells, reach_cells + 1):
                ncy = cys + dy
                valid = valid_x & (ncy >= 0) & (ncy < self._ncy)
                if not valid.any():
                    continue
                keys = ncx[valid] * self._ncy + ncy[valid]
                src_sel = sources[valid]
                lo = np.searchsorted(self._sorted_keys, keys, side="left")
                hi = np.searchsorted(self._sorted_keys, keys, side="right")
                counts = hi - lo
                total = int(counts.sum())
                if total == 0:
                    continue
                # Segment-arange expansion: for source s with occupied
                # neighbor cell [lo, hi), emit order[lo], …, order[hi-1].
                rep_src = np.repeat(src_sel, counts)
                starts = np.repeat(lo, counts)
                segment = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts)
                out_src.append(rep_src)
                out_dst.append(self._order[starts + segment])
        if not out_src:
            return _EMPTY, _EMPTY
        srcs = np.concatenate(out_src)
        dsts = np.concatenate(out_dst)
        keep = srcs != dsts
        return srcs[keep], dsts[keep]

    def neighborhood_members(self, ids: np.ndarray,
                             reach_cells: int = 1) -> np.ndarray:
        """Unique node ids in the cell neighborhoods of ``ids`` (including
        ``ids`` themselves) — the set whose link-budget rows a move of
        ``ids`` can possibly change."""
        ids = np.asarray(ids, dtype=np.int64)
        _, dsts = self.candidates(ids, reach_cells=reach_cells)
        return np.union1d(dsts, ids)


def neighbor_pairs(positions: np.ndarray,
                   range_m: float) -> tuple[np.ndarray, np.ndarray]:
    """All directed ``(src, dst)`` pairs with ``distance <= range_m``,
    computed through the grid in O(n·k) — the sparse counterpart of
    :func:`repro.topology.placement.adjacency`."""
    positions = np.asarray(positions, dtype=float)
    if len(positions) == 0:
        return _EMPTY, _EMPTY
    grid = UniformGrid(positions, max(float(range_m), 1e-9))
    srcs, dsts = grid.candidates(np.arange(len(positions)))
    if len(srcs) == 0:
        return srcs, dsts
    diff = positions[srcs] - positions[dsts]
    within = (diff ** 2).sum(axis=-1) <= float(range_m) ** 2
    return srcs[within], dsts[within]
