"""Radio propagation models (Rappaport [21], as cited by the paper).

All models map a link distance (meters) to a path loss (dB).  Received power
is ``tx_power_dbm - path_loss_db``.  The large-scale models (free space,
two-ray ground, log-distance) are deterministic; the small-scale Rayleigh
model adds a per-reception stochastic fade on top of a large-scale mean, which
is exactly the regime the paper discusses in Section 3 (signal strength varies
at small scale, but the distance trend survives at large scale — the property
SSAF relies on).

Every model is vectorized over numpy arrays of distances so the channel can
precompute the full N×N link-budget matrix in one call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SPEED_OF_LIGHT",
    "PropagationModel",
    "FreeSpace",
    "TwoRayGround",
    "LogDistance",
    "RayleighFading",
    "range_to_threshold_dbm",
]

#: Signal propagation speed used for per-link airtime delays (m/s).
SPEED_OF_LIGHT = 2.99792458e8

#: Distances below this are clamped before computing path loss, avoiding the
#: d→0 singularity of the analytic models.
_MIN_DISTANCE_M = 1.0


class PropagationModel:
    """Interface: deterministic path loss plus optional stochastic fading."""

    #: True when :meth:`sample_fade_db` is non-degenerate.
    stochastic: bool = False

    def path_loss_db(self, distance_m: np.ndarray | float) -> np.ndarray | float:
        raise NotImplementedError

    def rx_power_dbm(
        self, tx_power_dbm: float, distance_m: np.ndarray | float
    ) -> np.ndarray | float:
        return tx_power_dbm - self.path_loss_db(distance_m)

    def sample_fade_db(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Per-reception fade in dB (positive = constructive)."""
        return np.zeros(n)

    def max_range_m(self, tx_power_dbm: float, threshold_dbm: float) -> float:
        """Largest distance whose *mean* received power still clears
        ``threshold_dbm`` — the reach radius the sparse link budget sizes
        its grid cells from.

        Every model here is monotone non-increasing in distance (the
        sub-meter clamp makes power constant below
        :data:`_MIN_DISTANCE_M`), so a doubling search plus bisection pins
        the cutoff to floating-point precision.  The returned value is the
        first distance that *fails* the threshold, i.e. a conservative
        upper bound: any pair with ``rx_power >= threshold`` is strictly
        closer.  Returns ``0.0`` when nothing is reachable even at the
        clamp distance.
        """
        if self.rx_power_dbm(tx_power_dbm, _MIN_DISTANCE_M) < threshold_dbm:
            return 0.0
        lo = _MIN_DISTANCE_M
        hi = 2.0 * lo
        while self.rx_power_dbm(tx_power_dbm, hi) >= threshold_dbm:
            lo = hi
            hi *= 2.0
            if hi > 1e15:  # pragma: no cover - threshold below any pathloss
                return hi
        while True:
            mid = 0.5 * (lo + hi)
            if mid <= lo or mid >= hi:
                return hi
            if self.rx_power_dbm(tx_power_dbm, mid) >= threshold_dbm:
                lo = mid
            else:
                hi = mid


def _clamp(distance_m: np.ndarray | float) -> np.ndarray | float:
    return np.maximum(distance_m, _MIN_DISTANCE_M)


@dataclass(frozen=True)
class FreeSpace(PropagationModel):
    """Friis free-space model — the one used for every experiment in the paper.

    ``PL(d) = 20 log10(4 π d / λ)`` with wavelength λ = c / frequency.
    """

    frequency_hz: float = 914e6

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    def path_loss_db(self, distance_m: np.ndarray | float) -> np.ndarray | float:
        d = _clamp(distance_m)
        return 20.0 * np.log10(4.0 * math.pi * d / self.wavelength_m)


@dataclass(frozen=True)
class TwoRayGround(PropagationModel):
    """Two-ray ground reflection: free space up to the crossover distance,
    ``PL = 40 log10(d) - 10 log10(ht² hr²)`` beyond it."""

    frequency_hz: float = 914e6
    tx_height_m: float = 1.5
    rx_height_m: float = 1.5

    @property
    def crossover_m(self) -> float:
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def path_loss_db(self, distance_m: np.ndarray | float) -> np.ndarray | float:
        d = np.asarray(_clamp(distance_m), dtype=float)
        free = FreeSpace(self.frequency_hz).path_loss_db(d)
        ground = 40.0 * np.log10(d) - 10.0 * np.log10(
            self.tx_height_m**2 * self.rx_height_m**2
        )
        out = np.where(d < self.crossover_m, free, ground)
        return float(out) if np.isscalar(distance_m) else out


@dataclass(frozen=True)
class LogDistance(PropagationModel):
    """Log-distance model: ``PL = PL(d0) + 10 n log10(d/d0)``."""

    frequency_hz: float = 914e6
    exponent: float = 2.7
    reference_m: float = 1.0

    def path_loss_db(self, distance_m: np.ndarray | float) -> np.ndarray | float:
        d = _clamp(distance_m)
        pl0 = FreeSpace(self.frequency_hz).path_loss_db(self.reference_m)
        return pl0 + 10.0 * self.exponent * np.log10(d / self.reference_m)


@dataclass(frozen=True)
class RayleighFading(PropagationModel):
    """Rayleigh small-scale fading over a large-scale mean model.

    Per-reception power gain is exponentially distributed with unit mean
    (Rayleigh amplitude), i.e. ``fade_db = 10 log10(Exp(1))``.
    """

    mean_model: PropagationModel = FreeSpace()
    stochastic: bool = True

    def path_loss_db(self, distance_m: np.ndarray | float) -> np.ndarray | float:
        return self.mean_model.path_loss_db(distance_m)

    def sample_fade_db(self, rng: np.random.Generator, n: int) -> np.ndarray:
        gain = rng.exponential(1.0, size=n)
        # Clamp the deep-fade tail so log10 stays finite.
        return 10.0 * np.log10(np.maximum(gain, 1e-12))


def range_to_threshold_dbm(
    model: PropagationModel, tx_power_dbm: float, range_m: float
) -> float:
    """Receive threshold that yields exactly the requested transmission range
    under the model's large-scale mean.

    The experiments specify ranges ("roughly 250 meters"), not thresholds; this
    converts one to the other so scenario configs stay in the paper's terms.
    """
    return float(model.rx_power_dbm(tx_power_dbm, range_m))
