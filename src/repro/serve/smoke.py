"""Serve smoke gate: boot the daemon, prove the serving invariants.

Run in CI as ``python -m repro.serve.smoke``.  Boots an in-process daemon
on an ephemeral port with a temporary cache, then checks, end to end over
real HTTP:

1. **Single-flight dedup** — two clients submit the *same* small fig1 cell
   concurrently; the cell executes exactly once and both clients receive
   the full result.
2. **Cache-warm replay** — a third, later request for the same cell is
   answered HTTP 200 straight from the cache without touching the
   executor, and it rode the interactive lane when it did execute.
3. **Clean SSE stream** — the cell's event stream replays the complete
   ``queued → running → done`` sequence, the terminal event is marked,
   and it carries the obs metrics snapshot.

Exit status 0 on success; 1 with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import sys
import tempfile
import threading

from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread

#: A fig1 cell small enough for CI but real enough to exercise the full
#: simulator stack (cost 12 nodes x 3 s = 36 node-seconds → interactive).
SMALL_FIG1 = {
    "experiment": "fig1",
    "protocol": "ssaf",
    "x": 1.0,
    "seed": 1,
    "config": {"n_nodes": 12, "terrain_m": 300.0, "n_connections": 3,
               "duration_s": 3.0},
}


def _fail(message: str) -> int:
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def run_smoke() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        config = ServeConfig(port=0, cache_dir=tmp, interactive_workers=1,
                             batch_workers=1, queue_limit=8)
        with ServerThread(config) as srv:
            print(f"serve-smoke: daemon up at {srv.base_url}")
            replies: dict[str, dict] = {}
            errors: list[BaseException] = []
            barrier = threading.Barrier(2)

            def one_client(tag: str) -> None:
                try:
                    client = ServeClient(srv.base_url, timeout_s=120)
                    barrier.wait(timeout=30)
                    replies[tag] = client.run(SMALL_FIG1, timeout_s=120)
                except BaseException as exc:  # noqa: BLE001 - report below
                    errors.append(exc)

            threads = [threading.Thread(target=one_client, args=(tag,))
                       for tag in ("a", "b")]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            if errors:
                return _fail(f"client error: {errors[0]!r}")
            if set(replies) != {"a", "b"}:
                return _fail("a client never returned")

            # 1. Both clients hold the full result of one execution.
            for tag, reply in replies.items():
                metrics = reply.get("result", {}).get("metrics", {})
                if reply.get("status") != "done" or "delivery_ratio" not in metrics:
                    return _fail(f"client {tag} got no result: {reply}")
            client = ServeClient(srv.base_url, timeout_s=60)
            stats = client.stats()
            executed = stats["scheduler"]["executed"]
            joined = stats["requests"]["dedup_joined"]
            if executed != 1:
                return _fail(f"expected exactly 1 execution, saw {executed}")
            if joined < 1 and stats["requests"]["warm_answers"] < 1:
                return _fail(f"second request neither joined the flight nor "
                             f"hit the cache: {stats['requests']}")
            print(f"serve-smoke: dedup ok (1 execution, {joined} joined)")

            # 2. Replay is cache-warm and the execution used the
            #    interactive lane.
            replay = client.run(SMALL_FIG1, timeout_s=60)
            if replay.get("source") != "cache" or replay.get("http_status") != 200:
                return _fail(f"replay not served from cache: {replay}")
            stats = client.stats()
            if stats["scheduler"]["executed"] != 1:
                return _fail("replay re-executed the cell")
            if stats["scheduler"]["lanes"]["interactive"]["executed"] != 1:
                return _fail(f"small cell did not ride the interactive lane: "
                             f"{stats['scheduler']['lanes']}")
            print("serve-smoke: cache-warm replay ok (interactive lane)")

            # 3. The SSE stream replays a clean queued→running→done life.
            key = replies["a"]["key"]
            events = [payload for _name, payload in client.events(key)]
            statuses = [e["status"] for e in events]
            if statuses != ["queued", "running", "done"]:
                return _fail(f"unexpected SSE sequence: {statuses}")
            terminal = events[-1]
            if not terminal.get("terminal"):
                return _fail("terminal SSE event not marked terminal")
            obs = terminal.get("obs") or {}
            if "repro_packet_events_total" not in obs:
                return _fail("terminal SSE event missing obs snapshot")
            if terminal.get("telemetry", {}).get("wall_s", 0) <= 0:
                return _fail("terminal SSE event missing telemetry")
            print("serve-smoke: SSE stream ok "
                  f"(wall {terminal['telemetry']['wall_s']:.2f}s)")

    print("serve-smoke: PASS")
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
