"""The ``repro serve`` daemon: campaign results as a service.

A long-lived asyncio HTTP/JSON server over the campaign subsystem — the
content-addressed :class:`~repro.campaign.cache.ResultCache` becomes a
shared result store, the simulator a backend behind it:

* ``POST /v1/cells`` — submit a cell query (see
  :mod:`repro.serve.schemas`).  Warm keys answer instantly from the cache
  (HTTP 200, ``source: cache``); cold keys are admitted to a lane and
  scheduled (HTTP 202), with identical in-flight queries deduplicated into
  one execution; a full lane answers HTTP 429 with ``Retry-After``.
* ``GET /v1/cells/{key}`` — status/result for a key.
* ``GET /v1/cells/{key}/events`` — server-sent events stream of the cell's
  ``queued → running → done`` life, with telemetry and obs snapshots.
* ``GET /v1/stats`` — cache, lane, dedup and admission counters.
* ``GET /v1/healthz`` — liveness.

The HTTP layer is deliberately tiny (HTTP/1.1, ``Connection: close``, JSON
bodies): stdlib-only, one connection per request, which is exactly what a
result-query workload needs and keeps the daemon free of new dependencies.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.campaign.cache import ResultCache, summary_to_dict
from repro.serve import sse
from repro.serve.scheduler import AdmissionFull, LaneScheduler
from repro.serve.schemas import (
    BadRequest,
    parse_cell_query,
    resolve_cell,
    valid_key,
)
from repro.serve.singleflight import FlightRegistry

__all__ = ["ServeConfig", "ReproServer", "ServerThread"]

_MAX_BODY = 1 << 20          # 1 MiB of JSON is a config error, not a query
_REQUEST_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests/smoke); read it back off the server.
    port: int = 8750
    cache_dir: str | os.PathLike = os.path.join("campaigns", "cache")
    interactive_workers: int = 2
    batch_workers: int = 1
    #: Admission queue bound per lane; a full lane answers 429.
    queue_limit: int = 64
    batch_queue_limit: Optional[int] = None
    #: Cells whose estimated cost (node-seconds) is at or under this run in
    #: the interactive lane; bigger (or inestimable-and-flagged) cells go
    #: to batch.  Inestimable costs default to interactive.
    interactive_cost_threshold: float = 1500.0
    #: Retries per failing cell before the flight fails (campaign-style).
    max_retries: int = 1
    backoff_s: float = 0.05
    #: Attach an obs bundle to each executed cell; its metrics snapshot
    #: rides in the terminal SSE event.
    observe: bool = True
    #: SSE keepalive comment interval.
    keepalive_s: float = 15.0


class ReproServer:
    """The daemon: routing + handlers over cache, registry, scheduler."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.cache = ResultCache(self.config.cache_dir)
        self.registry = FlightRegistry()
        self.scheduler = LaneScheduler(
            cache=self.cache, registry=self.registry,
            interactive_workers=self.config.interactive_workers,
            batch_workers=self.config.batch_workers,
            queue_limit=self.config.queue_limit,
            batch_queue_limit=self.config.batch_queue_limit,
            max_retries=self.config.max_retries,
            backoff_s=self.config.backoff_s,
            observe=self.config.observe,
        )
        self.started_at = time.time()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # Request counters for /v1/stats.
        self.submitted = 0
        self.warm_answers = 0
        self.status_reads = 0
        self.sse_streams = 0
        self.client_errors = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # --------------------------------------------------------------- HTTP

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=_REQUEST_TIMEOUT_S)
            except _HttpError as exc:
                await self._respond_json(writer, exc.status,
                                         {"error": exc.message})
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad conn can't kill us
            try:
                await self._respond_json(writer, 500,
                                         {"error": f"internal: {exc!r}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/v1/healthz":
            await self._respond_json(writer, 200, {
                "status": "ok", "uptime_s": time.time() - self.started_at})
        elif path == "/v1/stats":
            await self._respond_json(writer, 200, self.stats())
        elif path == "/v1/cells":
            if method != "POST":
                await self._respond_json(writer, 405,
                                         {"error": "POST /v1/cells"})
            else:
                await self._handle_submit(body, writer)
        elif path.startswith("/v1/cells/") and path.endswith("/events"):
            key = path[len("/v1/cells/"):-len("/events")]
            await self._stream_events(key, writer)
        elif path.startswith("/v1/cells/"):
            key = path[len("/v1/cells/"):]
            await self._handle_status(key, writer)
        else:
            await self._respond_json(writer, 404,
                                     {"error": f"no route for {path}"})

    # ------------------------------------------------------------- handlers

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        self.submitted += 1
        try:
            try:
                payload = json.loads(body)
            except ValueError:
                raise BadRequest("request body is not valid JSON") from None
            query = parse_cell_query(payload)
            resolved = resolve_cell(query)
        except BadRequest as exc:
            self.client_errors += 1
            await self._respond_json(writer, 400, {"error": str(exc)})
            return

        summary = self.cache.get(resolved.key)
        if summary is not None:
            self.warm_answers += 1
            await self._respond_json(writer, 200, {
                "key": resolved.key, "status": "done", "source": "cache",
                "result": summary_to_dict(summary),
            })
            return

        lane = self._pick_lane(resolved)
        flight, created = self.registry.join_or_create(resolved, lane)
        if not created:
            await self._respond_json(writer, 202, {
                "key": flight.key, "status": flight.state, "source": "joined",
                "lane": flight.lane,
            })
            return
        try:
            self.scheduler.admit(flight)
        except AdmissionFull as exc:
            self.registry.discard(flight)
            await self._respond_json(
                writer, 429,
                {"error": str(exc), "lane": exc.lane,
                 "retry_after_s": exc.retry_after_s},
                extra_headers=(("Retry-After", str(exc.retry_after_s)),))
            return
        await self._respond_json(writer, 202, {
            "key": flight.key, "status": "queued", "source": "scheduled",
            "lane": lane,
        })

    def _pick_lane(self, resolved) -> str:
        if resolved.query.lane is not None:
            return resolved.query.lane
        cost = resolved.cost
        if cost is None:
            return "interactive"
        return ("interactive"
                if cost <= self.config.interactive_cost_threshold
                else "batch")

    async def _handle_status(self, key: str,
                             writer: asyncio.StreamWriter) -> None:
        self.status_reads += 1
        if not valid_key(key):
            await self._respond_json(writer, 400,
                                     {"error": "malformed cell key"})
            return
        flight = self.registry.get(key)
        if flight is not None:
            payload = {"key": key, "status": flight.state,
                       "lane": flight.lane, "joiners": flight.joiners}
            if flight.state == "done" and flight.result_wire is not None:
                payload.update(source="run", result=flight.result_wire)
            elif flight.state == "failed":
                payload["error"] = flight.error
            await self._respond_json(writer, 200, payload)
            return
        summary = self.cache.get(key)
        if summary is not None:
            await self._respond_json(writer, 200, {
                "key": key, "status": "done", "source": "cache",
                "result": summary_to_dict(summary),
            })
            return
        await self._respond_json(writer, 404,
                                 {"error": f"unknown cell {key}"})

    async def _stream_events(self, key: str,
                             writer: asyncio.StreamWriter) -> None:
        self.sse_streams += 1
        if not valid_key(key):
            await self._respond_json(writer, 400,
                                     {"error": "malformed cell key"})
            return
        flight = self.registry.get(key)
        if flight is None:
            summary = self.cache.get(key)
            if summary is None:
                await self._respond_json(writer, 404,
                                         {"error": f"unknown cell {key}"})
                return
            await self._write_headers(writer, 200, sse.SSE_HEADERS)
            writer.write(sse.encode_event(
                {"key": key, "status": "done", "source": "cache",
                 "terminal": True, "ts": time.time(),
                 "result": summary_to_dict(summary)},
                event="done", event_id=0))
            await writer.drain()
            return

        history, queue = flight.subscribe()
        try:
            await self._write_headers(writer, 200, sse.SSE_HEADERS)
            event_id = 0
            terminal_seen = False
            for event in history:
                writer.write(sse.encode_event(
                    event,
                    event="done" if event.get("terminal") else "progress",
                    event_id=event_id))
                event_id += 1
                terminal_seen = terminal_seen or bool(event.get("terminal"))
            await writer.drain()
            while not terminal_seen:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=self.config.keepalive_s)
                except asyncio.TimeoutError:
                    writer.write(sse.encode_comment())
                    await writer.drain()
                    continue
                writer.write(sse.encode_event(
                    event,
                    event="done" if event.get("terminal") else "progress",
                    event_id=event_id))
                event_id += 1
                await writer.drain()
                terminal_seen = bool(event.get("terminal"))
        finally:
            flight.unsubscribe(queue)

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": {
                "submitted": self.submitted,
                "warm_answers": self.warm_answers,
                "dedup_joined": self.registry.dedup_joined,
                "rejected": self.scheduler.rejected,
                "status_reads": self.status_reads,
                "sse_streams": self.sse_streams,
                "client_errors": self.client_errors,
            },
            "inflight": self.registry.inflight,
            "scheduler": self.scheduler.stats(),
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------- plumbing

    async def _write_headers(self, writer: asyncio.StreamWriter, status: int,
                             headers) -> None:
        text = _STATUS_TEXT.get(status, "?")
        lines = [f"HTTP/1.1 {status} {text}"]
        lines += [f"{name}: {value}" for name, value in headers]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            payload: dict, extra_headers=()) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = [("Content-Type", "application/json; charset=utf-8"),
                   ("Content-Length", str(len(body))),
                   ("Connection", "close"), *extra_headers]
        await self._write_headers(writer, status, headers)
        writer.write(body)
        await writer.drain()


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ServerThread:
    """Run a :class:`ReproServer` on a background event loop — the
    embedding shape tests, the smoke gate, and notebooks use::

        with ServerThread(ServeConfig(port=0, cache_dir=...)) as srv:
            requests_go_to(srv.base_url)
    """

    def __init__(self, config: ServeConfig | None = None):
        self.server = ReproServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def __enter__(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is None:
            return
        if self._startup_error is None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop.close()
