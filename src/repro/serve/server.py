"""The ``repro serve`` daemon: campaign results as a service.

A long-lived asyncio HTTP/JSON server over the campaign subsystem — the
content-addressed :class:`~repro.campaign.cache.ResultCache` becomes a
shared result store, the simulator a backend behind it:

* ``POST /v1/cells`` — submit a cell query (see
  :mod:`repro.serve.schemas`).  Warm keys answer instantly from the cache
  (HTTP 200, ``source: cache``); cold keys are admitted to a lane and
  scheduled (HTTP 202), with identical in-flight queries deduplicated into
  one execution; a full lane answers HTTP 429 with ``Retry-After``.
* ``GET /v1/cells/{key}`` — status/result for a key.
* ``GET /v1/cells/{key}/events`` — server-sent events stream of the cell's
  ``queued → running → done`` life, with telemetry and obs snapshots.
* ``GET /v1/stats`` — cache, lane, dedup and admission counters.
* ``GET /v1/healthz`` — liveness, uptime, version + instance fingerprint.
* ``GET /metrics`` — Prometheus text exposition: request-latency
  histograms per route, lane queue-depth gauges, cache hit/miss/malformed
  and dedup counters (see :mod:`repro.obs.prom`).
* ``GET /v1/traces/{trace_id}`` — the spans recorded for one trace id as
  Chrome trace-event JSON (see :mod:`repro.obs.spans`).

**Observability.** Every request that carries an ``X-Repro-Trace-Id``
header is traced: the id is echoed in responses and SSE events, spans are
recorded for HTTP handling, admission-queue wait, execution attempts and
the simulation run, and the access log line carries the id — so one
``repro query --trace`` correlates the client, the daemon log, ``/metrics``
and a Perfetto timeline.  Requests without the header pay nothing beyond a
histogram observation.  Logging goes through
:mod:`repro.obs.logging` (``--log-level`` / ``--log-json``).

The HTTP layer is deliberately tiny (HTTP/1.1, ``Connection: close``, JSON
bodies): stdlib-only, one connection per request, which is exactly what a
result-query workload needs and keeps the daemon free of new dependencies.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro import __version__
from repro.campaign.cache import ResultCache, summary_to_dict
from repro.obs.logging import get_logger
from repro.obs.prom import render_exposition
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    Span,
    SpanSink,
    spans_to_chrome_trace,
    valid_trace_id,
)
from repro.serve import sse
from repro.serve.scheduler import AdmissionFull, LaneScheduler
from repro.serve.schemas import (
    BadRequest,
    parse_cell_query,
    resolve_cell,
    valid_key,
)
from repro.serve.singleflight import FlightRegistry

__all__ = ["ServeConfig", "ReproServer", "ServerThread"]

_MAX_BODY = 1 << 20          # 1 MiB of JSON is a config error, not a query
_REQUEST_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: Request-latency buckets: µs-scale warm cache answers through multi-second
#: simulated executions followed over SSE.
_LATENCY_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0,
)


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests/smoke); read it back off the server.
    port: int = 8750
    cache_dir: str | os.PathLike = os.path.join("campaigns", "cache")
    interactive_workers: int = 2
    batch_workers: int = 1
    #: Admission queue bound per lane; a full lane answers 429.
    queue_limit: int = 64
    batch_queue_limit: Optional[int] = None
    #: Cells whose estimated cost (node-seconds) is at or under this run in
    #: the interactive lane; bigger (or inestimable-and-flagged) cells go
    #: to batch.  Inestimable costs default to interactive.
    interactive_cost_threshold: float = 1500.0
    #: Retries per failing cell before the flight fails (campaign-style).
    max_retries: int = 1
    backoff_s: float = 0.05
    #: Attach an obs bundle to each executed cell; its metrics snapshot
    #: rides in the terminal SSE event.
    observe: bool = True
    #: SSE keepalive comment interval.
    keepalive_s: float = 15.0
    #: Spans retained for /v1/traces export (oldest age out first).
    span_capacity: int = 8192


@dataclass
class _Request:
    """Per-request context: what the access log and metrics need."""

    method: str = "-"
    path: str = "-"
    route: str = "other"
    trace_id: Optional[str] = None
    status: int = 0
    streamed: bool = False
    started: float = field(default_factory=time.perf_counter)


class ReproServer:
    """The daemon: routing + handlers over cache, registry, scheduler."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.cache = ResultCache(self.config.cache_dir)
        self.registry = FlightRegistry()
        self.metrics = MetricsRegistry()
        self.sink = SpanSink(self.config.span_capacity)
        self.log = get_logger("serve.http")
        self.scheduler = LaneScheduler(
            cache=self.cache, registry=self.registry,
            interactive_workers=self.config.interactive_workers,
            batch_workers=self.config.batch_workers,
            queue_limit=self.config.queue_limit,
            batch_queue_limit=self.config.batch_queue_limit,
            max_retries=self.config.max_retries,
            backoff_s=self.config.backoff_s,
            observe=self.config.observe,
            sink=self.sink,
        )
        self.started_at = time.time()
        #: Fresh per process: lets probes detect a daemon restart even when
        #: the version did not change.
        self.instance = uuid.uuid4().hex[:12]
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # Request counters for /v1/stats.
        self.submitted = 0
        self.warm_answers = 0
        self.status_reads = 0
        self.sse_streams = 0
        self.client_errors = 0
        # Live request-level metric families (scrape adds derived gauges).
        self._http_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route, method and status.",
            ("route", "method", "status"))
        self._http_latency = self.metrics.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency by route (SSE streams measure "
            "until the stream closes).",
            ("route",), buckets=_LATENCY_BUCKETS)
        self._http_inflight = self.metrics.gauge(
            "repro_http_inflight_requests",
            "Requests currently being handled.")

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.log.info("listening", host=self.config.host, port=self.port,
                      cache_dir=str(self.cache.root),
                      version=__version__, instance=self.instance)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        self.log.info("stopped", uptime_s=round(time.time() - self.started_at, 3))

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # --------------------------------------------------------------- HTTP

    @staticmethod
    def _route_label(path: str) -> str:
        """Bounded-cardinality route label for metrics (keys and trace ids
        collapse into placeholders)."""
        if path == "/v1/cells":
            return "/v1/cells"
        if path.startswith("/v1/cells/"):
            return ("/v1/cells/{key}/events" if path.endswith("/events")
                    else "/v1/cells/{key}")
        if path.startswith("/v1/traces/"):
            return "/v1/traces/{trace_id}"
        if path in ("/v1/healthz", "/v1/stats", "/metrics"):
            return path
        return "other"

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        req = _Request()
        self._http_inflight.inc()
        try:
            try:
                method, path, headers, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=_REQUEST_TIMEOUT_S)
            except _HttpError as exc:
                req.status = exc.status
                await self._respond_json(writer, exc.status,
                                         {"error": exc.message})
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            req.method, req.path = method, path
            req.route = self._route_label(path)
            raw_trace = headers.get("x-repro-trace-id")
            if raw_trace and valid_trace_id(raw_trace):
                req.trace_id = raw_trace.lower()
            await self._route(req, body, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad conn can't kill us
            req.status = 500
            self.log.error("internal_error", trace_id=req.trace_id,
                           method=req.method, path=req.path, error=repr(exc))
            try:
                await self._respond_json(
                    writer, 500, self._with_trace(
                        {"error": f"internal: {exc!r}"}, req))
            except ConnectionError:
                pass
        finally:
            self._http_inflight.dec()
            self._observe_request(req)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _observe_request(self, req: _Request) -> None:
        duration = time.perf_counter() - req.started
        self._http_requests.labels(req.route, req.method, req.status).inc()
        self._http_latency.labels(req.route).observe(duration)
        self.log.info("request", trace_id=req.trace_id, method=req.method,
                      path=req.path, status=req.status,
                      duration_ms=round(duration * 1e3, 3),
                      **({"streamed": True} if req.streamed else {}))
        if req.trace_id is not None:
            Span("http.request", trace_id=req.trace_id, category="serve",
                 start_s=time.time() - duration,
                 attrs={"method": req.method, "route": req.route,
                        "status": req.status}).finish(self.sink)

    @staticmethod
    def _with_trace(payload: dict, req: _Request) -> dict:
        """Echo the request's trace id into a response body."""
        if req.trace_id is not None:
            payload.setdefault("trace_id", req.trace_id)
        return payload

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    async def _route(self, req: _Request, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        method, path = req.method, req.path
        if path == "/v1/healthz":
            await self._respond_json(writer, 200, {
                "status": "ok",
                "uptime_s": time.time() - self.started_at,
                "version": __version__,
                "instance": self.instance,
                "started_at": self.started_at,
                "pid": os.getpid(),
            }, req=req)
        elif path == "/v1/stats":
            await self._respond_json(writer, 200, self.stats(), req=req)
        elif path == "/metrics":
            await self._handle_metrics(req, writer)
        elif path == "/v1/cells":
            if method != "POST":
                await self._respond_json(writer, 405,
                                         self._with_trace(
                                             {"error": "POST /v1/cells"}, req),
                                         req=req)
            else:
                await self._handle_submit(req, body, writer)
        elif path.startswith("/v1/traces/"):
            await self._handle_trace(req, path[len("/v1/traces/"):], writer)
        elif path.startswith("/v1/cells/") and path.endswith("/events"):
            key = path[len("/v1/cells/"):-len("/events")]
            await self._stream_events(req, key, writer)
        elif path.startswith("/v1/cells/"):
            key = path[len("/v1/cells/"):]
            await self._handle_status(req, key, writer)
        else:
            await self._respond_json(writer, 404,
                                     self._with_trace(
                                         {"error": f"no route for {path}"},
                                         req),
                                     req=req)

    # ------------------------------------------------------------- handlers

    async def _handle_submit(self, req: _Request, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        self.submitted += 1
        try:
            try:
                payload = json.loads(body)
            except ValueError:
                raise BadRequest("request body is not valid JSON") from None
            query = parse_cell_query(payload)
            resolved = resolve_cell(query)
        except BadRequest as exc:
            self.client_errors += 1
            self.log.warning("bad_request", trace_id=req.trace_id,
                             error=str(exc))
            await self._respond_json(writer, 400,
                                     self._with_trace({"error": str(exc)},
                                                      req),
                                     req=req)
            return

        summary = self.cache.get(resolved.key)
        if summary is not None:
            self.warm_answers += 1
            await self._respond_json(writer, 200, self._with_trace({
                "key": resolved.key, "status": "done", "source": "cache",
                "result": summary_to_dict(summary),
            }, req), req=req)
            return

        lane = self._pick_lane(resolved)
        flight, created = self.registry.join_or_create(resolved, lane,
                                                       trace_id=req.trace_id)
        if not created:
            await self._respond_json(writer, 202, self._with_trace({
                "key": flight.key, "status": flight.state, "source": "joined",
                "lane": flight.lane,
            }, req), req=req)
            return
        try:
            self.scheduler.admit(flight)
        except AdmissionFull as exc:
            self.registry.discard(flight)
            self.log.warning("admission_rejected", trace_id=req.trace_id,
                             key=flight.key, lane=exc.lane,
                             retry_after_s=exc.retry_after_s)
            await self._respond_json(
                writer, 429,
                self._with_trace(
                    {"error": str(exc), "lane": exc.lane,
                     "retry_after_s": exc.retry_after_s}, req),
                extra_headers=(("Retry-After", str(exc.retry_after_s)),),
                req=req)
            return
        self.log.info("cell_admitted", trace_id=req.trace_id,
                      key=flight.key, lane=lane, cell=resolved.label)
        await self._respond_json(writer, 202, self._with_trace({
            "key": flight.key, "status": "queued", "source": "scheduled",
            "lane": lane,
        }, req), req=req)

    def _pick_lane(self, resolved) -> str:
        if resolved.query.lane is not None:
            return resolved.query.lane
        cost = resolved.cost
        if cost is None:
            return "interactive"
        return ("interactive"
                if cost <= self.config.interactive_cost_threshold
                else "batch")

    async def _handle_status(self, req: _Request, key: str,
                             writer: asyncio.StreamWriter) -> None:
        self.status_reads += 1
        if not valid_key(key):
            await self._respond_json(writer, 400,
                                     self._with_trace(
                                         {"error": "malformed cell key"}, req),
                                     req=req)
            return
        flight = self.registry.get(key)
        if flight is not None:
            payload = {"key": key, "status": flight.state,
                       "lane": flight.lane, "joiners": flight.joiners}
            if flight.state == "done" and flight.result_wire is not None:
                payload.update(source="run", result=flight.result_wire)
            elif flight.state == "failed":
                payload["error"] = flight.error
            await self._respond_json(writer, 200,
                                     self._with_trace(payload, req), req=req)
            return
        summary = self.cache.get(key)
        if summary is not None:
            await self._respond_json(writer, 200, self._with_trace({
                "key": key, "status": "done", "source": "cache",
                "result": summary_to_dict(summary),
            }, req), req=req)
            return
        await self._respond_json(writer, 404,
                                 self._with_trace(
                                     {"error": f"unknown cell {key}"}, req),
                                 req=req)

    async def _handle_trace(self, req: _Request, trace_id: str,
                            writer: asyncio.StreamWriter) -> None:
        if not valid_trace_id(trace_id):
            await self._respond_json(writer, 400,
                                     self._with_trace(
                                         {"error": "malformed trace id"}, req),
                                     req=req)
            return
        spans = self.sink.for_trace(trace_id.lower())
        if not spans:
            await self._respond_json(
                writer, 404,
                self._with_trace({"error": f"no spans for trace {trace_id}"},
                                 req),
                req=req)
            return
        await self._respond_json(writer, 200, spans_to_chrome_trace(spans),
                                 req=req)

    async def _handle_metrics(self, req: _Request,
                              writer: asyncio.StreamWriter) -> None:
        body = render_exposition(self.metrics_snapshot()).encode("utf-8")
        req.status = 200
        headers = [("Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8"),
                   ("Content-Length", str(len(body))),
                   ("Connection", "close")]
        await self._write_headers(writer, 200, headers)
        writer.write(body)
        await writer.drain()

    def metrics_snapshot(self) -> dict:
        """The full scrape view: live request metrics plus gauges/counters
        derived from scheduler, single-flight registry and cache state."""
        scrape = MetricsRegistry()
        scrape.merge_snapshot(self.metrics.snapshot())

        uptime = scrape.gauge("repro_uptime_seconds",
                              "Seconds since the daemon started.")
        uptime.set(time.time() - self.started_at)

        depth = scrape.gauge("repro_lane_queue_depth",
                             "Cells waiting in each admission lane.",
                             ("lane",))
        limit = scrape.gauge("repro_lane_queue_limit",
                             "Admission queue bound per lane.", ("lane",))
        workers = scrape.gauge("repro_lane_workers",
                               "Executor workers per lane.", ("lane",))
        executed = scrape.counter("repro_cells_executed_total",
                                  "Cells executed to completion, per lane.",
                                  ("lane",))
        failed = scrape.counter("repro_cells_failed_total",
                                "Cells that settled as failed, per lane.",
                                ("lane",))
        for name, lane in self.scheduler.lanes.items():
            stats = lane.stats()
            depth.labels(name).set(stats["depth"])
            limit.labels(name).set(stats["limit"])
            workers.labels(name).set(stats["workers"])
            executed.labels(name).inc(stats["executed"])
            failed.labels(name).inc(stats["failed"])

        scrape.counter("repro_admission_rejected_total",
                       "Submissions refused with 429 (lane full).").inc(
            self.scheduler.rejected)
        scrape.counter("repro_dedup_joined_total",
                       "Submissions collapsed onto an identical in-flight "
                       "execution (single-flight dedup).").inc(
            self.registry.dedup_joined)
        scrape.gauge("repro_flights_inflight",
                     "Cell executions currently in flight.").set(
            self.registry.inflight)

        cache_stats = self.cache.stats()
        lookups = scrape.counter("repro_cache_lookups_total",
                                 "Result-cache lookups by outcome.",
                                 ("outcome",))
        lookups.labels("hit").inc(cache_stats.get("hits", 0))
        lookups.labels("miss").inc(cache_stats.get("misses", 0))
        lookups.labels("malformed").inc(cache_stats.get("malformed", 0))

        requests = scrape.counter("repro_requests_total",
                                  "API-level request counts by kind.",
                                  ("kind",))
        requests.labels("submitted").inc(self.submitted)
        requests.labels("warm_answer").inc(self.warm_answers)
        requests.labels("status_read").inc(self.status_reads)
        requests.labels("sse_stream").inc(self.sse_streams)
        requests.labels("client_error").inc(self.client_errors)

        scrape.gauge("repro_spans_recorded",
                     "Spans recorded since start (bounded buffer).").set(
            self.sink.recorded)
        return scrape.snapshot()

    async def _stream_events(self, req: _Request, key: str,
                             writer: asyncio.StreamWriter) -> None:
        self.sse_streams += 1
        req.streamed = True
        if not valid_key(key):
            await self._respond_json(writer, 400,
                                     self._with_trace(
                                         {"error": "malformed cell key"}, req),
                                     req=req)
            return
        flight = self.registry.get(key)
        if flight is None:
            summary = self.cache.get(key)
            if summary is None:
                await self._respond_json(writer, 404,
                                         self._with_trace(
                                             {"error": f"unknown cell {key}"},
                                             req),
                                         req=req)
                return
            req.status = 200
            await self._write_headers(writer, 200, sse.SSE_HEADERS)
            writer.write(sse.encode_event(
                self._with_trace(
                    {"key": key, "status": "done", "source": "cache",
                     "terminal": True, "ts": time.time(),
                     "result": summary_to_dict(summary)}, req),
                event="done", event_id=0))
            await writer.drain()
            return

        history, queue = flight.subscribe()
        try:
            req.status = 200
            await self._write_headers(writer, 200, sse.SSE_HEADERS)
            event_id = 0
            terminal_seen = False
            for event in history:
                writer.write(sse.encode_event(
                    event,
                    event="done" if event.get("terminal") else "progress",
                    event_id=event_id))
                event_id += 1
                terminal_seen = terminal_seen or bool(event.get("terminal"))
            await writer.drain()
            while not terminal_seen:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=self.config.keepalive_s)
                except asyncio.TimeoutError:
                    writer.write(sse.encode_comment())
                    await writer.drain()
                    continue
                writer.write(sse.encode_event(
                    event,
                    event="done" if event.get("terminal") else "progress",
                    event_id=event_id))
                event_id += 1
                await writer.drain()
                terminal_seen = bool(event.get("terminal"))
        finally:
            flight.unsubscribe(queue)

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "uptime_s": time.time() - self.started_at,
            "version": __version__,
            "instance": self.instance,
            "requests": {
                "submitted": self.submitted,
                "warm_answers": self.warm_answers,
                "dedup_joined": self.registry.dedup_joined,
                "rejected": self.scheduler.rejected,
                "status_reads": self.status_reads,
                "sse_streams": self.sse_streams,
                "client_errors": self.client_errors,
            },
            "inflight": self.registry.inflight,
            "scheduler": self.scheduler.stats(),
            "cache": self.cache.stats(),
            "spans_recorded": self.sink.recorded,
        }

    # ------------------------------------------------------------- plumbing

    async def _write_headers(self, writer: asyncio.StreamWriter, status: int,
                             headers) -> None:
        text = _STATUS_TEXT.get(status, "?")
        lines = [f"HTTP/1.1 {status} {text}"]
        lines += [f"{name}: {value}" for name, value in headers]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            payload: dict, extra_headers=(),
                            req: _Request | None = None) -> None:
        if req is not None:
            req.status = status
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = [("Content-Type", "application/json; charset=utf-8"),
                   ("Content-Length", str(len(body))),
                   ("Connection", "close"), *extra_headers]
        await self._write_headers(writer, status, headers)
        writer.write(body)
        await writer.drain()


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ServerThread:
    """Run a :class:`ReproServer` on a background event loop — the
    embedding shape tests, the smoke gate, and notebooks use::

        with ServerThread(ServeConfig(port=0, cache_dir=...)) as srv:
            requests_go_to(srv.base_url)
    """

    def __init__(self, config: ServeConfig | None = None):
        self.server = ReproServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def __enter__(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is None:
            return
        if self._startup_error is None:
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop.close()
