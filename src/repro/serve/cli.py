"""``repro serve`` — start the result-serving daemon.

::

    python -m repro.experiments serve --port 8750 --cache-dir campaigns/cache
    python -m repro.serve --port 0          # ephemeral port, printed at boot

See ``docs/SERVING.md`` for the HTTP API this exposes and ``repro query``
for the matching client.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.server import ReproServer, ServeConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Serve experiment-cell results over HTTP/JSON + SSE.")
    parser.add_argument("--host", default=defaults.host,
                        help="bind address (default %(default)s)")
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="bind port; 0 picks an ephemeral one "
                             "(default %(default)s)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=str(defaults.cache_dir),
                        help="shared content-addressed result cache "
                             "(default %(default)s)")
    parser.add_argument("--interactive-workers", type=int, metavar="N",
                        default=defaults.interactive_workers,
                        help="interactive-lane executor threads "
                             "(default %(default)s)")
    parser.add_argument("--batch-workers", type=int, metavar="N",
                        default=defaults.batch_workers,
                        help="batch-lane executor threads "
                             "(default %(default)s)")
    parser.add_argument("--queue-limit", type=int, metavar="N",
                        default=defaults.queue_limit,
                        help="admission queue bound per lane; a full lane "
                             "answers 429 (default %(default)s)")
    parser.add_argument("--batch-queue-limit", type=int, metavar="N",
                        default=None,
                        help="separate bound for the batch lane "
                             "(default: same as --queue-limit)")
    parser.add_argument("--interactive-threshold", type=float, metavar="COST",
                        default=defaults.interactive_cost_threshold,
                        help="node-seconds at or under which a cell rides "
                             "the interactive lane (default %(default)s)")
    parser.add_argument("--retries", type=int, metavar="N",
                        default=defaults.max_retries,
                        help="retries per failing cell (default %(default)s)")
    parser.add_argument("--no-observe", action="store_true",
                        help="skip per-cell obs snapshots in SSE events")
    parser.add_argument("--log-level", metavar="LEVEL", default="info",
                        choices=("debug", "info", "warning", "error", "off"),
                        help="structured-log threshold: debug, info, "
                             "warning, error, or off (default %(default)s)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured logs as JSON lines instead "
                             "of aligned text (one object per line, with "
                             "ts/level/logger/event/trace_id fields)")
    return parser


def config_from_args(args) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        interactive_workers=args.interactive_workers,
        batch_workers=args.batch_workers,
        queue_limit=args.queue_limit,
        batch_queue_limit=args.batch_queue_limit,
        interactive_cost_threshold=args.interactive_threshold,
        max_retries=args.retries,
        observe=not args.no_observe,
    )


async def _serve(config: ServeConfig) -> None:
    server = ReproServer(config)
    await server.start()
    print(f"repro serve listening on http://{config.host}:{server.port} "
          f"(cache: {server.cache.root})", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:]) if argv is None else list(argv))
    from repro.obs.logging import configure
    configure(args.log_level, json_mode=args.log_json)
    try:
        asyncio.run(_serve(config_from_args(args)))
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
