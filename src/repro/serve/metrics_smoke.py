"""Metrics-scrape smoke gate: boot, query, scrape, validate.

Run in CI as ``python -m repro.serve.metrics_smoke``.  Boots an in-process
daemon on an ephemeral port, runs one traced small fig1 cell through it,
then checks the operational surface end to end over real HTTP:

1. **Exposition syntax** — ``GET /metrics`` parses with the strict stdlib
   parser (:func:`repro.obs.prom.parse_exposition`): every family typed,
   histograms cumulative with a ``+Inf`` bucket.
2. **Required series** — request-latency histogram samples for the routes
   the query touched, lane queue-depth gauges for both lanes, cache
   hit/miss counters, and the execution counter reflecting the one run.
3. **Trace plumbing** — the trace id the client minted comes back in the
   SSE terminal event and ``GET /v1/traces/{id}`` exports spans covering
   the queue wait, the execution attempt and the simulation run.

Exit status 0 on success; 1 with a diagnostic on any violated invariant.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request

from repro.obs.prom import ExpositionError, parse_exposition
from repro.obs.spans import new_trace_id
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.smoke import SMALL_FIG1


def _fail(message: str) -> int:
    print(f"metrics-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def _scrape(base_url: str) -> str:
    with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
        content_type = resp.headers.get("Content-Type", "")
        if not content_type.startswith("text/plain"):
            raise ExpositionError(f"bad content type {content_type!r}")
        return resp.read().decode("utf-8")


def run_smoke() -> int:
    trace_id = new_trace_id()
    with tempfile.TemporaryDirectory(prefix="repro-metrics-smoke-") as tmp:
        config = ServeConfig(port=0, cache_dir=tmp, interactive_workers=1,
                             batch_workers=1, queue_limit=8)
        with ServerThread(config) as srv:
            print(f"metrics-smoke: daemon up at {srv.base_url} "
                  f"(trace {trace_id})")
            client = ServeClient(srv.base_url, timeout_s=120,
                                 trace_id=trace_id)
            reply = client.run(SMALL_FIG1, timeout_s=120)
            if reply.get("status") != "done":
                return _fail(f"traced query did not settle: {reply}")
            if reply.get("trace_id") != trace_id:
                return _fail(f"terminal event lost the trace id: {reply}")
            print("metrics-smoke: traced query done "
                  f"(wall {reply.get('telemetry', {}).get('wall_s', 0):.2f}s)")

            # 1. The exposition parses under the strict parser.
            text = _scrape(srv.base_url)
            try:
                families = parse_exposition(text)
            except ExpositionError as exc:
                return _fail(f"exposition rejected: {exc}")
            print(f"metrics-smoke: exposition ok "
                  f"({len(families)} families, {len(text)} bytes)")

            # 2. The series the daemon must export.
            latency = families.get("repro_http_request_seconds")
            if latency is None or latency["type"] != "histogram":
                return _fail("no repro_http_request_seconds histogram")
            routes = {labels.get("route")
                      for name, labels, _v in latency["samples"]
                      if name.endswith("_bucket")}
            for route in ("/v1/cells", "/v1/cells/{key}/events"):
                if route not in routes:
                    return _fail(f"no latency series for route {route!r} "
                                 f"(saw {sorted(routes)})")
            depth = families.get("repro_lane_queue_depth")
            if depth is None or depth["type"] != "gauge":
                return _fail("no repro_lane_queue_depth gauge")
            lanes = {labels.get("lane") for _n, labels, _v in depth["samples"]}
            if lanes != {"interactive", "batch"}:
                return _fail(f"queue-depth gauges missing a lane: {lanes}")
            lookups = families.get("repro_cache_lookups_total")
            if lookups is None or lookups["type"] != "counter":
                return _fail("no repro_cache_lookups_total counter")
            outcomes = {labels.get("outcome"): value
                        for _n, labels, value in lookups["samples"]}
            if outcomes.get("miss", 0) < 1:
                return _fail(f"expected >=1 cache miss, saw {outcomes}")
            executed = sum(
                value for _n, labels, value in
                families.get("repro_cells_executed_total",
                             {"samples": []})["samples"])
            if executed != 1:
                return _fail(f"expected 1 executed cell, saw {executed}")
            print("metrics-smoke: required series ok "
                  f"(routes {sorted(routes)}, lanes {sorted(lanes)})")

            # 3. The trace export covers queue wait, attempt and sim run.
            trace = client.trace()
            names = {event["name"]
                     for event in trace.get("traceEvents", [])
                     if event.get("ph") == "X"}
            for required in ("queue.wait", "attempt", "sim.run",
                             "http.request"):
                if required not in names:
                    return _fail(f"trace export missing span {required!r} "
                                 f"(saw {sorted(names)})")
            print(f"metrics-smoke: trace export ok ({sorted(names)})")

            if "--dump" in (sys.argv[1:] if len(sys.argv) > 1 else []):
                json.dump(trace, sys.stdout)

    print("metrics-smoke: PASS")
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_smoke()


if __name__ == "__main__":
    raise SystemExit(main())
