"""Wire schemas for the result-serving daemon.

A **cell query** names one experiment cell by the same coordinates the
campaign runner uses — experiment, protocol, x, seed, optional config
overrides, optional fault plan::

    {"experiment": "fig1", "protocol": "ssaf", "x": 1.0, "seed": 1,
     "config": {"n_nodes": 12, "duration_s": 3.0},
     "faults": {"name": "plan", "faults": [...]},       # optional
     "lane": "interactive"}                              # optional override

Resolution goes through :mod:`repro.experiments.registry` (the same place
the CLI finds experiments), and the cell's content address is computed with
:func:`repro.campaign.fingerprint.cell_key` over exactly the ingredients
:func:`repro.campaign.runner.run_campaign` hashes — so a key served by the
daemon is *identical* to the key the same cell gets in a campaign sweep,
and the two share one cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

__all__ = ["BadRequest", "CellQuery", "ResolvedCell", "parse_cell_query",
           "resolve_cell", "estimate_cost", "valid_key"]

_HEX = set("0123456789abcdef")

#: Wire fields a cell query may carry; anything else is a client error.
_QUERY_FIELDS = frozenset(
    {"experiment", "protocol", "x", "seed", "config", "faults", "lane"})


class BadRequest(ValueError):
    """A client error: malformed or unresolvable cell query (HTTP 400)."""


@dataclass(frozen=True)
class CellQuery:
    """One experiment cell as named on the wire."""

    experiment: str
    protocol: str
    x: float
    seed: int
    config_overrides: Mapping[str, Any] = dataclasses.field(
        default_factory=dict)
    faults: Optional[Any] = None  # FaultPlan, decoded
    lane: Optional[str] = None    # explicit lane override, if any


@dataclass(frozen=True)
class ResolvedCell:
    """A query bound to its runner, config, and content address."""

    query: CellQuery
    key: str
    run_one: Callable
    config: Any
    extra_kwargs: Mapping[str, Any]
    runner_name: str
    #: Rough work estimate (node-seconds); None when inestimable.
    cost: Optional[float]

    @property
    def label(self) -> str:
        return (f"{self.query.experiment}/{self.query.protocol}"
                f"/x={self.query.x:g}/seed={self.query.seed}")


def parse_cell_query(payload: Any) -> CellQuery:
    """Decode and validate a JSON cell query; :class:`BadRequest` on any
    shape error so the server can answer 400 instead of crashing."""
    if not isinstance(payload, Mapping):
        raise BadRequest("request body must be a JSON object")
    unknown = set(payload) - _QUERY_FIELDS
    if unknown:
        raise BadRequest(f"unknown fields: {sorted(unknown)}")
    for field in ("experiment", "protocol"):
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise BadRequest(f"{field!r} must be a non-empty string")
    try:
        x = float(payload["x"])
        seed = int(payload["seed"])
    except (KeyError, TypeError, ValueError):
        raise BadRequest("'x' (number) and 'seed' (integer) are required")
    overrides = payload.get("config", {})
    if overrides is None:
        overrides = {}
    if not isinstance(overrides, Mapping):
        raise BadRequest("'config' must be an object of field overrides")
    lane = payload.get("lane")
    if lane is not None and lane not in ("interactive", "batch"):
        raise BadRequest("'lane' must be 'interactive' or 'batch'")
    faults = payload.get("faults")
    plan = None
    if faults is not None:
        from repro.faults import FaultPlan
        try:
            plan = FaultPlan.from_dict(faults)
        except Exception as exc:  # noqa: BLE001 - any decode error is a 400
            raise BadRequest(f"invalid fault plan: {exc}") from None
    return CellQuery(experiment=payload["experiment"],
                     protocol=payload["protocol"], x=x, seed=seed,
                     config_overrides=dict(overrides), faults=plan,
                     lane=lane)


def estimate_cost(config: Any, x: float) -> Optional[float]:
    """Node-seconds of simulated work, from the config fields the built-in
    experiments share (``n_nodes`` × ``duration_s``); None when the config
    doesn't expose them.  Drives default lane selection."""
    n_nodes = getattr(config, "n_nodes", None)
    duration = getattr(config, "duration_s", None)
    if n_nodes is None or duration is None:
        return None
    try:
        return float(n_nodes) * float(duration)
    except (TypeError, ValueError):
        return None


def resolve_cell(query: CellQuery) -> ResolvedCell:
    """Bind a query to the registered experiment and compute its content
    address — byte-identical to the key the campaign runner would use."""
    from repro.campaign.fingerprint import cell_key
    from repro.experiments import registry

    definition = registry.get(query.experiment)
    if definition is None or not definition.is_campaign:
        capable = " ".join(registry.campaign_capable())
        raise BadRequest(f"unknown experiment {query.experiment!r} "
                         f"(campaign-capable: {capable})")
    spec = definition.build_spec()
    config = spec.config
    if query.config_overrides:
        try:
            config = dataclasses.replace(config, **query.config_overrides)
        except TypeError as exc:
            raise BadRequest(f"bad config override: {exc}") from None
    if query.protocol not in spec.protocols:
        raise BadRequest(f"protocol {query.protocol!r} not in "
                         f"{query.experiment!r}'s sweep "
                         f"(choose from {list(spec.protocols)})")
    # Mirror the campaign CLI's --faults join: the plan rides in
    # extra_kwargs so faulted and fault-free cells never share a key.
    extra = dict(spec.extra_kwargs)
    if query.faults is not None:
        extra["faults"] = query.faults
    key = cell_key(spec.name, query.protocol, query.x, query.seed,
                   config, extra)
    return ResolvedCell(query=query, key=key, run_one=spec.run_one,
                        config=config, extra_kwargs=extra,
                        runner_name=spec.name,
                        cost=estimate_cost(config, query.x))


def valid_key(key: str) -> bool:
    """True for a well-formed 64-hex-char content address."""
    return len(key) == 64 and set(key) <= _HEX
