"""Client for the ``repro serve`` daemon, and the ``repro query`` CLI.

:class:`ServeClient` is a small synchronous stdlib client (``http.client``)
that speaks the daemon's JSON API and follows SSE streams::

    client = ServeClient("http://127.0.0.1:8750")
    reply = client.run({"experiment": "fig1", "protocol": "ssaf",
                        "x": 1.0, "seed": 1})
    print(reply["result"]["metrics"]["delivery_ratio"])

``repro query`` wraps it for the shell::

    repro query fig1 --protocol ssaf -x 1.0 --seed 1 --set n_nodes=12
    repro query --stats
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Iterator, Mapping, Optional
from urllib.parse import urlsplit

__all__ = ["ServeClient", "ServeError", "main"]


class ServeError(RuntimeError):
    """An HTTP-level failure talking to the daemon."""

    def __init__(self, status: int, payload: Mapping | None = None):
        detail = (payload or {}).get("error", "")
        super().__init__(f"HTTP {status}: {detail}" if detail
                         else f"HTTP {status}")
        self.status = status
        self.payload = dict(payload or {})


class ServeClient:
    """One daemon endpoint; every call opens its own connection (the
    server speaks ``Connection: close``)."""

    def __init__(self, base_url: str = "http://127.0.0.1:8750",
                 timeout_s: float = 30.0, trace_id: Optional[str] = None):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8750
        self.timeout_s = timeout_s
        #: When set, every request carries ``X-Repro-Trace-Id`` and the
        #: daemon records spans for this client's queries.
        self.trace_id = trace_id

    # ------------------------------------------------------------- plumbing

    def _connection(self, timeout_s: float | None = None):
        import http.client
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s)

    def _request(self, method: str, path: str,
                 payload: Mapping | None = None) -> tuple[int, dict, dict]:
        conn = self._connection()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if self.trace_id is not None:
                headers["X-Repro-Trace-Id"] = self.trace_id
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
            return response.status, dict(response.getheaders()), decoded
        finally:
            conn.close()

    # ----------------------------------------------------------------- API

    def submit(self, query: Mapping) -> dict:
        """POST the cell query; returns the decoded reply with an extra
        ``http_status`` field (200 warm, 202 scheduled/joined).  Raises
        :class:`ServeError` on 4xx/5xx — including 429, whose exception
        carries ``retry_after_s``."""
        status, headers, payload = self._request("POST", "/v1/cells", query)
        if status not in (200, 202):
            if status == 429 and "Retry-After" in headers:
                payload.setdefault("retry_after_s",
                                   int(headers["Retry-After"]))
            raise ServeError(status, payload)
        payload["http_status"] = status
        return payload

    def status(self, key: str) -> dict:
        status, _headers, payload = self._request("GET", f"/v1/cells/{key}")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    def stats(self) -> dict:
        status, _headers, payload = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    def healthz(self) -> dict:
        status, _headers, payload = self._request("GET", "/v1/healthz")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    def trace(self, trace_id: Optional[str] = None) -> dict:
        """The Chrome-trace JSON for a trace id (defaults to this client's
        own); load it in Perfetto or ``chrome://tracing``."""
        trace_id = trace_id or self.trace_id
        if not trace_id:
            raise ValueError("no trace id: pass one or construct the "
                             "client with trace_id=")
        status, _headers, payload = self._request(
            "GET", f"/v1/traces/{trace_id}")
        if status != 200:
            raise ServeError(status, payload)
        return payload

    # ----------------------------------------------------------------- SSE

    def events(self, key: str,
               timeout_s: float | None = None) -> Iterator[tuple[str, dict]]:
        """Follow the cell's SSE stream, yielding ``(event_name, payload)``
        frames until the terminal one (inclusive)."""
        conn = self._connection(timeout_s)
        try:
            headers = ({"X-Repro-Trace-Id": self.trace_id}
                       if self.trace_id is not None else {})
            conn.request("GET", f"/v1/cells/{key}/events", headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                raise ServeError(response.status,
                                 json.loads(raw) if raw else {})
            event_name = "progress"
            data: Optional[str] = None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data = line[len("data:"):].strip()
                elif line == "" and data is not None:
                    payload = json.loads(data)
                    yield event_name, payload
                    if payload.get("terminal") or event_name == "done":
                        return
                    event_name, data = "progress", None
        finally:
            conn.close()

    def wait(self, key: str, timeout_s: float | None = None) -> dict:
        """Block until the cell settles; returns the terminal event payload
        (``status`` of ``done`` or ``failed``)."""
        last: dict = {}
        for _name, payload in self.events(key, timeout_s=timeout_s):
            last = payload
        return last

    def run(self, query: Mapping, timeout_s: float | None = None) -> dict:
        """Submit-and-wait: the one-call path.  Returns a payload with
        ``status``/``source``/``result`` whether the answer was warm,
        deduplicated, or freshly executed."""
        reply = self.submit(query)
        if reply.get("status") == "done":
            return reply
        return self.wait(reply["key"], timeout_s=timeout_s)


# --------------------------------------------------------------------- CLI


def _parse_override(text: str) -> tuple[str, Any]:
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"--set expects FIELD=VALUE, got {text!r}")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw  # bare strings don't need quoting
    return name, value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments query",
        description="Query a repro serve daemon for one experiment cell.")
    parser.add_argument("experiment", nargs="?",
                        help="registered experiment name (e.g. fig1)")
    parser.add_argument("--server", metavar="URL",
                        default="http://127.0.0.1:8750",
                        help="daemon base URL (default %(default)s)")
    parser.add_argument("--protocol", help="protocol coordinate of the cell")
    parser.add_argument("-x", "--x", type=float, dest="x",
                        help="x coordinate of the cell")
    parser.add_argument("--seed", type=int, help="seed coordinate")
    parser.add_argument("--set", metavar="FIELD=VALUE", action="append",
                        type=_parse_override, default=[], dest="overrides",
                        help="config field override (repeatable; value is "
                             "JSON, bare strings allowed)")
    parser.add_argument("--faults", metavar="PLAN.json",
                        help="inject this fault plan into the cell")
    parser.add_argument("--lane", choices=("interactive", "batch"),
                        help="force a lane instead of the cost heuristic")
    parser.add_argument("--no-follow", action="store_true",
                        help="print the submit reply and exit instead of "
                             "following SSE to the result")
    parser.add_argument("--timeout", type=float, default=600.0, metavar="SEC",
                        help="max seconds to wait for the result "
                             "(default %(default)s)")
    parser.add_argument("--stats", action="store_true",
                        help="print the daemon's /v1/stats and exit")
    parser.add_argument("--trace", action="store_true",
                        help="mint a trace id and send it with every "
                             "request so the daemon records spans")
    parser.add_argument("--trace-id", metavar="HEX",
                        help="use this trace id (8-64 hex chars) instead "
                             "of minting one (implies --trace)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="after the query settles, fetch the trace's "
                             "spans and write Chrome-trace JSON here "
                             "(implies --trace)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:]) if argv is None else list(argv))

    trace_id = None
    if args.trace or args.trace_id or args.trace_out:
        from repro.obs.spans import new_trace_id, valid_trace_id
        trace_id = args.trace_id or new_trace_id()
        if not valid_trace_id(trace_id):
            print(f"error: malformed trace id {trace_id!r} "
                  "(expect 8-64 hex chars)", file=sys.stderr)
            return 2
        print(f"trace id: {trace_id}", file=sys.stderr)

    client = ServeClient(args.server, trace_id=trace_id)

    if args.stats:
        print(json.dumps(client.stats(), sort_keys=True, indent=1))
        return 0

    missing = [name for name in ("experiment", "protocol", "x", "seed")
               if getattr(args, name) is None]
    if missing:
        print(f"missing required arguments: {' '.join(missing)} "
              "(or use --stats)", file=sys.stderr)
        return 2

    query: dict[str, Any] = {
        "experiment": args.experiment, "protocol": args.protocol,
        "x": args.x, "seed": args.seed,
    }
    if args.overrides:
        query["config"] = dict(args.overrides)
    if args.lane:
        query["lane"] = args.lane
    if args.faults:
        from repro.faults import FaultPlan
        query["faults"] = FaultPlan.load(args.faults).to_dict()

    try:
        if args.no_follow:
            reply = client.submit(query)
        else:
            started = time.monotonic()
            reply = client.run(query, timeout_s=args.timeout)
            reply.setdefault("client_wall_s",
                             round(time.monotonic() - started, 3))
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.status == 429:
            print(f"retry after {exc.payload.get('retry_after_s', '?')}s",
                  file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"error: cannot reach {args.server}: {exc}", file=sys.stderr)
        return 1

    print(json.dumps(reply, sort_keys=True, indent=1))

    if args.trace_out:
        try:
            trace = client.trace()
        except ServeError as exc:
            print(f"trace export failed: {exc}", file=sys.stderr)
        else:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                json.dump(trace, fh)
            print(f"wrote {len(trace.get('traceEvents', []))} trace events "
                  f"to {args.trace_out}", file=sys.stderr)
    return 0 if reply.get("status") != "failed" else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
