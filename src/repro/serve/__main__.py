"""``python -m repro.serve`` starts the daemon (same as ``repro serve``)."""

from repro.serve.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
