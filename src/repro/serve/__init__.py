"""Campaign-as-a-service: the ``repro serve`` daemon and its client.

The campaign subsystem's content-addressed cache, fault-tolerant executor,
and observability snapshots, put behind a long-lived asyncio HTTP/JSON
service: warm keys answer instantly, cold keys execute exactly once no
matter how many clients ask (single-flight dedup), progress streams over
server-sent events, and a bounded two-lane admission queue keeps sweep
traffic from starving interactive queries.

Entry points:

* :class:`~repro.serve.server.ReproServer` / ``repro serve`` — the daemon;
* :class:`~repro.serve.client.ServeClient` / ``repro query`` — the client;
* :class:`~repro.serve.server.ServerThread` — embed a daemon in-process
  (tests, notebooks, the smoke gate).

See ``docs/SERVING.md`` for the wire API.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import AdmissionFull, LaneScheduler
from repro.serve.schemas import (
    BadRequest,
    CellQuery,
    ResolvedCell,
    parse_cell_query,
    resolve_cell,
)
from repro.serve.server import ReproServer, ServeConfig, ServerThread
from repro.serve.singleflight import Flight, FlightRegistry

__all__ = [
    "AdmissionFull",
    "BadRequest",
    "CellQuery",
    "Flight",
    "FlightRegistry",
    "LaneScheduler",
    "ReproServer",
    "ResolvedCell",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "parse_cell_query",
    "resolve_cell",
]
