"""Server-sent events encoding (the ``text/event-stream`` wire format).

One event per settled state transition::

    event: progress
    id: 3
    data: {"key": "ab12...", "status": "running", ...}

The ``data`` payload is a single JSON object per event (no multi-line
data), terminal events use the ``done`` event name, and a comment line
(``: keepalive``) can be interleaved to defeat idle-connection timeouts.
"""

from __future__ import annotations

import json

__all__ = ["encode_event", "encode_comment", "SSE_HEADERS"]

#: Response headers an SSE endpoint must send.
SSE_HEADERS = (
    ("Content-Type", "text/event-stream; charset=utf-8"),
    ("Cache-Control", "no-cache"),
    ("Connection", "close"),
    ("X-Accel-Buffering", "no"),
)


def encode_event(payload: dict, *, event: str = "progress",
                 event_id: int | None = None) -> bytes:
    """One SSE frame: ``event``/``id`` headers plus a single data line."""
    lines = [f"event: {event}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append("data: " + json.dumps(payload, sort_keys=True,
                                       separators=(",", ":")))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def encode_comment(text: str = "keepalive") -> bytes:
    """A comment frame; clients ignore it, proxies keep the pipe open."""
    return f": {text}\n\n".encode("utf-8")
