"""Two-lane admission control and execution for the serving daemon.

Two lanes, each a bounded :class:`asyncio.Queue` drained by its own worker
tasks:

* **interactive** — small cells (estimated cost under the configured
  threshold); sized for latency.
* **batch** — sweep-sized cells; sized for throughput.  A full batch lane
  can never starve interactive requests, because admission and workers are
  per-lane.

A full lane refuses admission with :class:`AdmissionFull`, which the server
maps to HTTP 429 plus a ``Retry-After`` estimated from the lane's queue
depth and its observed per-cell wall time.

Cells execute through the campaign subsystem's
:class:`~repro.campaign.executor.FaultTolerantExecutor` (serial mode, in a
worker thread via :func:`asyncio.to_thread`), so the daemon inherits the
same retry/quarantine semantics campaigns have, and every fresh result is
published to the shared :class:`~repro.campaign.cache.ResultCache` under
its campaign-identical key.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.campaign.cache import summary_to_dict
from repro.campaign.executor import Cell, ExecutorConfig, FaultTolerantExecutor
from repro.obs.logging import get_logger
from repro.obs.spans import Span, SpanSink
from repro.serve.singleflight import Flight, FlightRegistry

__all__ = ["AdmissionFull", "Lane", "LaneScheduler"]

#: Fallback per-cell wall-time guess before a lane has finished anything.
_DEFAULT_WALL_S = 5.0


class AdmissionFull(Exception):
    """Lane queue at capacity; carries the Retry-After estimate."""

    def __init__(self, lane: str, retry_after_s: int):
        super().__init__(f"{lane} lane full; retry after {retry_after_s}s")
        self.lane = lane
        self.retry_after_s = retry_after_s


class _CellRunner:
    """Per-attempt wrapper around ``run_one`` for one flight.

    * ``observe`` attaches a fresh obs bundle per attempt (mirrors the
      campaign runner's observed mode) and returns ``(summary, snapshot)``
      instead of the bare summary;
    * when the flight carries a trace id, each call records an ``attempt``
      span (executor category, covering obs setup + snapshot) with a nested
      ``sim.run`` span around the simulation itself.  Without a trace id
      this costs two ``None`` checks per attempt.
    """

    def __init__(self, run_one, *, observe: bool, flight: Flight,
                 sink: Optional[SpanSink], parent_id: Optional[str] = None):
        self.run_one = run_one
        self.observe = observe
        self.flight = flight
        self.sink = sink if flight.trace_id is not None else None
        self.parent_id = parent_id
        self.attempts = 0

    def __call__(self, protocol, x, seed, config, **extra):
        self.attempts += 1
        attempt_span = sim_span = None
        if self.sink is not None:
            attempt_span = Span(
                "attempt", trace_id=self.flight.trace_id,
                parent_id=self.parent_id, category="executor",
                attrs={"attempt": self.attempts, "key": self.flight.key})
        obs = None
        if self.observe:
            from repro.obs.observe import Observability
            obs = Observability()
            extra = {**extra, "obs": obs}
        if attempt_span is not None:
            sim_span = Span("sim.run", trace_id=self.flight.trace_id,
                            parent_id=attempt_span.span_id, category="sim",
                            attrs={"protocol": str(protocol), "x": float(x),
                                   "seed": int(seed)})
        try:
            summary = self.run_one(protocol, x, seed, config, **extra)
        except BaseException as exc:
            if sim_span is not None:
                sim_span.finish(self.sink, error=repr(exc))
                attempt_span.finish(self.sink, ok=False)
            raise
        if sim_span is not None:
            sim_span.finish(self.sink)
            attempt_span.finish(self.sink, ok=True)
        return (summary, obs.snapshot()) if self.observe else summary


class Lane:
    """One admission queue plus its drain workers' bookkeeping."""

    def __init__(self, name: str, queue_limit: int, workers: int):
        self.name = name
        self.queue: asyncio.Queue[Flight] = asyncio.Queue(maxsize=queue_limit)
        self.workers = max(1, workers)
        self.executed = 0
        self.failed = 0
        self._wall_ema: Optional[float] = None

    def note_wall(self, wall_s: float) -> None:
        ema = self._wall_ema
        self._wall_ema = wall_s if ema is None else 0.7 * ema + 0.3 * wall_s

    @property
    def avg_wall_s(self) -> float:
        return self._wall_ema if self._wall_ema is not None else _DEFAULT_WALL_S

    def retry_after_s(self) -> int:
        """Seconds until a slot plausibly frees: queue drain time at the
        observed rate, clamped to something a client can actually honour."""
        estimate = (self.queue.qsize() + 1) * self.avg_wall_s / self.workers
        return int(min(600, max(1, math.ceil(estimate))))

    def stats(self) -> dict:
        return {
            "depth": self.queue.qsize(),
            "limit": self.queue.maxsize,
            "workers": self.workers,
            "executed": self.executed,
            "failed": self.failed,
            "avg_wall_s": round(self.avg_wall_s, 3),
        }


class LaneScheduler:
    """Admits flights into lanes and runs them to settlement."""

    def __init__(self, *, cache: ResultCache, registry: FlightRegistry,
                 interactive_workers: int = 1, batch_workers: int = 1,
                 queue_limit: int = 64, batch_queue_limit: int | None = None,
                 max_retries: int = 1, backoff_s: float = 0.05,
                 observe: bool = True, sink: SpanSink | None = None):
        self.cache = cache
        self.registry = registry
        self.observe = observe
        self.sink = sink
        self.log = get_logger("serve.scheduler")
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.lanes = {
            "interactive": Lane("interactive", queue_limit,
                                interactive_workers),
            "batch": Lane("batch",
                          queue_limit if batch_queue_limit is None
                          else batch_queue_limit,
                          batch_workers),
        }
        self._tasks: list[asyncio.Task] = []
        self.rejected = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        for lane in self.lanes.values():
            for i in range(lane.workers):
                self._tasks.append(asyncio.create_task(
                    self._worker(lane), name=f"serve-{lane.name}-{i}"))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # ------------------------------------------------------------ admission

    def admit(self, flight: Flight) -> None:
        """Enqueue or raise :class:`AdmissionFull`; publishes the ``queued``
        event (with queue position) on success."""
        lane = self.lanes[flight.lane]
        try:
            lane.queue.put_nowait(flight)
        except asyncio.QueueFull:
            self.rejected += 1
            raise AdmissionFull(lane.name, lane.retry_after_s()) from None
        flight.queued_at_s = time.time()
        event = {
            "key": flight.key, "status": "queued", "lane": lane.name,
            "position": lane.queue.qsize(), "ts": flight.queued_at_s,
        }
        if flight.trace_id is not None:
            event["trace_id"] = flight.trace_id
        flight.publish(event)

    # ------------------------------------------------------------ execution

    async def _worker(self, lane: Lane) -> None:
        while True:
            flight = await lane.queue.get()
            try:
                await self._execute(lane, flight)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - a worker must survive
                flight.publish({
                    "key": flight.key, "status": "failed", "lane": lane.name,
                    "error": f"internal: {exc!r}", "terminal": True,
                    "ts": time.time(),
                })
                lane.failed += 1
                self.registry.retire(flight)
            finally:
                lane.queue.task_done()

    def _trace_event(self, flight: Flight, event: dict) -> dict:
        if flight.trace_id is not None:
            event["trace_id"] = flight.trace_id
        return event

    async def _execute(self, lane: Lane, flight: Flight) -> None:
        tracing = flight.trace_id is not None and self.sink is not None
        now = time.time()
        if tracing and flight.queued_at_s is not None:
            Span("queue.wait", trace_id=flight.trace_id, category="serve",
                 start_s=flight.queued_at_s,
                 attrs={"lane": lane.name, "key": flight.key}
                 ).finish(self.sink, end_s=now)
        flight.publish(self._trace_event(flight, {
            "key": flight.key, "status": "running", "lane": lane.name,
            "cell": flight.resolved.label, "ts": now,
        }))
        self.log.info("cell_running", trace_id=flight.trace_id,
                      key=flight.key, lane=lane.name,
                      cell=flight.resolved.label)
        execute_span = (Span("execute", trace_id=flight.trace_id,
                             category="executor",
                             attrs={"lane": lane.name, "key": flight.key})
                        if tracing else None)
        outcome = await asyncio.to_thread(self._run_cell_sync, flight,
                                          execute_span)
        if execute_span is not None:
            execute_span.finish(self.sink, ok="summary" in outcome,
                                attempts=outcome.get("attempts"))
        if "summary" in outcome:
            lane.executed += 1
            lane.note_wall(outcome["wall_s"])
            flight.result_wire = summary_to_dict(outcome["summary"])
            flight.publish(self._trace_event(flight, {
                "key": flight.key, "status": "done", "source": "run",
                "lane": lane.name, "terminal": True, "ts": time.time(),
                "telemetry": {"wall_s": outcome["wall_s"],
                              "attempts": outcome["attempts"]},
                "obs": outcome.get("obs"),
                "result": flight.result_wire,
            }))
            self.log.info("cell_done", trace_id=flight.trace_id,
                          key=flight.key, lane=lane.name,
                          wall_s=round(outcome["wall_s"], 3),
                          attempts=outcome["attempts"])
        else:
            lane.failed += 1
            flight.error = outcome["error"]
            flight.publish(self._trace_event(flight, {
                "key": flight.key, "status": "failed", "lane": lane.name,
                "error": outcome["error"], "attempts": outcome["attempts"],
                "terminal": True, "ts": time.time(),
            }))
            self.log.error("cell_quarantined", trace_id=flight.trace_id,
                           key=flight.key, lane=lane.name,
                           attempts=outcome["attempts"],
                           error=outcome["error"])
        self.registry.retire(flight)

    def _run_cell_sync(self, flight: Flight,
                       execute_span: Span | None = None) -> dict:
        """Worker-thread body: run the cell under the fault-tolerant
        executor (serial mode → same thread), publish to the cache."""
        resolved = flight.resolved
        runner = _CellRunner(
            resolved.run_one, observe=self.observe, flight=flight,
            sink=self.sink,
            parent_id=execute_span.span_id if execute_span else None)
        outcome: dict = {}

        def on_success(cell, summary, attempts, wall_s):
            obs_snapshot = None
            if isinstance(summary, tuple):  # observed runner's (summary, snap)
                summary, obs_snapshot = summary
            outcome.update(summary=summary, attempts=attempts,
                           wall_s=wall_s, obs=obs_snapshot)

        def on_quarantine(failure):
            outcome.update(error=failure.error, attempts=failure.attempts)

        def on_retry(cell, attempts, error):
            self.log.warning("cell_retry", trace_id=flight.trace_id,
                             key=flight.key, attempt=attempts, error=error)

        executor = FaultTolerantExecutor(
            runner, resolved.config, extra_kwargs=resolved.extra_kwargs,
            executor_config=ExecutorConfig(
                max_workers=1, max_retries=self.max_retries,
                backoff_s=self.backoff_s),
            on_retry=on_retry,
        )
        query = resolved.query
        executor.run([Cell(key=resolved.key, protocol=query.protocol,
                           x=query.x, seed=query.seed)],
                     on_success, on_quarantine)
        if "summary" in outcome:
            self.cache.put(resolved.key, outcome["summary"],
                           meta={"runner": resolved.runner_name,
                                 "protocol": query.protocol,
                                 "x": float(query.x), "seed": int(query.seed),
                                 "source": "serve"})
        return outcome

    # -------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "rejected": self.rejected,
            "lanes": {name: lane.stats() for name, lane in self.lanes.items()},
            "executed": sum(l.executed for l in self.lanes.values()),
            "failed": sum(l.failed for l in self.lanes.values()),
        }
