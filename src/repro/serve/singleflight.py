"""Single-flight deduplication: N identical requests, one execution.

A :class:`Flight` is one in-progress (or recently settled) cell execution.
The first request for a cold key creates it; every later request for the
same key *joins* it instead of scheduling a second execution.  Progress is
published as a replayable event history — a subscriber who arrives late
first receives everything that already happened, then live events, so an
SSE client can attach at any point in the flight's life and still see the
full ``queued → running → done`` sequence.

All methods run on the event loop thread; the scheduler's worker threads
hand results back through coroutines, never directly.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Optional

from repro.serve.schemas import ResolvedCell

__all__ = ["Flight", "FlightRegistry"]

#: Terminal flights kept around for status/SSE replay (successes also live
#: in the result cache; this bounds memory for failures and stragglers).
_RETIRED_LIMIT = 512


class Flight:
    """One cell execution and its audience."""

    def __init__(self, resolved: ResolvedCell, lane: str,
                 trace_id: Optional[str] = None):
        self.resolved = resolved
        self.key = resolved.key
        self.lane = lane
        #: Trace id of the request that *created* the flight (joiners keep
        #: their own ids in their responses; the execution spans belong to
        #: the creator's trace).
        self.trace_id = trace_id
        #: Stamped by the scheduler at admission; anchors the queue-wait span.
        self.queued_at_s: Optional[float] = None
        self.state = "queued"            # queued | running | done | failed
        self.joiners = 0                 # dedup'd requests beyond the first
        self.result_wire: Optional[dict] = None  # wire-form result when done
        self.error: Optional[str] = None
        self.history: list[dict] = []    # every event published so far
        self._subscribers: list[asyncio.Queue] = []
        self._settled = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    # ------------------------------------------------------------- publish

    def publish(self, event: dict) -> None:
        """Record ``event`` and fan it out to every live subscriber."""
        self.history.append(event)
        state = event.get("status")
        if state in ("queued", "running", "done", "failed"):
            self.state = state
        for queue in list(self._subscribers):
            queue.put_nowait(event)
        if self.terminal:
            self._settled.set()

    # ----------------------------------------------------------- subscribe

    def subscribe(self) -> tuple[list[dict], asyncio.Queue]:
        """Replay of history so far plus a queue for what comes next."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return list(self.history), queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    async def wait_settled(self) -> None:
        await self._settled.wait()


class FlightRegistry:
    """Key → flight, with single-flight create-or-join semantics."""

    def __init__(self, retired_limit: int = _RETIRED_LIMIT):
        self._active: dict[str, Flight] = {}
        self._retired: OrderedDict[str, Flight] = OrderedDict()
        self._retired_limit = retired_limit
        self.dedup_joined = 0
        self.flights_created = 0

    def get(self, key: str) -> Optional[Flight]:
        flight = self._active.get(key)
        return flight if flight is not None else self._retired.get(key)

    def join_or_create(self, resolved: ResolvedCell, lane: str,
                       trace_id: Optional[str] = None) -> tuple[Flight, bool]:
        """The flight for this key — joining the in-flight one when it
        exists.  Returns ``(flight, created)``."""
        flight = self._active.get(resolved.key)
        if flight is not None:
            flight.joiners += 1
            self.dedup_joined += 1
            return flight, False
        flight = Flight(resolved, lane, trace_id=trace_id)
        self._active[resolved.key] = flight
        self.flights_created += 1
        return flight, True

    def retire(self, flight: Flight) -> None:
        """Move a settled flight out of the active set (keeping a bounded
        tail for late status/SSE readers) — or drop an admission-rejected
        one entirely."""
        self._active.pop(flight.key, None)
        if flight.terminal:
            self._retired[flight.key] = flight
            self._retired.move_to_end(flight.key)
            while len(self._retired) > self._retired_limit:
                self._retired.popitem(last=False)

    def discard(self, flight: Flight) -> None:
        """Forget a flight that never entered the queue (429 path)."""
        self._active.pop(flight.key, None)

    @property
    def inflight(self) -> int:
        return len(self._active)
