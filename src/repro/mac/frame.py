"""MAC-layer frames.

A frame is what the radio actually carries: a network packet plus MAC
addressing (``dst is None`` means link-layer broadcast) and a size that
determines airtime.  MAC-level acknowledgements (used only by unicast
transmission, i.e. by the AODV baseline) are frames with ``payload=None``.

Frames are immutable and shared by every receiver of a transmission; network
protocols copy the payload packet before mutating it on forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

__all__ = ["Frame", "MAC_ACK_SIZE", "MAC_HEADER_SIZE", "MAC_RTS_SIZE", "MAC_CTS_SIZE"]

#: Bytes of MAC header added to every payload-bearing frame.
MAC_HEADER_SIZE = 24
#: Size of a MAC-level acknowledgement frame.
MAC_ACK_SIZE = 14
#: Sizes of the virtual-carrier-sense control frames.
MAC_RTS_SIZE = 20
MAC_CTS_SIZE = 14


@dataclass(frozen=True)
class Frame:
    src: int
    dst: Optional[int]  # None = broadcast
    seq: int
    payload: "Packet | None"
    size_bytes: int
    #: MAC control subtype: None (payload data), "ack", "rts" or "cts".
    subtype: Optional[str] = None
    #: Network-allocation-vector reservation announced by this frame: how
    #: long (seconds, from its end) third parties must treat the medium as
    #: busy.  Nonzero only on RTS/CTS.
    nav_s: float = 0.0

    @property
    def is_broadcast(self) -> bool:
        return self.dst is None

    @property
    def is_ack(self) -> bool:
        return self.subtype == "ack"

    @property
    def is_control(self) -> bool:
        return self.subtype is not None

    @property
    def kind(self) -> str:
        """Bucket label for transmission accounting."""
        if self.subtype is not None:
            return f"mac_{self.subtype}"
        return self.payload.kind.value if self.payload is not None else "raw"

    def __str__(self) -> str:
        dst = "*" if self.dst is None else self.dst
        tag = self.subtype.upper() if self.subtype else self.kind
        return f"Frame({self.src}->{dst} #{self.seq} {tag})"
