"""Medium access control: CSMA/CA, frames, transmit queues."""

from repro.mac.csma import CsmaMac, MacConfig, MacRxInfo
from repro.mac.frame import MAC_ACK_SIZE, MAC_HEADER_SIZE, Frame
from repro.mac.queue import FifoTxQueue, PriorityTxQueue, TxJob

__all__ = [
    "CsmaMac",
    "FifoTxQueue",
    "Frame",
    "MAC_ACK_SIZE",
    "MAC_HEADER_SIZE",
    "MacConfig",
    "MacRxInfo",
    "PriorityTxQueue",
    "TxJob",
]
