"""Transmit queues between the network layer and the MAC.

The paper attributes part of SSAF's delay advantage under load to a
*priority* queue here: packets whose election backoff was short (i.e. packets
this node is well placed to forward) overtake queued packets with long
backoffs, "so the prioritization takes effect not only among packets in
different nodes, but also among packets in the same node."  Counter-1
flooding's random backoffs gain nothing from the same queue — which is why
both disciplines are provided and the ablation bench swaps them.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TxJob", "FifoTxQueue", "PriorityTxQueue"]


@dataclass
class TxJob:
    """One pending transmission request from the network layer."""

    packet: Any
    dst: Optional[int]  # None = broadcast
    size_bytes: int
    priority: float = 0.0
    enqueued_at: float = 0.0
    retries: int = 0
    #: Set by the network layer to withdraw a queued job (election lost
    #: while the packet waited for the medium); skipped at pop time.
    cancelled: bool = False


class FifoTxQueue:
    """Drop-tail FIFO queue."""

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: deque[TxJob] = deque()
        self.dropped = 0

    def push(self, job: TxJob) -> bool:
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(job)
        return True

    def pop(self) -> TxJob | None:
        while self._items:
            job = self._items.popleft()
            if not job.cancelled:
                return job
        return None

    def cancel(self, packet: Any) -> bool:
        """Withdraw the queued job carrying ``packet`` (identity match)."""
        for job in self._items:
            if job.packet is packet and not job.cancelled:
                job.cancelled = True
                return True
        return False

    def __len__(self) -> int:
        return sum(1 for job in self._items if not job.cancelled)

    def __bool__(self) -> bool:
        return any(not job.cancelled for job in self._items)


class PriorityTxQueue:
    """Drop-tail priority queue; lower ``priority`` values leave first.

    Ties break in insertion order so the queue degrades to FIFO when every
    packet carries the same priority.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[tuple[float, int, TxJob]] = []
        self._counter = itertools.count()
        self.dropped = 0

    def push(self, job: TxJob) -> bool:
        if len(self._heap) >= self.capacity:
            self.dropped += 1
            return False
        heapq.heappush(self._heap, (job.priority, next(self._counter), job))
        return True

    def pop(self) -> TxJob | None:
        while self._heap:
            job = heapq.heappop(self._heap)[2]
            if not job.cancelled:
                return job
        return None

    def cancel(self, packet: Any) -> bool:
        """Withdraw the queued job carrying ``packet`` (identity match)."""
        for _, _, job in self._heap:
            if job.packet is packet and not job.cancelled:
                job.cancelled = True
                return True
        return False

    def __len__(self) -> int:
        return sum(1 for _, _, job in self._heap if not job.cancelled)

    def __bool__(self) -> bool:
        return any(not job.cancelled for _, _, job in self._heap)
