"""Transmit queues between the network layer and the MAC.

The paper attributes part of SSAF's delay advantage under load to a
*priority* queue here: packets whose election backoff was short (i.e. packets
this node is well placed to forward) overtake queued packets with long
backoffs, "so the prioritization takes effect not only among packets in
different nodes, but also among packets in the same node."  Counter-1
flooding's random backoffs gain nothing from the same queue — which is why
both disciplines are provided and the ablation bench swaps them.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.ledger import DropReason

__all__ = ["TxJob", "FifoTxQueue", "PriorityTxQueue"]


class _DropAccounting:
    """Per-reason drop tallies shared by both queue disciplines.

    ``dropped`` (the historical aggregate counter) is now a property over
    the typed breakdown, so the MAC and the net layers account drops in
    the same :class:`~repro.obs.ledger.DropReason` taxonomy.
    """

    def __init__(self) -> None:
        self.drops_by_reason: dict[DropReason, int] = {}

    def _count_drop(self, reason: DropReason) -> None:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    @property
    def dropped(self) -> int:
        """Total drops, every reason combined (back-compat aggregate)."""
        return sum(self.drops_by_reason.values())

    @property
    def dropped_overflow(self) -> int:
        return self.drops_by_reason.get(DropReason.QUEUE_OVERFLOW, 0)

    @property
    def dropped_other(self) -> int:
        return self.dropped - self.dropped_overflow


@dataclass
class TxJob:
    """One pending transmission request from the network layer."""

    packet: Any
    dst: Optional[int]  # None = broadcast
    size_bytes: int
    priority: float = 0.0
    enqueued_at: float = 0.0
    retries: int = 0
    #: Set by the network layer to withdraw a queued job (election lost
    #: while the packet waited for the medium); skipped at pop time.
    cancelled: bool = False


class FifoTxQueue(_DropAccounting):
    """Drop-tail FIFO queue."""

    def __init__(self, capacity: int = 64):
        super().__init__()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: deque[TxJob] = deque()

    def push(self, job: TxJob) -> bool:
        if len(self._items) >= self.capacity:
            self._count_drop(DropReason.QUEUE_OVERFLOW)
            return False
        self._items.append(job)
        return True

    def pop(self) -> TxJob | None:
        while self._items:
            job = self._items.popleft()
            if not job.cancelled:
                return job
        return None

    def purge(self, reason: DropReason) -> list[TxJob]:
        """Drain every live job, counting each as a drop of ``reason``
        (e.g. the node's radio died with packets still queued)."""
        purged = []
        while True:
            job = self.pop()
            if job is None:
                return purged
            self._count_drop(reason)
            purged.append(job)

    def cancel(self, packet: Any) -> bool:
        """Withdraw the queued job carrying ``packet`` (identity match)."""
        for job in self._items:
            if job.packet is packet and not job.cancelled:
                job.cancelled = True
                return True
        return False

    def __len__(self) -> int:
        return sum(1 for job in self._items if not job.cancelled)

    def __bool__(self) -> bool:
        return any(not job.cancelled for job in self._items)


class PriorityTxQueue(_DropAccounting):
    """Drop-tail priority queue; lower ``priority`` values leave first.

    Ties break in insertion order so the queue degrades to FIFO when every
    packet carries the same priority.
    """

    def __init__(self, capacity: int = 64):
        super().__init__()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[tuple[float, int, TxJob]] = []
        self._counter = itertools.count()

    def push(self, job: TxJob) -> bool:
        if len(self._heap) >= self.capacity:
            self._count_drop(DropReason.QUEUE_OVERFLOW)
            return False
        heapq.heappush(self._heap, (job.priority, next(self._counter), job))
        return True

    def pop(self) -> TxJob | None:
        while self._heap:
            job = heapq.heappop(self._heap)[2]
            if not job.cancelled:
                return job
        return None

    def purge(self, reason: DropReason) -> list[TxJob]:
        """Drain every live job, counting each as a drop of ``reason``."""
        purged = []
        while True:
            job = self.pop()
            if job is None:
                return purged
            self._count_drop(reason)
            purged.append(job)

    def cancel(self, packet: Any) -> bool:
        """Withdraw the queued job carrying ``packet`` (identity match)."""
        for _, _, job in self._heap:
            if job.packet is packet and not job.cancelled:
                job.cancelled = True
                return True
        return False

    def __len__(self) -> int:
        return sum(1 for _, _, job in self._heap if not job.cancelled)

    def __bool__(self) -> bool:
        return any(not job.cancelled for _, _, job in self._heap)
