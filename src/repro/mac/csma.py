"""CSMA/CA medium access.

A deliberately classic pre-802.11e CSMA/CA: sense before transmitting, defer
while the medium is busy, and precede every transmission with
``DIFS + U(0,1) · CW`` of random backoff (the collision-avoidance backoff the
paper contrasts with its *prioritized* network-layer backoff).  Service
modes:

* **Broadcast** (``dst=None``) — one transmission, no acknowledgement.  All
  of the paper's election-based protocols live entirely on broadcast.
* **Unicast** — transmission, then a MAC-level ACK within a timeout;
  retransmit with a doubled contention window up to ``retry_limit``, then
  report the failure upward.  AODV, DSR and DSDV ride on this mode and use
  the failure report as their link-breakage detector.
* **RTS/CTS** (optional) — unicasts whose payload meets ``rts_threshold``
  reserve the medium first: RTS → CTS → data → ACK, with both control
  frames carrying a network-allocation vector (NAV) that silences third
  parties — including *hidden* ones that can hear the receiver but not the
  sender — for the duration of the exchange.

The queue feeding the MAC is pluggable (FIFO or priority — see
:mod:`repro.mac.queue`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mac.frame import (
    MAC_ACK_SIZE,
    MAC_CTS_SIZE,
    MAC_HEADER_SIZE,
    MAC_RTS_SIZE,
    Frame,
)
from repro.mac.queue import FifoTxQueue, PriorityTxQueue, TxJob
from repro.obs.ledger import DropReason
from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.phy.radio import RxInfo, Transceiver

__all__ = ["MacConfig", "MacRxInfo", "CsmaMac"]


@dataclass(frozen=True)
class MacConfig:
    """Timing follows classic 2 Mb/s 802.11 DSSS (the era's standard radio):
    20 µs slots, 50 µs DIFS, 10 µs SIFS, CW starting at 32 slots.  The short
    MAC settle time matters beyond realism — election suppression can only
    happen after the winner's frame hits the air, so MAC access latency
    bounds how well *any* backoff prioritization can discriminate."""

    bitrate_bps: float = 2e6
    preamble_s: float = 192e-6
    slot_s: float = 20e-6
    difs_s: float = 50e-6
    sifs_s: float = 10e-6
    cw_min_slots: int = 32
    cw_max_slots: int = 1024
    retry_limit: int = 5
    ack_timeout_s: float = 1.5e-3
    queue_capacity: int = 64
    priority_queue: bool = False
    promiscuous: bool = False
    #: Reserve the medium with RTS/CTS for unicast payloads of at least this
    #: many bytes.  ``None`` disables virtual carrier sensing entirely.
    rts_threshold_bytes: int | None = None
    cts_timeout_s: float = 1.0e-3

    def airtime_s(self, size_bytes: int) -> float:
        return self.preamble_s + size_bytes * 8.0 / self.bitrate_bps

    def cw_slots(self, retries: int) -> int:
        return min(self.cw_min_slots << retries, self.cw_max_slots)


@dataclass(frozen=True)
class MacRxInfo:
    """Reception metadata handed to the network layer with each packet."""

    src: int
    power_dbm: float
    time: float
    overheard: bool = False


class CsmaMac(Component):
    """One node's MAC entity, wired to its :class:`Transceiver`."""

    def __init__(self, ctx: SimContext, node_id: int, radio: "Transceiver",
                 config: MacConfig | None = None):
        super().__init__(ctx, f"mac[{node_id}]")
        self.node_id = node_id
        self.radio = radio
        self.config = config if config is not None else MacConfig()

        queue_cls = PriorityTxQueue if self.config.priority_queue else FifoTxQueue
        self.queue = queue_cls(self.config.queue_capacity)

        #: Local-oscillator rate factor for node-local timers (contention
        #: backoffs): 1.02 = a 2 % slow clock.  Driven by the clock-skew
        #: fault (see :mod:`repro.faults`); the default 1.0 is bit-exact
        #: (IEEE-754 multiplication by 1.0 is the identity), so unfaulted
        #: runs are unchanged to the last bit.
        self.time_scale = 1.0

        #: Delivers ``(packet, MacRxInfo)`` for every received network packet.
        self.to_net = self.outport("to_net")
        #: Delivers ``(packet, dst)`` when a unicast exhausts its retries.
        self.send_failed = self.outport("send_failed")
        #: Delivers ``(packet, dst)`` when a frame has been put on the air
        #: (broadcast) or acknowledged (unicast).  Optional to connect.
        self.sent = self.outport("sent")

        radio.to_mac.connect(self._on_frame)
        radio.carrier.connect(self._on_carrier)
        radio.tx_done.connect(self._on_tx_done)

        self._rng = self.rng("backoff")
        self._seq = 0
        self._current: TxJob | None = None
        self._current_seq: int | None = None
        self._backoff_handle = None
        self._ack_handle = None
        self._cts_handle = None
        self._waiting_for_idle = False
        self._tx_is_ctrl = False   # the frame on the air is an ACK/CTS
        self._tx_is_rts = False    # the frame on the air is our RTS
        self._tx_in_flight = False
        self._nav_until = 0.0
        self._nav_wakeup = None

        # counters for tests and ablations
        self.tx_attempts = 0
        self.ack_timeouts = 0
        self.cts_timeouts = 0
        self.rts_sent = 0
        self.nav_deferrals = 0
        self.delivered_up = 0

    # ------------------------------------------------------------- interface

    def send(self, packet: "Packet", dst: Optional[int] = None,
             priority: float = 0.0) -> bool:
        """Queue a packet.  ``dst=None`` broadcasts; returns False on drop."""
        job = TxJob(
            packet=packet,
            dst=dst,
            size_bytes=packet.size_bytes + MAC_HEADER_SIZE,
            priority=priority,
            enqueued_at=self.now,
        )
        accepted = self.queue.push(job)
        if not accepted:
            if self.ctx.tracing:
                self.trace("mac.drop_queue_full", packet=str(packet))
            if self.ctx.observing:
                self.ctx.obs.on_drop(self.now, self.node_id, "mac",
                                     DropReason.QUEUE_OVERFLOW, packet.uid)
            return False
        if self.ctx.observing:
            self.ctx.obs.on_enqueue(self.now, self.node_id, packet.uid,
                                    len(self.queue))
        self._kick()
        return True

    def cancel_send(self, packet: "Packet") -> bool:
        """Withdraw ``packet`` (identity match) if it has not hit the air yet.

        Election-based protocols use this when a node loses the election
        *after* its relay left the network layer: the packet may still be
        sitting in the transmit queue or counting down its CSMA backoff, and
        transmitting it then would be pure redundancy.  Returns True if a
        transmission was prevented.
        """
        if (
            self._current is not None
            and self._current.packet is packet
            and not self._tx_in_flight
            and self._ack_handle is None
            and self._cts_handle is None
        ):
            if self._backoff_handle is not None:
                self._backoff_handle.cancel()
                self._backoff_handle = None
            self._waiting_for_idle = False
            self._current = None
            self._current_seq = None
            if self.ctx.tracing:
                self.trace("mac.cancelled", packet=str(packet))
            self._kick()
            return True
        if self.queue.cancel(packet):
            if self.ctx.tracing:
                self.trace("mac.cancelled_queued", packet=str(packet))
            return True
        return False

    @property
    def busy(self) -> bool:
        return self._current is not None or bool(self.queue)

    # ------------------------------------------------------------------ NAV

    @property
    def nav_busy(self) -> bool:
        return self.now < self._nav_until

    def _set_nav(self, until: float) -> None:
        if until <= self._nav_until:
            return
        self._nav_until = until
        if self._nav_wakeup is not None:
            self._nav_wakeup.cancel()
        self._nav_wakeup = self.schedule(until - self.now, self._nav_expired)

    def _nav_expired(self) -> None:
        self._nav_wakeup = None
        if (
            self._current is not None
            and self._waiting_for_idle
            and self._ack_handle is None
            and self._cts_handle is None
            and not self._tx_in_flight
            and not self.radio.carrier_busy()
        ):
            self._start_access()

    def _medium_busy(self) -> bool:
        return self.radio.carrier_busy() or self.nav_busy

    # --------------------------------------------------------- job servicing

    def _kick(self) -> None:
        if self._current is not None:
            return
        job = self.queue.pop()
        if job is None:
            return
        self._current = job
        self._current_seq = self._seq
        self._seq += 1
        self._start_access()

    def _uses_rts(self, job: TxJob) -> bool:
        threshold = self.config.rts_threshold_bytes
        return (threshold is not None and job.dst is not None
                and job.size_bytes >= threshold)

    def _start_access(self) -> None:
        if not self.radio.is_on:
            self._fail_current(silent=True)
            return
        if self._medium_busy():
            self._waiting_for_idle = True
            if self.nav_busy:
                self.nav_deferrals += 1
            return
        self._waiting_for_idle = False
        cfg = self.config
        assert self._current is not None
        cw = cfg.cw_slots(self._current.retries)
        backoff = (cfg.difs_s
                   + float(self._rng.uniform(0.0, cw)) * cfg.slot_s) * self.time_scale
        if self.ctx.observing:
            self.ctx.obs.on_contend(self.now, self.node_id,
                                    self._current.packet.uid,
                                    backoff, self._current.retries)
        self._backoff_handle = self.schedule(backoff, self._access_fire)

    def _access_fire(self) -> None:
        self._backoff_handle = None
        if self._current is None:
            return
        if not self.radio.is_on:
            self._fail_current(silent=True)
            return
        if self._medium_busy():
            # Medium got busy during the countdown: defer, redraw later.
            self._waiting_for_idle = True
            return
        job = self._current
        if self._uses_rts(job):
            self._transmit_rts(job)
        else:
            self._transmit_data(job)

    # ------------------------------------------------------------- transmit

    def _data_frame(self, job: TxJob) -> Frame:
        return Frame(
            src=self.node_id,
            dst=job.dst,
            seq=self._current_seq,  # stable across retransmissions
            payload=job.packet,
            size_bytes=job.size_bytes,
        )

    def _exchange_nav(self, job: TxJob, from_rts: bool) -> float:
        """Remaining reservation announced by RTS (or CTS) for this job."""
        cfg = self.config
        data_air = cfg.airtime_s(job.size_bytes)
        ack_air = cfg.airtime_s(MAC_ACK_SIZE)
        nav = 2 * cfg.sifs_s + data_air + ack_air
        if from_rts:
            nav += cfg.sifs_s + cfg.airtime_s(MAC_CTS_SIZE)
        return nav

    def _transmit_rts(self, job: TxJob) -> None:
        rts = Frame(
            src=self.node_id,
            dst=job.dst,
            seq=self._current_seq,
            payload=None,
            size_bytes=MAC_RTS_SIZE,
            subtype="rts",
            nav_s=self._exchange_nav(job, from_rts=True),
        )
        if not self.radio.transmit(rts, self.config.airtime_s(MAC_RTS_SIZE)):
            self._waiting_for_idle = True
            return
        self.rts_sent += 1
        self._tx_in_flight = True
        self._tx_is_rts = True
        self.trace("mac.rts", dst=job.dst)

    def _transmit_data(self, job: TxJob) -> None:
        frame = self._data_frame(job)
        if not self.radio.transmit(frame, self.config.airtime_s(frame.size_bytes)):
            self._waiting_for_idle = True
            return
        self.tx_attempts += 1
        self._tx_in_flight = True
        if self.ctx.tracing:
            self.trace("mac.tx", frame=str(frame), attempt=job.retries)

    def _on_tx_done(self) -> None:
        if not self._tx_in_flight:
            return
        self._tx_in_flight = False
        if self._tx_is_ctrl:
            self._tx_is_ctrl = False
            self._resume_if_waiting()
            return
        if self._tx_is_rts:
            self._tx_is_rts = False
            self._cts_handle = self.schedule(
                self.config.cts_timeout_s, self._on_cts_timeout)
            return
        job = self._current
        if job is None:
            return
        if job.dst is None:
            self._complete_current()
        else:
            self._ack_handle = self.schedule(
                self.config.ack_timeout_s, self._on_ack_timeout
            )

    def _resume_if_waiting(self) -> None:
        if (self._current is not None and self._waiting_for_idle
                and not self._medium_busy()):
            self._start_access()

    def _retry_or_fail(self) -> None:
        job = self._current
        if job is None:
            return
        job.retries += 1
        if job.retries > self.config.retry_limit:
            self._fail_current(silent=False)
        else:
            self._start_access()

    def _on_ack_timeout(self) -> None:
        self._ack_handle = None
        self.ack_timeouts += 1
        self._retry_or_fail()

    def _on_cts_timeout(self) -> None:
        self._cts_handle = None
        self.cts_timeouts += 1
        self._retry_or_fail()

    def _complete_current(self) -> None:
        job = self._current
        self._current = None
        self._current_seq = None
        if job is not None and self.sent.connected:
            self.sent(job.packet, job.dst)
        self._kick()

    def _fail_current(self, silent: bool) -> None:
        job = self._current
        self._current = None
        self._current_seq = None
        for handle_name in ("_ack_handle", "_backoff_handle", "_cts_handle"):
            handle = getattr(self, handle_name)
            if handle is not None:
                handle.cancel()
                setattr(self, handle_name, None)
        if job is not None:
            if self.ctx.tracing:
                self.trace("mac.send_failed", packet=str(job.packet), dst=job.dst)
            if self.ctx.observing:
                reason = (DropReason.RADIO_OFF if silent
                          else DropReason.RETRY_EXHAUSTED)
                self.ctx.obs.on_drop(self.now, self.node_id, "mac", reason,
                                     job.packet.uid, dst=job.dst,
                                     retries=job.retries)
            if not silent and self.send_failed.connected:
                self.send_failed(job.packet, job.dst)
        if self.radio.is_on:
            self._kick()
        else:
            # Node is dead: everything queued dies with it, quietly.
            purged = self.queue.purge(DropReason.RADIO_OFF)
            if self.ctx.observing:
                for dead in purged:
                    self.ctx.obs.on_drop(self.now, self.node_id, "mac",
                                         DropReason.RADIO_OFF,
                                         dead.packet.uid)

    # -------------------------------------------------------------- carrier

    def _on_carrier(self, busy: bool) -> None:
        if busy:
            if self._backoff_handle is not None:
                self._backoff_handle.cancel()
                self._backoff_handle = None
                self._waiting_for_idle = True
        else:
            if (
                self._current is not None
                and self._waiting_for_idle
                and self._ack_handle is None
                and self._cts_handle is None
                and not self._tx_in_flight
            ):
                if self.nav_busy:
                    # Physical carrier cleared but a reservation holds us:
                    # the NAV wakeup will resume access.
                    self.nav_deferrals += 1
                else:
                    self._start_access()

    # -------------------------------------------------------------- receive

    def _on_frame(self, frame: Frame, info: "RxInfo") -> None:
        # Third-party RTS/CTS reservations charge our NAV.
        if frame.nav_s > 0.0 and frame.dst != self.node_id:
            self._set_nav(self.now + frame.nav_s)

        if frame.subtype == "ack":
            if frame.dst == self.node_id and self._ack_handle is not None \
                    and frame.seq == self._current_seq:
                self._ack_handle.cancel()
                self._ack_handle = None
                self._complete_current()
            return
        if frame.subtype == "rts":
            if frame.dst == self.node_id:
                self.schedule(self.config.sifs_s, self._send_cts, frame)
            return
        if frame.subtype == "cts":
            if frame.dst == self.node_id and self._cts_handle is not None \
                    and frame.seq == self._current_seq:
                self._cts_handle.cancel()
                self._cts_handle = None
                # Medium reserved for us: data goes out after SIFS.
                self.schedule(self.config.sifs_s, self._send_reserved_data)
            return

        rx = MacRxInfo(
            src=frame.src,
            power_dbm=info.power_dbm,
            time=self.now,
            overheard=(frame.dst is not None and frame.dst != self.node_id),
        )
        if frame.is_broadcast:
            self.delivered_up += 1
            if self.to_net.connected:
                self.to_net(frame.payload, rx)
        elif frame.dst == self.node_id:
            self.schedule(self.config.sifs_s, self._send_ack, frame.src, frame.seq)
            self.delivered_up += 1
            if self.to_net.connected:
                self.to_net(frame.payload, rx)
        elif self.config.promiscuous and self.to_net.connected:
            self.to_net(frame.payload, rx)

    def _send_reserved_data(self) -> None:
        job = self._current
        if job is None or not self.radio.is_on:
            return
        frame = self._data_frame(job)
        if not self.radio.transmit(frame, self.config.airtime_s(frame.size_bytes)):
            # Reservation raced something; fall back to normal access.
            self._waiting_for_idle = True
            return
        self.tx_attempts += 1
        self._tx_in_flight = True
        if self.ctx.tracing:
            self.trace("mac.tx_reserved", frame=str(frame), attempt=job.retries)

    def _send_cts(self, rts: Frame) -> None:
        if not self.radio.is_on:
            return
        nav = max(rts.nav_s - self.config.sifs_s
                  - self.config.airtime_s(MAC_CTS_SIZE), 0.0)
        cts = Frame(src=self.node_id, dst=rts.src, seq=rts.seq, payload=None,
                    size_bytes=MAC_CTS_SIZE, subtype="cts", nav_s=nav)
        if self.radio.transmit(cts, self.config.airtime_s(MAC_CTS_SIZE)):
            self._tx_in_flight = True
            self._tx_is_ctrl = True

    def _send_ack(self, dst: int, seq: int) -> None:
        if not self.radio.is_on:
            return
        ack = Frame(src=self.node_id, dst=dst, seq=seq, payload=None,
                    size_bytes=MAC_ACK_SIZE, subtype="ack")
        # ACKs jump the queue after SIFS; if the radio is mid-transmission we
        # simply skip (the sender times out and retries).
        if self.radio.transmit(ack, self.config.airtime_s(MAC_ACK_SIZE)):
            self._tx_in_flight = True
            self._tx_is_ctrl = True
