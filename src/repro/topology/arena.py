"""The deployment volume, as a value object.

Every geometry consumer in the stack — placement, mobility, topology
control, the channel's spatial index — used to thread loose
``width_m, height_m`` positional pairs around, which hard-coded the whole
pipeline to flat 2-D terrains.  :class:`Arena` replaces those pairs with one
frozen dataclass that knows its own dimensionality:

* ``Arena(1000.0, 1000.0)`` — the paper's flat terrain (``dim == 2``);
* ``Arena(900.0, 900.0, depth_m=200.0)`` — an airborne deployment volume
  (``dim == 3``), positions carrying an altitude coordinate;
* ``Arena(900.0, 900.0, depth_m=0.0)`` — a *degenerate* 3-D arena: positions
  are ``(N, 3)`` with every altitude pinned to zero, which must (and does —
  the equivalence tests pin it) produce link budgets float-equal to the 2-D
  arena's.

Bit-identity contract: :meth:`Arena.sample` draws one uniform vector per
axis, in axis order, exactly as the legacy ``uniform_random(n, w, h, rng)``
did — so every pre-Arena 2-D experiment reproduces its golden results
byte-for-byte through the new API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Arena", "as_arena"]


@dataclass(frozen=True)
class Arena:
    """An axis-aligned deployment box anchored at the origin.

    ``width_m`` spans the x axis, ``height_m`` the y axis, and ``depth_m``
    — when not ``None`` — the z (altitude) axis.  ``depth_m=None`` means a
    genuinely 2-D arena (positions are ``(N, 2)``); ``depth_m=0.0`` means a
    3-D arena squashed flat (positions are ``(N, 3)`` with ``z == 0``).
    """

    width_m: float
    height_m: float
    depth_m: Optional[float] = None

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("width_m and height_m must be positive")
        if self.depth_m is not None and self.depth_m < 0:
            raise ValueError("depth_m must be non-negative (or None for 2-D)")

    # ------------------------------------------------------------ geometry

    @property
    def dim(self) -> int:
        """Coordinate dimensionality: 2, or 3 when ``depth_m`` is set."""
        return 2 if self.depth_m is None else 3

    @property
    def extents(self) -> tuple[float, ...]:
        """Per-axis side lengths, ``(width, height[, depth])``."""
        if self.depth_m is None:
            return (self.width_m, self.height_m)
        return (self.width_m, self.height_m, self.depth_m)

    @property
    def volume(self) -> float:
        """Area (2-D) or volume (3-D) of the deployment box."""
        out = self.width_m * self.height_m
        if self.depth_m is not None:
            out *= self.depth_m
        return out

    def flat(self) -> "Arena":
        """The 2-D footprint of this arena (drops the altitude axis)."""
        return Arena(self.width_m, self.height_m)

    # ------------------------------------------------------------- queries

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` positions uniform over the box, shape ``(n, dim)``.

        Draws one length-``n`` uniform vector per axis in axis order — the
        exact draw sequence of the legacy 2-D ``uniform_random``, so seeded
        2-D placements are bit-identical through this API.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        cols = [rng.uniform(0.0, extent, size=n) for extent in self.extents]
        return np.column_stack(cols)

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask: which positions lie inside the box (inclusive)."""
        positions = self._check(positions)
        inside = np.ones(len(positions), dtype=bool)
        for axis, extent in enumerate(self.extents):
            coord = positions[:, axis]
            inside &= (coord >= 0.0) & (coord <= extent)
        return inside

    def clamp(self, positions: np.ndarray) -> np.ndarray:
        """Positions clipped into the box, as a new array."""
        positions = self._check(positions).copy()
        for axis, extent in enumerate(self.extents):
            np.clip(positions[:, axis], 0.0, extent, out=positions[:, axis])
        return positions

    def _check(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != self.dim:
            raise ValueError(
                f"positions must be (N, {self.dim}) for a {self.dim}-D "
                f"arena, got {positions.shape}")
        return positions


def as_arena(arena: "Arena | tuple | None", width_m=None,
             height_m=None, depth_m=None) -> Arena:
    """Coerce the mixed legacy/new argument forms into an :class:`Arena`.

    Shared by the deprecation shims: an existing :class:`Arena` passes
    through, a ``(w, h[, d])`` tuple converts, and bare ``width_m`` /
    ``height_m`` keywords build a 2-D arena.
    """
    if arena is not None:
        if isinstance(arena, Arena):
            return arena
        if isinstance(arena, (tuple, list)) and len(arena) in (2, 3):
            return Arena(*map(float, arena))
        raise TypeError(f"expected an Arena, got {arena!r}")
    if width_m is None or height_m is None:
        raise TypeError("either arena= or both width_m= and height_m= "
                        "are required")
    return Arena(float(width_m), float(height_m),
                 None if depth_m is None else float(depth_m))
