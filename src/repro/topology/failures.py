"""Transceiver failure processes (the Figure 4 workload).

The paper: "node failures are artificially introduced to turn off
transceivers in all nodes but those that generate and receive CBR traffic.
For instance, a node failure of 10% means that randomly selected 10% of the
time the transceiver of a node is turned off and not able to transmit or
receive any packets."

:class:`DutyCycleFailure` renders that as an alternating ON/OFF renewal
process per node with exponentially distributed period lengths, scaled so
the long-run OFF fraction equals the requested failure percentage.  The mean
cycle length controls how bursty the outages are: with the default 4 s cycle
and 10 % failure, a node drops out for ~0.4 s at a time — long enough to
break an AODV route (several MAC retry rounds), short enough to recur many
times per run.

:func:`apply_failures` owns the exemption set: it validates the ids and
never constructs a failure process for an exempt radio, so an exempt node
cannot be duty-cycled by construction (previously the exclusion was only a
caller convention — each call site filtered the radio list itself and a
missed filter silently duty-cycled a CBR endpoint).

The generalization of this single failure shape into composable, declarative
chaos plans lives in :mod:`repro.faults`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.phy.radio import Transceiver
from repro.sim.components import Component, SimContext

__all__ = ["DutyCycleFailure", "apply_failures"]


class DutyCycleFailure(Component):
    """Drives one transceiver's on/off renewal process."""

    def __init__(self, ctx: SimContext, radio: Transceiver, off_fraction: float,
                 mean_cycle_s: float = 4.0, start_s: float = 0.0,
                 sleep: bool = False):
        super().__init__(ctx, f"failure[{radio.node_id}]")
        if not 0.0 <= off_fraction < 1.0:
            raise ValueError("off_fraction must be in [0, 1)")
        if mean_cycle_s <= 0:
            raise ValueError("mean_cycle_s must be positive")
        self.radio = radio
        self.sleep = sleep
        self.off_fraction = off_fraction
        self.mean_on_s = (1.0 - off_fraction) * mean_cycle_s
        self.mean_off_s = off_fraction * mean_cycle_s
        self._rng = self.rng()
        self.outages = 0
        self.time_off = 0.0
        if off_fraction > 0.0:
            # Start each node at a random phase of its cycle.
            first_on = float(self._rng.exponential(self.mean_on_s))
            self.schedule(start_s + first_on, self._go_off)

    def _go_off(self) -> None:
        off_for = float(self._rng.exponential(self.mean_off_s))
        self.outages += 1
        self.time_off += off_for
        self.radio.set_power(False, sleep=self.sleep)
        if self.ctx.observing:
            self.ctx.obs.on_fault(self.now, self.radio.node_id,
                                  "duty_cycle", "off", off_for_s=off_for)
        self.schedule(off_for, self._go_on)

    def _go_on(self) -> None:
        self.radio.set_power(True)
        if self.ctx.observing:
            self.ctx.obs.on_fault(self.now, self.radio.node_id,
                                  "duty_cycle", "on")
        self.schedule(float(self._rng.exponential(self.mean_on_s)), self._go_off)


def apply_failures(
    ctx: SimContext,
    radios: Sequence[Transceiver],
    off_fraction: float,
    exempt: Iterable[int] = (),
    mean_cycle_s: float = 4.0,
    sleep: bool = False,
) -> list[DutyCycleFailure]:
    """Attach failure processes to every radio except the exempt node ids
    (the paper exempts the CBR endpoints).  ``sleep=True`` models voluntary
    low-power naps instead of hard failures — same radio silence, tiny
    residual draw on the energy meter.

    The exclusion is enforced here, not by caller convention: ids are
    validated against the radio set (an exempt id naming no radio is a
    programming error, as is a duplicate node id among the radios), and no
    :class:`DutyCycleFailure` is ever constructed for an exempt node.
    """
    node_ids = [radio.node_id for radio in radios]
    id_set = set(node_ids)
    if len(id_set) != len(node_ids):
        dupes = sorted({n for n in node_ids if node_ids.count(n) > 1})
        raise ValueError(f"duplicate node id(s) among radios: {dupes}")
    exempt_set = set(int(n) for n in exempt)
    unknown = exempt_set - id_set
    if unknown:
        raise ValueError(
            f"exempt node id(s) {sorted(unknown)} name no supplied radio")
    return [
        DutyCycleFailure(ctx, radio, off_fraction, mean_cycle_s, sleep=sleep)
        for radio in radios
        if radio.node_id not in exempt_set
    ]
