"""Transceiver failure processes (the Figure 4 workload).

The paper: "node failures are artificially introduced to turn off
transceivers in all nodes but those that generate and receive CBR traffic.
For instance, a node failure of 10% means that randomly selected 10% of the
time the transceiver of a node is turned off and not able to transmit or
receive any packets."

:class:`DutyCycleFailure` renders that as an alternating ON/OFF renewal
process per node with exponentially distributed period lengths, scaled so
the long-run OFF fraction equals the requested failure percentage.  The mean
cycle length controls how bursty the outages are: with the default 4 s cycle
and 10 % failure, a node drops out for ~0.4 s at a time — long enough to
break an AODV route (several MAC retry rounds), short enough to recur many
times per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.phy.radio import Transceiver
from repro.sim.components import Component, SimContext

__all__ = ["DutyCycleFailure", "apply_failures"]


class DutyCycleFailure(Component):
    """Drives one transceiver's on/off renewal process."""

    def __init__(self, ctx: SimContext, radio: Transceiver, off_fraction: float,
                 mean_cycle_s: float = 4.0, start_s: float = 0.0,
                 sleep: bool = False):
        super().__init__(ctx, f"failure[{radio.node_id}]")
        if not 0.0 <= off_fraction < 1.0:
            raise ValueError("off_fraction must be in [0, 1)")
        if mean_cycle_s <= 0:
            raise ValueError("mean_cycle_s must be positive")
        self.radio = radio
        self.sleep = sleep
        self.off_fraction = off_fraction
        self.mean_on_s = (1.0 - off_fraction) * mean_cycle_s
        self.mean_off_s = off_fraction * mean_cycle_s
        self._rng = self.rng()
        self.outages = 0
        self.time_off = 0.0
        if off_fraction > 0.0:
            # Start each node at a random phase of its cycle.
            first_on = float(self._rng.exponential(self.mean_on_s))
            self.schedule(start_s + first_on, self._go_off)

    def _go_off(self) -> None:
        off_for = float(self._rng.exponential(self.mean_off_s))
        self.outages += 1
        self.time_off += off_for
        self.radio.set_power(False, sleep=self.sleep)
        self.schedule(off_for, self._go_on)

    def _go_on(self) -> None:
        self.radio.set_power(True)
        self.schedule(float(self._rng.exponential(self.mean_on_s)), self._go_off)


def apply_failures(
    ctx: SimContext,
    radios: Sequence[Transceiver],
    off_fraction: float,
    exempt: Iterable[int] = (),
    mean_cycle_s: float = 4.0,
    sleep: bool = False,
) -> list[DutyCycleFailure]:
    """Attach failure processes to every radio except the exempt node ids
    (the paper exempts the CBR endpoints).  ``sleep=True`` models voluntary
    low-power naps instead of hard failures — same radio silence, tiny
    residual draw on the energy meter."""
    exempt_set = set(exempt)
    return [
        DutyCycleFailure(ctx, radio, off_fraction, mean_cycle_s, sleep=sleep)
        for radio in radios
        if radio.node_id not in exempt_set
    ]
