"""Node placement generators.

The paper places nodes uniformly at random on a square terrain (100 nodes on
1000 m × 1000 m for Figure 1; 500 nodes on 2000 m × 2000 m for Figures 3-4).
:func:`connected_uniform` resamples until the induced unit-disk graph is
connected, because a partitioned topology makes delivery-ratio comparisons
meaningless (a packet to an unreachable destination says nothing about the
protocol).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_random",
    "grid",
    "connected_uniform",
    "is_connected",
    "adjacency",
    "pairwise_distances",
]

#: Above this many nodes :func:`is_connected` switches from the dense
#: adjacency matrix (O(n²) memory) to a grid-indexed CSR BFS (O(n·k)) —
#: at 10k nodes the dense boolean+distance matrices alone would be ~900 MB.
_SPARSE_CONNECTIVITY_MIN_NODES = 2048


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    diff = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def adjacency(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean unit-disk adjacency matrix (no self loops)."""
    dist = pairwise_distances(positions)
    adj = dist <= range_m
    np.fill_diagonal(adj, False)
    return adj


def is_connected(positions: np.ndarray, range_m: float) -> bool:
    """BFS connectivity over the unit-disk graph, vectorized per frontier.

    Small topologies use the dense adjacency matrix; past
    :data:`_SPARSE_CONNECTIVITY_MIN_NODES` the edges come from the uniform
    grid in :mod:`repro.phy.spatial` as a CSR neighbor list instead, so the
    10k-node scaling placements never materialize an N×N matrix.  Both paths
    decide the same predicate.
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n == 0:
        return True
    if n > _SPARSE_CONNECTIVITY_MIN_NODES:
        return _is_connected_sparse(positions, range_m)
    adj = adjacency(positions, range_m)
    visited = np.zeros(n, dtype=bool)
    frontier = np.zeros(n, dtype=bool)
    visited[0] = frontier[0] = True
    while frontier.any():
        reachable = adj[frontier].any(axis=0)
        frontier = reachable & ~visited
        visited |= frontier
    return bool(visited.all())


def _is_connected_sparse(positions: np.ndarray, range_m: float) -> bool:
    """CSR BFS over grid-generated neighbor pairs — O(n·k) memory."""
    from repro.phy.spatial import neighbor_pairs

    n = len(positions)
    srcs, dsts = neighbor_pairs(positions, range_m)
    order = np.argsort(srcs, kind="stable")
    srcs = srcs[order]
    dsts = dsts[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(srcs, minlength=n), out=indptr[1:])

    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    seen = 1
    while len(frontier):
        # Gather every neighbor of the frontier via segment-arange expansion.
        lo = indptr[frontier]
        counts = indptr[frontier + 1] - lo
        total = int(counts.sum())
        if total == 0:
            break
        starts = np.repeat(lo, counts)
        segment = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                               counts)
        neighbors = dsts[starts + segment]
        fresh = np.unique(neighbors[~visited[neighbors]])
        visited[fresh] = True
        seen += len(fresh)
        frontier = fresh
    return seen == n


def uniform_random(n: int, width_m: float, height_m: float,
                   rng: np.random.Generator) -> np.ndarray:
    """``n`` nodes uniformly at random on a ``width × height`` terrain."""
    if n <= 0:
        raise ValueError("n must be positive")
    xs = rng.uniform(0.0, width_m, size=n)
    ys = rng.uniform(0.0, height_m, size=n)
    return np.column_stack([xs, ys])


def grid(rows: int, cols: int, spacing_m: float, origin: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Regular grid placement — handy for deterministic protocol tests."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    ox, oy = origin
    points = [(ox + c * spacing_m, oy + r * spacing_m)
              for r in range(rows) for c in range(cols)]
    return np.asarray(points, dtype=float)


def connected_uniform(n: int, width_m: float, height_m: float, range_m: float,
                      rng: np.random.Generator, max_tries: int = 200) -> np.ndarray:
    """Uniform random placement, resampled until connected at ``range_m``."""
    for _ in range(max_tries):
        positions = uniform_random(n, width_m, height_m, rng)
        if is_connected(positions, range_m):
            return positions
    raise RuntimeError(
        f"no connected placement of {n} nodes in {width_m}x{height_m} m "
        f"at range {range_m} m after {max_tries} tries — density too low"
    )
