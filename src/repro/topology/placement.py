"""Node placement generators.

The paper places nodes uniformly at random on a square terrain (100 nodes on
1000 m × 1000 m for Figure 1; 500 nodes on 2000 m × 2000 m for Figures 3-4).
:func:`connected_uniform` resamples until the induced unit-disk graph is
connected, because a partitioned topology makes delivery-ratio comparisons
meaningless (a packet to an unreachable destination says nothing about the
protocol).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_random",
    "grid",
    "connected_uniform",
    "is_connected",
    "adjacency",
    "pairwise_distances",
]


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    diff = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def adjacency(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean unit-disk adjacency matrix (no self loops)."""
    dist = pairwise_distances(positions)
    adj = dist <= range_m
    np.fill_diagonal(adj, False)
    return adj


def is_connected(positions: np.ndarray, range_m: float) -> bool:
    """BFS connectivity over the unit-disk graph, vectorized per frontier."""
    adj = adjacency(positions, range_m)
    n = len(adj)
    if n == 0:
        return True
    visited = np.zeros(n, dtype=bool)
    frontier = np.zeros(n, dtype=bool)
    visited[0] = frontier[0] = True
    while frontier.any():
        reachable = adj[frontier].any(axis=0)
        frontier = reachable & ~visited
        visited |= frontier
    return bool(visited.all())


def uniform_random(n: int, width_m: float, height_m: float,
                   rng: np.random.Generator) -> np.ndarray:
    """``n`` nodes uniformly at random on a ``width × height`` terrain."""
    if n <= 0:
        raise ValueError("n must be positive")
    xs = rng.uniform(0.0, width_m, size=n)
    ys = rng.uniform(0.0, height_m, size=n)
    return np.column_stack([xs, ys])


def grid(rows: int, cols: int, spacing_m: float, origin: tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Regular grid placement — handy for deterministic protocol tests."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    ox, oy = origin
    points = [(ox + c * spacing_m, oy + r * spacing_m)
              for r in range(rows) for c in range(cols)]
    return np.asarray(points, dtype=float)


def connected_uniform(n: int, width_m: float, height_m: float, range_m: float,
                      rng: np.random.Generator, max_tries: int = 200) -> np.ndarray:
    """Uniform random placement, resampled until connected at ``range_m``."""
    for _ in range(max_tries):
        positions = uniform_random(n, width_m, height_m, rng)
        if is_connected(positions, range_m):
            return positions
    raise RuntimeError(
        f"no connected placement of {n} nodes in {width_m}x{height_m} m "
        f"at range {range_m} m after {max_tries} tries — density too low"
    )
