"""Node placement generators, over 2-D or 3-D arenas.

The paper places nodes uniformly at random on a square terrain (100 nodes on
1000 m × 1000 m for Figure 1; 500 nodes on 2000 m × 2000 m for Figures 3-4).
:func:`connected_uniform` resamples until the induced unit-disk graph is
connected, because a partitioned topology makes delivery-ratio comparisons
meaningless (a packet to an unreachable destination says nothing about the
protocol).

Geometry comes from an :class:`~repro.topology.arena.Arena` — 2-D terrains
and 3-D deployment volumes run through the same generators, and every
distance predicate below sums squared deltas over however many axes the
positions carry.  The legacy ``(n, width_m, height_m, ...)`` signatures
keep working for one release through a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.topology.arena import Arena

__all__ = [
    "uniform_random",
    "grid",
    "connected_uniform",
    "is_connected",
    "adjacency",
    "pairwise_distances",
]

#: Above this many nodes :func:`is_connected` switches from the dense
#: adjacency matrix (O(n²) memory) to a grid-indexed CSR BFS (O(n·k)) —
#: at 10k nodes the dense boolean+distance matrices alone would be ~900 MB.
_SPARSE_CONNECTIVITY_MIN_NODES = 2048


def _shim_arena(arena, maybe_height, fn_name: str) -> Arena:
    """Resolve the ``(arena, ...)`` vs legacy ``(width_m, height_m, ...)``
    call forms.  ``maybe_height`` is the argument that is ``height_m`` in
    the legacy spelling and part of the *next* parameter in the new one."""
    if isinstance(arena, Arena):
        return arena
    if maybe_height is None:
        raise TypeError(
            f"{fn_name} expects an Arena (or the deprecated "
            f"width_m, height_m pair)")
    warnings.warn(
        f"{fn_name}(n, width_m, height_m, ...) is deprecated; pass "
        f"{fn_name}(n, Arena(width_m, height_m), ...) instead",
        DeprecationWarning, stacklevel=3)
    return Arena(float(arena), float(maybe_height))


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    positions = np.asarray(positions, dtype=float)
    diff = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def adjacency(positions: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean unit-disk (unit-ball in 3-D) adjacency matrix (no self
    loops)."""
    dist = pairwise_distances(positions)
    adj = dist <= range_m
    np.fill_diagonal(adj, False)
    return adj


def is_connected(positions: np.ndarray, range_m: float) -> bool:
    """BFS connectivity over the unit-disk graph, vectorized per frontier.

    Small topologies use the dense adjacency matrix; past
    :data:`_SPARSE_CONNECTIVITY_MIN_NODES` the edges come from the uniform
    grid in :mod:`repro.phy.spatial` as a CSR neighbor list instead, so the
    10k-node scaling placements never materialize an N×N matrix.  Both paths
    decide the same predicate, in 2-D and 3-D alike.
    """
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n == 0:
        return True
    if n > _SPARSE_CONNECTIVITY_MIN_NODES:
        return _is_connected_sparse(positions, range_m)
    adj = adjacency(positions, range_m)
    visited = np.zeros(n, dtype=bool)
    frontier = np.zeros(n, dtype=bool)
    visited[0] = frontier[0] = True
    while frontier.any():
        reachable = adj[frontier].any(axis=0)
        frontier = reachable & ~visited
        visited |= frontier
    return bool(visited.all())


def _is_connected_sparse(positions: np.ndarray, range_m: float) -> bool:
    """CSR BFS over grid-generated neighbor pairs — O(n·k) memory."""
    from repro.phy.spatial import neighbor_pairs

    n = len(positions)
    srcs, dsts = neighbor_pairs(positions, range_m)
    order = np.argsort(srcs, kind="stable")
    srcs = srcs[order]
    dsts = dsts[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(srcs, minlength=n), out=indptr[1:])

    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    seen = 1
    while len(frontier):
        # Gather every neighbor of the frontier via segment-arange expansion.
        lo = indptr[frontier]
        counts = indptr[frontier + 1] - lo
        total = int(counts.sum())
        if total == 0:
            break
        starts = np.repeat(lo, counts)
        segment = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                               counts)
        neighbors = dsts[starts + segment]
        fresh = np.unique(neighbors[~visited[neighbors]])
        visited[fresh] = True
        seen += len(fresh)
        frontier = fresh
    return seen == n


def uniform_random(n: int, arena: Arena | float, height_m: float | None = None,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """``n`` nodes uniformly at random over the arena, shape ``(n, dim)``.

    New spelling: ``uniform_random(n, arena, rng)`` (``rng`` may also be
    passed by keyword).  Deprecated: ``uniform_random(n, width_m, height_m,
    rng)``.
    """
    if isinstance(arena, Arena):
        if rng is None and isinstance(height_m, np.random.Generator):
            rng, height_m = height_m, None
        if height_m is not None:
            raise TypeError("unexpected argument after an Arena")
    else:
        arena = _shim_arena(arena, height_m, "uniform_random")
    if rng is None:
        raise TypeError("uniform_random requires an rng")
    if n <= 0:
        raise ValueError("n must be positive")
    return arena.sample(rng, n)


def grid(rows: int, cols: int, spacing_m: float,
         origin: Sequence[float] = (0.0, 0.0),
         levels: int = 1) -> np.ndarray:
    """Regular grid placement — handy for deterministic protocol tests.

    ``origin`` sets the grid's anchor and its dimensionality: a 2-tuple
    yields ``(rows·cols, 2)`` points, a 3-tuple ``(levels·rows·cols, 3)``
    points with ``levels`` copies of the grid stacked ``spacing_m`` apart
    along z.  ``levels > 1`` requires a 3-D origin.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if levels <= 0:
        raise ValueError("levels must be positive")
    origin = tuple(float(v) for v in origin)
    if len(origin) not in (2, 3):
        raise ValueError(f"origin must have 2 or 3 coordinates, "
                         f"got {len(origin)}")
    if levels > 1 and len(origin) != 3:
        raise ValueError("stacked grids (levels > 1) need a 3-D origin")
    if len(origin) == 2:
        ox, oy = origin
        points = [(ox + c * spacing_m, oy + r * spacing_m)
                  for r in range(rows) for c in range(cols)]
    else:
        ox, oy, oz = origin
        points = [(ox + c * spacing_m, oy + r * spacing_m,
                   oz + level * spacing_m)
                  for level in range(levels)
                  for r in range(rows) for c in range(cols)]
    return np.asarray(points, dtype=float)


def connected_uniform(n: int, arena: Arena | float,
                      height_or_range: float | None = None,
                      range_or_rng=None, rng_or_tries=None,
                      max_tries: int = 200, *,
                      range_m: float | None = None,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Uniform random placement, resampled until connected at ``range_m``.

    New spelling: ``connected_uniform(n, arena, range_m, rng[, max_tries])``.
    Deprecated: ``connected_uniform(n, width_m, height_m, range_m, rng[,
    max_tries])``.
    """
    if isinstance(arena, Arena):
        if range_m is None:
            range_m = height_or_range
        if rng is None:
            rng = range_or_rng
        if rng_or_tries is not None:
            max_tries = int(rng_or_tries)
    else:
        arena = _shim_arena(arena, height_or_range, "connected_uniform")
        if range_m is None:
            range_m = range_or_rng
        if rng is None:
            rng = rng_or_tries
    if range_m is None or rng is None:
        raise TypeError("connected_uniform requires range_m and rng")
    for _ in range(max_tries):
        positions = arena.sample(rng, n)
        if is_connected(positions, range_m):
            return positions
    extents = "x".join(f"{e:g}" for e in arena.extents)
    raise RuntimeError(
        f"no connected placement of {n} nodes in {extents} m "
        f"at range {range_m} m after {max_tries} tries — density too low"
    )
