"""Virtual-force topology control.

A deployed (or airborne) fleet rarely lands in a good topology: uniform
random placement leaves some nodes nearly isolated and others buried in
dense clumps, which is exactly the regime where the paper's SSAF thresholds
and Routeless Routing gradients degrade.  :class:`VirtualForceControl`
nudges mobile nodes toward a healthy topology with the classic
spring-force rule from the sensor-deployment literature: each neighbor
pair exerts a force along its connecting line — *repulsive* when the pair
sits closer than the target spacing, *attractive* when farther — and every
tick each node takes a bounded step along its net force.  The fixed point
is a roughly even spread at the target spacing, i.e. a roughly uniform
node degree.

An optional ``target_degree`` gates the two force senses per node: nodes
already over the target degree stop attracting (they only spread), nodes
under it stop repelling (they only densify), which converges degree toward
the target instead of just spacing.

Deterministic (no randomness), dimension-agnostic (forces sum per axis over
however many axes the arena carries), and incremental: moves flow through
:meth:`~repro.phy.channel.Channel.move_nodes`, so the sparse link budget
only recomputes the touched neighborhoods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.phy.spatial import neighbor_pairs
from repro.sim.components import Component, SimContext
from repro.topology.arena import Arena

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.channel import Channel

__all__ = ["VirtualForceConfig", "VirtualForceControl"]


@dataclass(frozen=True, kw_only=True)
class VirtualForceConfig:
    #: Interaction radius — which pairs exert forces on each other.
    #: Usually the radio's nominal communication range.
    comm_range_m: float = 250.0
    #: Equilibrium pair distance; defaults to ``0.7 * comm_range_m``, the
    #: usual "comfortably inside range" spacing.
    target_spacing_m: Optional[float] = None
    #: Attractive gain (pairs farther than the target spacing).
    k_attract: float = 0.2
    #: Repulsive gain (pairs closer than the target spacing); stronger than
    #: attraction so clumps dissolve faster than stragglers drift.
    k_repulse: float = 0.6
    #: Per-tick displacement cap — keeps the relaxation stable.
    max_step_m: float = 5.0
    #: When set, nodes above this degree only repel and nodes below it only
    #: attract, steering degree itself toward the target.
    target_degree: Optional[int] = None
    tick_s: float = 0.5

    def __post_init__(self) -> None:
        if self.comm_range_m <= 0:
            raise ValueError("comm_range_m must be positive")
        if self.target_spacing_m is not None and self.target_spacing_m <= 0:
            raise ValueError("target_spacing_m must be positive")
        if self.k_attract < 0 or self.k_repulse < 0:
            raise ValueError("force gains must be non-negative")
        if self.max_step_m <= 0 or self.tick_s <= 0:
            raise ValueError("max_step_m and tick_s must be positive")


class VirtualForceControl(Component):
    """Spring/repulsion relaxation maintaining spacing (and optionally
    degree) across the fleet."""

    def __init__(self, ctx: SimContext, channel: "Channel", *,
                 arena: Arena | None = None,
                 config: VirtualForceConfig | None = None,
                 frozen: Iterable[int] = ()):
        super().__init__(ctx, "topology.vforce")
        self.channel = channel
        self.config = config if config is not None else VirtualForceConfig()
        if arena is None:
            raise TypeError("VirtualForceControl requires arena=Arena(...)")
        if channel.dim != arena.dim:
            raise ValueError(
                f"arena is {arena.dim}-D but the channel is "
                f"{channel.dim}-D — build both from the same Arena")
        self.arena = arena
        self.positions = channel.positions.copy()
        self.n = len(self.positions)
        frozen_set = set(frozen)
        self.mobile = np.array([i not in frozen_set for i in range(self.n)])
        self.ticks = 0
        #: Mean unit-disk degree after the latest relaxation step — the
        #: quantity this controller exists to regulate.
        self.mean_degree = self._mean_degree()
        self.schedule(self.config.tick_s, self._tick)

    @property
    def target_spacing_m(self) -> float:
        cfg = self.config
        if cfg.target_spacing_m is not None:
            return cfg.target_spacing_m
        return 0.7 * cfg.comm_range_m

    def _mean_degree(self) -> float:
        srcs, _ = neighbor_pairs(self.positions, self.config.comm_range_m)
        return len(srcs) / self.n if self.n else 0.0

    def _tick(self) -> None:
        cfg = self.config
        srcs, dsts = neighbor_pairs(self.positions, cfg.comm_range_m)
        force = np.zeros_like(self.positions)
        if len(srcs):
            diff = self.positions[srcs] - self.positions[dsts]
            dist = np.linalg.norm(diff, axis=1)
            # Coincident nodes get a deterministic unit push along +x so
            # they separate instead of dividing by zero.
            safe = np.where(dist > 0.0, dist, 1.0)
            unit = diff / safe[:, None]
            unit[dist == 0.0] = 0.0
            unit[dist == 0.0, 0] = 1.0

            d0 = self.target_spacing_m
            gap = (dist - d0) / d0
            # gap < 0 → too close → push src away from dst (+unit);
            # gap > 0 → too far → pull src toward dst (-unit).
            magnitude = np.where(gap < 0.0, cfg.k_repulse * -gap,
                                 cfg.k_attract * gap)
            sense = np.where(gap < 0.0, 1.0, -1.0)
            if cfg.target_degree is not None:
                degree = np.bincount(srcs, minlength=self.n)
                # Over-connected sources ignore attraction, under-connected
                # ones ignore repulsion.
                over = degree[srcs] > cfg.target_degree
                under = degree[srcs] < cfg.target_degree
                keep = np.where(gap < 0.0, over | ~under, under | ~over)
                magnitude = np.where(keep, magnitude, 0.0)
            pair_force = (magnitude * sense)[:, None] * unit
            np.add.at(force, srcs, pair_force)

        step = force * cfg.tick_s
        norms = np.linalg.norm(step, axis=1)
        over = norms > cfg.max_step_m
        if over.any():
            step[over] *= (cfg.max_step_m / norms[over])[:, None]
        step[~self.mobile] = 0.0

        before = self.positions.copy()
        self.positions = self.arena.clamp(self.positions + step)
        moved = np.flatnonzero(np.any(self.positions != before, axis=1))
        if len(moved):
            self.channel.move_nodes(moved, self.positions[moved])
        self.ticks += 1
        self.mean_degree = self._mean_degree()
        self.schedule(cfg.tick_s, self._tick)
