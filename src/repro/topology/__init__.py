"""Topology: arenas, node placement, mobility, and failure processes."""

from repro.topology.arena import Arena, as_arena
from repro.topology.failures import DutyCycleFailure, apply_failures
from repro.topology.mobility import (
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    RandomWalk,
    RandomWaypoint,
    mobility_model,
    mobility_model_names,
    register_mobility_model,
)
from repro.topology.placement import (
    adjacency,
    connected_uniform,
    grid,
    is_connected,
    pairwise_distances,
    uniform_random,
)
from repro.topology.vforce import VirtualForceConfig, VirtualForceControl

__all__ = [
    "Arena",
    "DutyCycleFailure",
    "GaussMarkov3D",
    "GaussMarkovConfig",
    "MobilityConfig",
    "RandomWalk",
    "RandomWaypoint",
    "VirtualForceConfig",
    "VirtualForceControl",
    "adjacency",
    "apply_failures",
    "as_arena",
    "connected_uniform",
    "grid",
    "is_connected",
    "mobility_model",
    "mobility_model_names",
    "pairwise_distances",
    "register_mobility_model",
    "uniform_random",
]
