"""Topology: node placement and failure processes."""

from repro.topology.failures import DutyCycleFailure, apply_failures
from repro.topology.mobility import MobilityConfig, RandomWalk, RandomWaypoint
from repro.topology.placement import (
    adjacency,
    connected_uniform,
    grid,
    is_connected,
    pairwise_distances,
    uniform_random,
)

__all__ = [
    "DutyCycleFailure",
    "MobilityConfig",
    "RandomWalk",
    "RandomWaypoint",
    "adjacency",
    "apply_failures",
    "connected_uniform",
    "grid",
    "is_connected",
    "pairwise_distances",
    "uniform_random",
]
