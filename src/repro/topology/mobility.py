"""Node mobility (the MANET dimension of the paper's problem setting).

The paper positions Routeless Routing for "wireless networks with dynamic
topological changes"; its own evaluation moves no nodes (failures stand in
for dynamics), but mobility is the canonical MANET stressor and the natural
extension experiment.  Three models:

* :class:`RandomWaypoint` — each node picks a uniform random destination,
  travels there at a uniform random speed, pauses, repeats.  The standard
  model of the AODV/DSR evaluation literature.
* :class:`RandomWalk` — each node picks a heading and speed for an epoch,
  reflecting off the terrain boundary.
* :class:`GaussMarkov3D` — temporally correlated 3-D flight: per-node
  speed, heading and pitch each follow a mean-reverting Gauss-Markov
  recurrence with memory parameter α, the standard UAV mobility model.

All are driven by one vectorized manager that advances every node each tick
and pushes the new positions into the channel through the incremental
:meth:`~repro.phy.channel.Channel.move_nodes` path.  Ticks are coarse
(default 0.25 s) relative to packet airtimes, the usual discrete-mobility
approximation.

Geometry comes from an :class:`~repro.topology.arena.Arena` (keyword-only);
the legacy positional ``width_m, height_m`` spelling keeps working for one
release behind a :class:`DeprecationWarning` shim.  Models register
themselves in a small name registry (:func:`mobility_model`), so campaigns
can sweep the mobility model as an axis the same way the experiment
registry lets them sweep experiments.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

import numpy as np

from repro.sim.components import Component, SimContext
from repro.topology.arena import Arena

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.channel import Channel

__all__ = [
    "MobilityConfig",
    "GaussMarkovConfig",
    "RandomWaypoint",
    "RandomWalk",
    "GaussMarkov3D",
    "mobility_model",
    "mobility_model_names",
    "register_mobility_model",
]


@dataclass(frozen=True)
class MobilityConfig:
    min_speed_mps: float = 1.0
    max_speed_mps: float = 10.0
    #: Pause at each waypoint, uniform over this range (RandomWaypoint only).
    min_pause_s: float = 0.0
    max_pause_s: float = 2.0
    #: Heading/speed epoch length (RandomWalk only).
    epoch_s: float = 5.0
    tick_s: float = 0.25
    #: Deployment volume the nodes move in.  Optional here so speed-only
    #: configs stay concise; the model constructor's ``arena=`` argument
    #: takes precedence, and one of the two must be provided.
    arena: Optional[Arena] = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("need 0 < min_speed <= max_speed")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.min_pause_s < 0 or self.max_pause_s < self.min_pause_s:
            raise ValueError("need 0 <= min_pause <= max_pause")


@dataclass(frozen=True, kw_only=True)
class GaussMarkovConfig:
    """Tuning for :class:`GaussMarkov3D`.

    ``alpha`` is the memory parameter of the Gauss-Markov recurrence
    ``v' = α·v + (1-α)·v̄ + sqrt(1-α²)·N(0, σ)``: 0 is memoryless (each
    tick an independent draw around the mean), 1 is ballistic (the initial
    velocity persists forever).
    """

    alpha: float = 0.75
    mean_speed_mps: float = 10.0
    speed_sigma_mps: float = 2.0
    #: Direction (azimuth) noise, radians.
    direction_sigma_rad: float = 0.4
    #: Mean pitch and pitch noise, radians; the mean-reverting pitch keeps
    #: flight mostly level with stochastic climbs and dives.
    mean_pitch_rad: float = 0.0
    pitch_sigma_rad: float = 0.15
    max_pitch_rad: float = 0.6
    #: Altitude band, as offsets into the arena's depth; ``None`` spans the
    #: whole band ``[0, depth_m]``.
    min_altitude_m: Optional[float] = None
    max_altitude_m: Optional[float] = None
    tick_s: float = 0.25
    arena: Optional[Arena] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.mean_speed_mps <= 0:
            raise ValueError("mean_speed_mps must be positive")
        if self.speed_sigma_mps < 0 or self.direction_sigma_rad < 0 \
                or self.pitch_sigma_rad < 0:
            raise ValueError("sigmas must be non-negative")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.max_pitch_rad <= 0:
            raise ValueError("max_pitch_rad must be positive")


def _resolve_geometry(cls_name: str, args: tuple, arena, config, frozen,
                      width_m, height_m):
    """Parse the mixed legacy/new constructor forms.

    Canonical: ``Model(ctx, channel, arena=Arena(...), config=...,
    frozen=...)`` (an Arena is also accepted as the first positional).
    Deprecated: ``Model(ctx, channel, width_m, height_m[, config[,
    frozen]])`` and the ``width_m=/height_m=`` keywords.
    """
    args = list(args)
    if args and isinstance(args[0], Arena):
        if arena is not None:
            raise TypeError(f"{cls_name}: arena passed twice")
        arena = args.pop(0)
    elif args and isinstance(args[0], (int, float)):
        if len(args) < 2 or not isinstance(args[1], (int, float)):
            raise TypeError(
                f"{cls_name}: legacy positional form needs both width_m "
                f"and height_m")
        w, h = args.pop(0), args.pop(0)
        warnings.warn(
            f"{cls_name}(ctx, channel, width_m, height_m, ...) is "
            f"deprecated; pass {cls_name}(ctx, channel, "
            f"arena=Arena(width_m, height_m), ...) instead",
            DeprecationWarning, stacklevel=4)
        arena = Arena(float(w), float(h))
    if args:
        if config is not None:
            raise TypeError(f"{cls_name}: config passed twice")
        config = args.pop(0)
    if args:
        frozen = args.pop(0)
    if args:
        raise TypeError(f"{cls_name}: too many positional arguments")
    if width_m is not None or height_m is not None:
        if arena is not None:
            raise TypeError(f"{cls_name}: pass either arena= or "
                            f"width_m=/height_m=, not both")
        if width_m is None or height_m is None:
            raise TypeError(f"{cls_name}: width_m and height_m go together")
        warnings.warn(
            f"{cls_name}(..., width_m=, height_m=) is deprecated; pass "
            f"arena=Arena(width_m, height_m) instead",
            DeprecationWarning, stacklevel=4)
        arena = Arena(float(width_m), float(height_m))
    if arena is None and config is not None:
        arena = getattr(config, "arena", None)
    if arena is None:
        raise TypeError(f"{cls_name} requires an arena (arena=Arena(...) "
                        f"or config with one)")
    return arena, config, frozen


class _MobilityBase(Component):
    """Shared tick loop: advance all mobile nodes, push positions to the
    channel through the incremental ``move_nodes`` path."""

    _default_config: Callable = MobilityConfig

    def __init__(self, ctx: SimContext, channel: "Channel", *args,
                 arena: Arena | None = None, config=None,
                 frozen: Iterable[int] = (), name: str = "mobility",
                 width_m: float | None = None, height_m: float | None = None):
        super().__init__(ctx, name)
        arena, config, frozen = _resolve_geometry(
            type(self).__name__, args, arena, config, frozen,
            width_m, height_m)
        self.channel = channel
        self.arena = arena
        if channel.dim != arena.dim:
            raise ValueError(
                f"arena is {arena.dim}-D but the channel is "
                f"{channel.dim}-D — build both from the same Arena")
        #: Legacy accessors; prefer ``self.arena``.
        self.width_m = arena.width_m
        self.height_m = arena.height_m
        self.depth_m = arena.depth_m
        self.config = config if config is not None else self._default_config()
        self.positions = channel.positions.copy()
        self.n = len(self.positions)
        frozen_set = set(frozen)
        #: Mask of nodes that move (frozen nodes — e.g. sinks — stay put).
        self.mobile = np.array([i not in frozen_set for i in range(self.n)])
        self._rng = self.rng()
        self.ticks = 0
        self.distance_moved_m = np.zeros(self.n)
        self.schedule(self.config.tick_s, self._tick)

    def _tick(self) -> None:
        before = self.positions.copy()
        self._advance(self.config.tick_s)
        self.distance_moved_m += np.linalg.norm(self.positions - before, axis=1)
        self.ticks += 1
        # Incremental channel update: only the nodes that actually moved this
        # tick (paused / frozen nodes sat still) — the sparse link budget
        # recomputes just their grid neighborhoods, and a tick where nothing
        # moved costs nothing at all.
        moved = np.flatnonzero(np.any(self.positions != before, axis=1))
        if len(moved):
            self.channel.move_nodes(moved, self.positions[moved])
        self.schedule(self.config.tick_s, self._tick)

    def _advance(self, dt: float) -> None:
        raise NotImplementedError


class RandomWaypoint(_MobilityBase):
    """The random waypoint model (2-D or 3-D: waypoints sample the arena)."""

    def __init__(self, ctx: SimContext, channel: "Channel", *args,
                 arena: Arena | None = None,
                 config: MobilityConfig | None = None,
                 frozen: Iterable[int] = (),
                 width_m: float | None = None, height_m: float | None = None):
        super().__init__(ctx, channel, *args, arena=arena, config=config,
                         frozen=frozen, name="mobility.rwp",
                         width_m=width_m, height_m=height_m)
        self.waypoints = self._draw_waypoints(self.n)
        self.speeds = self._draw_speeds(self.n)
        self.pause_until = np.zeros(self.n)

    def _draw_waypoints(self, n: int) -> np.ndarray:
        return self.arena.sample(self._rng, n)

    def _draw_speeds(self, n: int) -> np.ndarray:
        return self._rng.uniform(self.config.min_speed_mps,
                                 self.config.max_speed_mps, n)

    def _advance(self, dt: float) -> None:
        now = self.now
        moving = self.mobile & (self.pause_until <= now)
        if not moving.any():
            return
        delta = self.waypoints[moving] - self.positions[moving]
        dist = np.linalg.norm(delta, axis=1)
        step = self.speeds[moving] * dt
        arrived = dist <= step

        # Walk toward the waypoint (clamped at arrival).
        scale = np.where(arrived, 1.0, np.divide(step, dist, where=dist > 0,
                                                 out=np.ones_like(dist)))
        self.positions[moving] += delta * scale[:, None]

        # Arrivals: pause, then a fresh waypoint and speed.
        arrived_ids = np.flatnonzero(moving)[arrived]
        if len(arrived_ids):
            self.pause_until[arrived_ids] = now + self._rng.uniform(
                self.config.min_pause_s, self.config.max_pause_s,
                len(arrived_ids))
            self.waypoints[arrived_ids] = self._draw_waypoints(len(arrived_ids))
            self.speeds[arrived_ids] = self._draw_speeds(len(arrived_ids))


class RandomWalk(_MobilityBase):
    """Random direction walk with boundary reflection (2-D or 3-D)."""

    def __init__(self, ctx: SimContext, channel: "Channel", *args,
                 arena: Arena | None = None,
                 config: MobilityConfig | None = None,
                 frozen: Iterable[int] = (),
                 width_m: float | None = None, height_m: float | None = None):
        super().__init__(ctx, channel, *args, arena=arena, config=config,
                         frozen=frozen, name="mobility.rw",
                         width_m=width_m, height_m=height_m)
        self.velocities = self._draw_velocities(self.n)
        self._epoch_end = self.config.epoch_s

    def _draw_velocities(self, n: int) -> np.ndarray:
        speed = self._rng.uniform(self.config.min_speed_mps,
                                  self.config.max_speed_mps, n)
        heading = self._rng.uniform(0, 2 * np.pi, n)
        if self.arena.dim == 2:
            return np.column_stack([speed * np.cos(heading),
                                    speed * np.sin(heading)])
        # 3-D: a uniform direction on the sphere (cosine-uniform elevation).
        sin_el = self._rng.uniform(-1.0, 1.0, n)
        cos_el = np.sqrt(1.0 - sin_el**2)
        return np.column_stack([speed * np.cos(heading) * cos_el,
                                speed * np.sin(heading) * cos_el,
                                speed * sin_el])

    def _advance(self, dt: float) -> None:
        if self.now >= self._epoch_end:
            self.velocities = self._draw_velocities(self.n)
            self._epoch_end = self.now + self.config.epoch_s
        self.positions[self.mobile] += self.velocities[self.mobile] * dt
        # Reflect off the arena boundary, flipping the velocity component.
        for axis, limit in enumerate(self.arena.extents):
            below = self.positions[:, axis] < 0
            above = self.positions[:, axis] > limit
            self.positions[below, axis] *= -1
            if limit > 0:
                self.positions[above, axis] = \
                    2 * limit - self.positions[above, axis]
            else:
                self.positions[above, axis] = 0.0
            flip = (below | above) & self.mobile
            self.velocities[flip, axis] *= -1
        for axis, limit in enumerate(self.arena.extents):
            np.clip(self.positions[:, axis], 0, limit,
                    out=self.positions[:, axis])


class GaussMarkov3D(_MobilityBase):
    """Gauss-Markov 3-D mobility: temporally correlated UAV-style flight.

    Per node and per tick, speed ``s``, heading ``θ`` and pitch ``φ`` each
    follow the mean-reverting recurrence

    ``v' = α·v + (1-α)·v̄ + sqrt(1-α²)·N(0, σ_v)``

    with per-node memory parameter α (a scalar config value, or one α per
    node via the ``alpha=`` constructor argument — heterogeneous fleets mix
    twitchy and smooth flyers in one run).  The velocity vector is
    ``s·(cosθ·cosφ, sinθ·cosφ, sinφ)``; horizontal walls mirror the
    heading, and altitude is clamped into the configured band (pitch flips
    sign at the band edges, so flight paths bounce off the ceiling and
    floor instead of sticking to them).

    Requires a 3-D arena; a ``depth_m=0`` arena degenerates to level 2-D
    flight with the altitude pinned at zero.
    """

    _default_config = GaussMarkovConfig

    def __init__(self, ctx: SimContext, channel: "Channel", *args,
                 arena: Arena | None = None,
                 config: GaussMarkovConfig | None = None,
                 alpha: "float | np.ndarray | None" = None,
                 frozen: Iterable[int] = (),
                 width_m: float | None = None, height_m: float | None = None):
        super().__init__(ctx, channel, *args, arena=arena, config=config,
                         frozen=frozen, name="mobility.gm3d",
                         width_m=width_m, height_m=height_m)
        if self.arena.dim != 3:
            raise ValueError(
                "GaussMarkov3D needs a 3-D arena (Arena(w, h, depth_m=...)); "
                "use depth_m=0.0 for degenerate level flight")
        cfg = self.config
        if alpha is None:
            alpha = cfg.alpha
        self.alpha = np.broadcast_to(np.asarray(alpha, dtype=float),
                                     (self.n,)).copy()
        if ((self.alpha < 0) | (self.alpha > 1)).any():
            raise ValueError("per-node alpha must be in [0, 1]")
        #: sqrt(1-α²) — the stationary-variance-preserving noise gain.
        self._noise_gain = np.sqrt(1.0 - self.alpha**2)

        depth = self.arena.depth_m or 0.0
        lo = 0.0 if cfg.min_altitude_m is None else float(cfg.min_altitude_m)
        hi = depth if cfg.max_altitude_m is None else float(cfg.max_altitude_m)
        if not 0.0 <= lo <= hi <= depth:
            raise ValueError(
                f"altitude band [{lo}, {hi}] must sit inside [0, {depth}]")
        #: Altitude band every mobile node is clamped into.
        self.altitude_band = (lo, hi)

        # Per-node state: speed around the mean, heading uniform, pitch at
        # its mean.  Mean heading is the initial draw (the classic model's
        # per-node preferred direction).
        self.speed = np.maximum(
            0.0, self._rng.normal(cfg.mean_speed_mps, cfg.speed_sigma_mps,
                                  self.n))
        self.heading = self._rng.uniform(0.0, 2 * np.pi, self.n)
        self.mean_heading = self.heading.copy()
        self.pitch = np.full(self.n, cfg.mean_pitch_rad)
        # Out-of-band starting altitudes (placement spans the full depth)
        # are folded into the band immediately so the clamp invariant holds
        # from tick one.
        z = self.positions[:, 2]
        np.clip(z, lo, hi, out=z)

    def _advance(self, dt: float) -> None:
        cfg = self.config
        a = self.alpha
        gain = self._noise_gain
        n = self.n

        self.speed = (a * self.speed
                      + (1.0 - a) * cfg.mean_speed_mps
                      + gain * self._rng.normal(0.0, cfg.speed_sigma_mps, n))
        np.maximum(self.speed, 0.0, out=self.speed)
        self.heading = (a * self.heading
                        + (1.0 - a) * self.mean_heading
                        + gain * self._rng.normal(
                            0.0, cfg.direction_sigma_rad, n))
        self.pitch = (a * self.pitch
                      + (1.0 - a) * cfg.mean_pitch_rad
                      + gain * self._rng.normal(0.0, cfg.pitch_sigma_rad, n))
        np.clip(self.pitch, -cfg.max_pitch_rad, cfg.max_pitch_rad,
                out=self.pitch)

        cos_p = np.cos(self.pitch)
        v = np.column_stack([self.speed * np.cos(self.heading) * cos_p,
                             self.speed * np.sin(self.heading) * cos_p,
                             self.speed * np.sin(self.pitch)])
        self.positions[self.mobile] += v[self.mobile] * dt

        # Horizontal walls: reflect the position, mirror the heading.
        for axis, limit in ((0, self.arena.width_m),
                            (1, self.arena.height_m)):
            below = self.positions[:, axis] < 0
            above = self.positions[:, axis] > limit
            self.positions[below, axis] *= -1
            self.positions[above, axis] = 2 * limit - self.positions[above, axis]
            hit = (below | above) & self.mobile
            if hit.any():
                if axis == 0:
                    self.heading[hit] = np.pi - self.heading[hit]
                    self.mean_heading[hit] = np.pi - self.mean_heading[hit]
                else:
                    self.heading[hit] = -self.heading[hit]
                    self.mean_heading[hit] = -self.mean_heading[hit]
            np.clip(self.positions[:, axis], 0, limit,
                    out=self.positions[:, axis])

        # Altitude: clamp into the band, flip pitch at the edges so the
        # next tick flies back into it.
        lo, hi = self.altitude_band
        z = self.positions[:, 2]
        out_low = z < lo
        out_high = z > hi
        np.clip(z, lo, hi, out=z)
        bounced = (out_low | out_high) & self.mobile
        if bounced.any():
            self.pitch[bounced] *= -1.0


# ------------------------------------------------------------ model registry

_MOBILITY_MODELS: dict[str, type] = {}


def register_mobility_model(name: str, cls: type | None = None):
    """Register a mobility model under ``name`` (usable as a decorator).

    Mirrors the experiment registry: campaigns sweep ``--mobility NAME``
    through :func:`mobility_model` with zero CLI edits.
    """
    def _register(model_cls: type) -> type:
        existing = _MOBILITY_MODELS.get(name)
        if existing is not None and existing is not model_cls:
            raise ValueError(f"mobility model {name!r} already registered")
        _MOBILITY_MODELS[name] = model_cls
        return model_cls

    if cls is not None:
        return _register(cls)
    return _register


def mobility_model(name: str) -> type:
    """The registered mobility model class for ``name``."""
    try:
        return _MOBILITY_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown mobility model {name!r}; choose from "
            f"{mobility_model_names()}") from None


def mobility_model_names() -> list[str]:
    """Every registered mobility model name, sorted."""
    return sorted(_MOBILITY_MODELS)


register_mobility_model("rwp", RandomWaypoint)
register_mobility_model("rwalk", RandomWalk)
register_mobility_model("gauss_markov_3d", GaussMarkov3D)
