"""Node mobility (the MANET dimension of the paper's problem setting).

The paper positions Routeless Routing for "wireless networks with dynamic
topological changes"; its own evaluation moves no nodes (failures stand in
for dynamics), but mobility is the canonical MANET stressor and the natural
extension experiment.  Two classic models:

* :class:`RandomWaypoint` — each node picks a uniform random destination,
  travels there at a uniform random speed, pauses, repeats.  The standard
  model of the AODV/DSR evaluation literature.
* :class:`RandomWalk` — each node picks a heading and speed for an epoch,
  reflecting off the terrain boundary.

Both are driven by one vectorized manager that advances every node each tick
and pushes the new positions into the channel (which re-derives its link
budget).  Ticks are coarse (default 0.25 s) relative to packet airtimes, the
usual discrete-mobility approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.sim.components import Component, SimContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.channel import Channel

__all__ = ["MobilityConfig", "RandomWaypoint", "RandomWalk"]


@dataclass(frozen=True)
class MobilityConfig:
    min_speed_mps: float = 1.0
    max_speed_mps: float = 10.0
    #: Pause at each waypoint, uniform over this range (RandomWaypoint only).
    min_pause_s: float = 0.0
    max_pause_s: float = 2.0
    #: Heading/speed epoch length (RandomWalk only).
    epoch_s: float = 5.0
    tick_s: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("need 0 < min_speed <= max_speed")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.min_pause_s < 0 or self.max_pause_s < self.min_pause_s:
            raise ValueError("need 0 <= min_pause <= max_pause")


class _MobilityBase(Component):
    """Shared tick loop: advance all mobile nodes, push positions to the
    channel."""

    def __init__(self, ctx: SimContext, channel: "Channel",
                 width_m: float, height_m: float,
                 config: MobilityConfig | None = None,
                 frozen: Iterable[int] = (), name: str = "mobility"):
        super().__init__(ctx, name)
        self.channel = channel
        self.width_m = float(width_m)
        self.height_m = float(height_m)
        self.config = config if config is not None else MobilityConfig()
        self.positions = channel.positions.copy()
        self.n = len(self.positions)
        frozen_set = set(frozen)
        #: Mask of nodes that move (frozen nodes — e.g. sinks — stay put).
        self.mobile = np.array([i not in frozen_set for i in range(self.n)])
        self._rng = self.rng()
        self.ticks = 0
        self.distance_moved_m = np.zeros(self.n)
        self.schedule(self.config.tick_s, self._tick)

    def _tick(self) -> None:
        before = self.positions.copy()
        self._advance(self.config.tick_s)
        self.distance_moved_m += np.linalg.norm(self.positions - before, axis=1)
        self.ticks += 1
        # Incremental channel update: only the nodes that actually moved this
        # tick (paused / frozen nodes sat still) — the sparse link budget
        # recomputes just their grid neighborhoods, and a tick where nothing
        # moved costs nothing at all.
        moved = np.flatnonzero(np.any(self.positions != before, axis=1))
        if len(moved):
            self.channel.move_nodes(moved, self.positions[moved])
        self.schedule(self.config.tick_s, self._tick)

    def _advance(self, dt: float) -> None:
        raise NotImplementedError


class RandomWaypoint(_MobilityBase):
    """The random waypoint model."""

    def __init__(self, ctx: SimContext, channel: "Channel",
                 width_m: float, height_m: float,
                 config: MobilityConfig | None = None,
                 frozen: Iterable[int] = ()):
        super().__init__(ctx, channel, width_m, height_m, config, frozen,
                         name="mobility.rwp")
        self.waypoints = self._draw_waypoints(self.n)
        self.speeds = self._draw_speeds(self.n)
        self.pause_until = np.zeros(self.n)

    def _draw_waypoints(self, n: int) -> np.ndarray:
        xs = self._rng.uniform(0, self.width_m, n)
        ys = self._rng.uniform(0, self.height_m, n)
        return np.column_stack([xs, ys])

    def _draw_speeds(self, n: int) -> np.ndarray:
        return self._rng.uniform(self.config.min_speed_mps,
                                 self.config.max_speed_mps, n)

    def _advance(self, dt: float) -> None:
        now = self.now
        moving = self.mobile & (self.pause_until <= now)
        if not moving.any():
            return
        delta = self.waypoints[moving] - self.positions[moving]
        dist = np.linalg.norm(delta, axis=1)
        step = self.speeds[moving] * dt
        arrived = dist <= step

        # Walk toward the waypoint (clamped at arrival).
        scale = np.where(arrived, 1.0, np.divide(step, dist, where=dist > 0,
                                                 out=np.ones_like(dist)))
        self.positions[moving] += delta * scale[:, None]

        # Arrivals: pause, then a fresh waypoint and speed.
        arrived_ids = np.flatnonzero(moving)[arrived]
        if len(arrived_ids):
            self.pause_until[arrived_ids] = now + self._rng.uniform(
                self.config.min_pause_s, self.config.max_pause_s,
                len(arrived_ids))
            self.waypoints[arrived_ids] = self._draw_waypoints(len(arrived_ids))
            self.speeds[arrived_ids] = self._draw_speeds(len(arrived_ids))


class RandomWalk(_MobilityBase):
    """Random direction walk with boundary reflection."""

    def __init__(self, ctx: SimContext, channel: "Channel",
                 width_m: float, height_m: float,
                 config: MobilityConfig | None = None,
                 frozen: Iterable[int] = ()):
        super().__init__(ctx, channel, width_m, height_m, config, frozen,
                         name="mobility.rw")
        self.velocities = self._draw_velocities(self.n)
        self._epoch_end = self.config.epoch_s

    def _draw_velocities(self, n: int) -> np.ndarray:
        speed = self._rng.uniform(self.config.min_speed_mps,
                                  self.config.max_speed_mps, n)
        heading = self._rng.uniform(0, 2 * np.pi, n)
        return np.column_stack([speed * np.cos(heading), speed * np.sin(heading)])

    def _advance(self, dt: float) -> None:
        if self.now >= self._epoch_end:
            self.velocities = self._draw_velocities(self.n)
            self._epoch_end = self.now + self.config.epoch_s
        self.positions[self.mobile] += self.velocities[self.mobile] * dt
        # Reflect off the terrain boundary, flipping the velocity component.
        for axis, limit in ((0, self.width_m), (1, self.height_m)):
            below = self.positions[:, axis] < 0
            above = self.positions[:, axis] > limit
            self.positions[below, axis] *= -1
            self.positions[above, axis] = 2 * limit - self.positions[above, axis]
            flip = (below | above) & self.mobile
            self.velocities[flip, axis] *= -1
        np.clip(self.positions[:, 0], 0, self.width_m, out=self.positions[:, 0])
        np.clip(self.positions[:, 1], 0, self.height_m, out=self.positions[:, 1])
