"""Token-based distributed mutual exclusion via local leader election.

The paper's introduction names this as the second natural instance of the
local leader election problem: "when the current token holder leaves the
critical section, the token must be passed to a successor, and this
successor is indeed a local leader among all other nodes that are competing
for the token."

This module realizes it for a single-hop neighborhood (the *local* setting
the paper defines):

* one node starts holding the token; applications call :meth:`TokenMutex.acquire`;
* the holder's **release broadcast** is the implicit synchronization point;
* every node with a pending request competes with a backoff derived from its
  **waiting time** (longest-waiting wins — an aging policy, so the election
  metric buys approximate FIFO fairness for free);
* the releasing holder is the **arbiter**: it grants the token to the first
  announcement it hears (the grant is authoritative, racing claimants back
  off), and re-offers the token if nobody answers but requests exist;
* an idle holder re-offers the token whenever it overhears a request.

Safety (at most one holder) follows from the grant being the only way to
obtain the token; liveness (every requester eventually served) from the
arbiter re-offering with retries; approximate fairness from the aging
metric.  All three are exercised in ``tests/core/test_mutex.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.backoff import BackoffInput
from repro.core.timer import CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.packet import DEFAULT_CTRL_SIZE, Packet, PacketKind, SeqCounter
from repro.sim.components import Component, SimContext

__all__ = ["MutexConfig", "MutexState", "TokenMutex"]


class MutexState(enum.Enum):
    """A node's position in the token lifecycle."""
    IDLE = "idle"                 # no token, no pending request
    WAITING = "waiting"           # requested, not yet granted
    HOLDING_IDLE = "holding_idle" # token in hand, outside the critical section
    IN_CS = "in_cs"               # token in hand, inside the critical section
    RELEASING = "releasing"       # offer broadcast, arbitrating the successor


@dataclass(frozen=True)
class MutexConfig:
    """Backoff, aging and arbiter parameters of the token election."""
    #: Full-scale election delay; a requester waiting ``w`` seconds bids
    #: ``lam / (1 + w / aging_s)`` plus jitter.
    lam: float = 0.02
    aging_s: float = 1.0
    jitter: float = 0.002
    #: Arbiter patience for an announcement before re-offering.
    offer_timeout_s: float = 0.1
    #: Re-offers before the holder gives up (it keeps the token).
    max_reoffers: int = 5
    packet_size: int = DEFAULT_CTRL_SIZE


class TokenMutex(Component):
    """One node's participant in the token-election mutual exclusion."""

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: MutexConfig | None = None,
                 has_token: bool = False):
        super().__init__(ctx, f"mutex[{node_id}]")
        self.node_id = node_id
        self.mac = mac
        self.config = config if config is not None else MutexConfig()
        self.state = MutexState.HOLDING_IDLE if has_token else MutexState.IDLE
        self._rng = self.rng("policy")
        self._seq = SeqCounter()
        self._requested_at: Optional[float] = None
        self._on_acquire: Optional[Callable[[], None]] = None
        self._claim_timer: Optional[CandidateTimer] = None
        self._offer_handle = None
        self._reoffers = 0
        self._epoch = 0  # token transfer count, carried on offers
        self._self_pending: Optional[Callable[[], None]] = None

        #: Fires (no args) when this node obtains the token.
        self.acquired = self.outport("acquired")

        # statistics
        self.grants_issued = 0
        self.times_acquired = 0
        self.wait_times: list[float] = []

        mac.to_net.connect(self._on_packet)

    # ------------------------------------------------------------------ api

    def acquire(self, on_acquire: Callable[[], None] | None = None) -> None:
        """Request the critical section.  ``on_acquire`` fires on grant."""
        if self.state in (MutexState.HOLDING_IDLE,):
            self.state = MutexState.IN_CS
            self.times_acquired += 1
            self.wait_times.append(0.0)
            if on_acquire is not None:
                on_acquire()
            if self.acquired.connected:
                self.acquired()
            return
        if self.state == MutexState.RELEASING:
            # We are offering the token away; remember that we want it again
            # — served when the offer lapses unclaimed, or re-queued as an
            # ordinary request once a successor takes over.
            self._self_pending = on_acquire if on_acquire is not None else (lambda: None)
            return
        if self.state in (MutexState.WAITING, MutexState.IN_CS):
            return  # one outstanding request at a time
        self.state = MutexState.WAITING
        self._requested_at = self.now
        self._on_acquire = on_acquire
        # Tell an idle holder somebody wants the token.
        self._send(PacketKind.SYNC, payload=("request", self._epoch))

    def release(self) -> None:
        """Leave the critical section and open the successor election."""
        if self.state != MutexState.IN_CS:
            raise RuntimeError(f"release() in state {self.state}")
        self._open_offer()

    @property
    def holds_token(self) -> bool:
        return self.state in (MutexState.HOLDING_IDLE, MutexState.IN_CS,
                              MutexState.RELEASING)

    # ---------------------------------------------------------------- offer

    def _open_offer(self) -> None:
        self.state = MutexState.RELEASING
        self._reoffers = 0
        self._broadcast_offer()

    def _broadcast_offer(self) -> None:
        self.trace("mutex.offer", epoch=self._epoch)
        self._send(PacketKind.ANNOUNCE, payload=("offer", self._epoch))
        self._offer_handle = self.schedule(
            self.config.offer_timeout_s, self._offer_timeout)

    def _offer_timeout(self) -> None:
        self._offer_handle = None
        if self.state != MutexState.RELEASING:
            return
        self._reoffers += 1
        if self._reoffers > self.config.max_reoffers:
            # Nobody wants it: keep the token, idle — unless we queued a
            # request against ourselves while releasing.
            self.state = MutexState.HOLDING_IDLE
            self.trace("mutex.idle", epoch=self._epoch)
            pending = self._self_pending
            self._self_pending = None
            if pending is not None:
                self.acquire(pending)
            return
        self._broadcast_offer()

    # ---------------------------------------------------------------- claim

    def _claim_delay(self) -> float:
        waited = self.now - (self._requested_at if self._requested_at is not None else self.now)
        aged = self.config.lam / (1.0 + waited / self.config.aging_s)
        return aged + float(self._rng.uniform(0.0, self.config.jitter))

    def _on_offer(self, packet: Packet) -> None:
        offer_epoch = packet.payload[1]
        if self.state != MutexState.WAITING:
            return
        if self._claim_timer is None:
            self._claim_timer = CandidateTimer(self, self._claim_fire)
        self._claim_timer.arm(self._claim_delay())
        self._pending_epoch = offer_epoch

    def _claim_fire(self) -> None:
        if self.state != MutexState.WAITING:
            return
        self.trace("mutex.claim", epoch=self._pending_epoch)
        self._send(PacketKind.SYNC, payload=("claim", self._pending_epoch))

    # ---------------------------------------------------------------- grant

    def _on_claim(self, packet: Packet) -> None:
        if self.state != MutexState.RELEASING:
            return
        claim_epoch = packet.payload[1]
        if claim_epoch != self._epoch:
            return  # a stale claim from a previous reign
        if self._offer_handle is not None:
            self._offer_handle.cancel()
            self._offer_handle = None
        winner = packet.origin
        self.grants_issued += 1
        self._epoch += 1
        self.trace("mutex.grant", winner=winner, epoch=self._epoch)
        self._send(PacketKind.NET_ACK, payload=("grant", self._epoch, winner))
        self.state = MutexState.IDLE
        pending = self._self_pending
        self._self_pending = None
        if pending is not None:
            self.acquire(pending)

    def _on_grant(self, packet: Packet) -> None:
        _, epoch, winner = packet.payload
        self._epoch = max(self._epoch, epoch)
        if winner != self.node_id:
            # Somebody else won: if our claim is pending, cancel it and wait
            # for the next offer (our aged bid only gets stronger).
            if self._claim_timer is not None:
                self._claim_timer.suppress()
            return
        if self.state != MutexState.WAITING:
            return
        if self._claim_timer is not None:
            self._claim_timer.suppress()
        waited = self.now - (self._requested_at or self.now)
        self.wait_times.append(waited)
        self.times_acquired += 1
        self.state = MutexState.IN_CS
        self.trace("mutex.acquired", waited=waited, epoch=epoch)
        callback = self._on_acquire
        self._on_acquire = None
        self._requested_at = None
        if callback is not None:
            callback()
        if self.acquired.connected:
            self.acquired()

    def _on_request(self, packet: Packet) -> None:
        # An idle holder re-opens the offer when somebody asks.
        if self.state == MutexState.HOLDING_IDLE:
            self._open_offer()

    # ------------------------------------------------------------- plumbing

    def _send(self, kind: PacketKind, payload) -> None:
        self.mac.send(Packet(
            kind=kind,
            origin=self.node_id,
            seq=self._seq.next(kind),
            size_bytes=self.config.packet_size,
            created_at=self.now,
            payload=payload,
        ))

    def _on_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if not isinstance(packet.payload, tuple) or not packet.payload:
            return
        tag = packet.payload[0]
        if tag == "offer":
            self._on_offer(packet)
        elif tag == "claim":
            self._on_claim(packet)
        elif tag == "grant":
            self._on_grant(packet)
        elif tag == "request":
            self._on_request(packet)
