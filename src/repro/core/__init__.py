"""The paper's primary contribution: local leader election via prioritized backoff."""

from repro.core.backoff import (
    BackoffInput,
    BackoffPolicy,
    FunctionBackoff,
    HopCountBackoff,
    RandomBackoff,
    SignalStrengthBackoff,
)
from repro.core.election import (
    CandidateState,
    CandidateTimer,
    ElectionConfig,
    ElectionNode,
    ElectionRound,
)
from repro.core.clustering import ClusterConfig, ClusterNode
from repro.core.coordinators import CoordinatorConfig, CoordinatorRole, SpanCoordinator
from repro.core.mutex import MutexConfig, MutexState, TokenMutex

__all__ = [
    "BackoffInput",
    "BackoffPolicy",
    "CandidateState",
    "ClusterConfig",
    "ClusterNode",
    "CoordinatorConfig",
    "CoordinatorRole",
    "SpanCoordinator",
    "CandidateTimer",
    "ElectionConfig",
    "ElectionNode",
    "ElectionRound",
    "FunctionBackoff",
    "HopCountBackoff",
    "MutexConfig",
    "MutexState",
    "TokenMutex",
    "RandomBackoff",
    "SignalStrengthBackoff",
]
