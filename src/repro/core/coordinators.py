"""Span-style coordinator election (Chen, Jamieson, Balakrishnan & Morris
[18] — the prior art the paper credits for using backoff delays as
priorities).

Span maintains a routing backbone in a dense network by electing a subset of
*coordinators* that stay awake while everyone else sleeps.  The election is
pure prioritized backoff, which is why the paper cites it: a node that sees
two neighbors with no path between them through existing coordinators
announces candidacy after a delay that shrinks with its remaining **energy**
and its **utility** (how many broken neighbor pairs it would bridge).
Overhearing another announcement re-evaluates — and usually cancels — a
pending candidacy: announcement/suppression again.

Implemented here on the same MAC/election machinery as everything else:

* neighbor sets come from HELLO beacons (one broadcast per node per round);
* a candidate's backoff is ``lam · ((1−energy) + (1−utility))/2 + jitter``
  (Span's formula, simplified to our two factors);
* coordinators re-evaluate each round and *withdraw* when every neighbor
  pair they bridge is covered redundantly, letting depleted nodes rotate
  out — the energy term then favors fresh replacements.

The invariants tested: the coordinator set dominates the network (every
node is a coordinator or hears one), bridges every 2-hop neighbor pair,
stays a small fraction of a dense network, and rotates with energy drain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.timer import CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.packet import DEFAULT_CTRL_SIZE, Packet, PacketKind, SeqCounter
from repro.sim.components import Component, SimContext

__all__ = ["CoordinatorConfig", "CoordinatorRole", "SpanCoordinator"]


class CoordinatorRole(enum.Enum):
    """A node's current position in the Span backbone lifecycle."""
    MEMBER = "member"
    CANDIDATE = "candidate"
    COORDINATOR = "coordinator"


@dataclass(frozen=True)
class CoordinatorConfig:
    """Timing and energy parameters of the coordinator election."""
    #: Evaluation round period (jittered per node).
    round_s: float = 1.0
    #: Full-scale candidacy backoff.
    lam: float = 0.1
    jitter: float = 0.01
    #: Rounds a coordinator serves before considering withdrawal.
    tenure_rounds: int = 3
    #: Energy drained per round of coordinator duty (fraction of full).
    duty_drain: float = 0.05
    packet_size: int = DEFAULT_CTRL_SIZE
    #: Forget neighbors not heard from for this many rounds.
    neighbor_ttl_rounds: int = 3


class SpanCoordinator(Component):
    """One node's Span agent: HELLO beacons, candidacy, withdrawal."""

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: CoordinatorConfig | None = None,
                 energy: float = 1.0):
        super().__init__(ctx, f"span[{node_id}]")
        self.node_id = node_id
        self.mac = mac
        self.config = config if config is not None else CoordinatorConfig()
        self.energy = energy
        self.role = CoordinatorRole.MEMBER
        self._rng = self.rng("span")
        self._seq = SeqCounter()
        #: neighbor -> (last-heard time, its neighbor set, is_coordinator)
        self._neighbors: dict[int, tuple[float, frozenset[int], bool]] = {}
        self._timer: Optional[CandidateTimer] = None
        self._withdraw_timer: Optional[CandidateTimer] = None
        self._tenure = 0
        self.announcements = 0
        self.withdrawals = 0

        mac.to_net.connect(self._on_packet)
        # Stagger the first beacon across the round.
        self.schedule(float(self._rng.uniform(0.0, self.config.round_s)),
                      self._round)

    # ------------------------------------------------------------- rounds

    def _round(self) -> None:
        self._expire_neighbors()
        self._beacon()
        if self.role == CoordinatorRole.COORDINATOR:
            self.energy = max(0.0, self.energy - self.config.duty_drain)
            self._tenure += 1
            if self._tenure >= self.config.tenure_rounds and self._redundant():
                # Withdrawal is itself a backoff race: the most depleted of
                # several mutually-redundant coordinators steps down first,
                # and the survivor (no longer redundant) cancels.  The scale
                # is the round period, so that races span the phase offset
                # between different nodes' evaluation rounds.
                delay = (self.config.round_s * self.energy +
                         float(self._rng.uniform(0.0, self.config.jitter)))
                if self._withdraw_timer is None:
                    self._withdraw_timer = CandidateTimer(self, self._try_withdraw)
                if not self._withdraw_timer.armed:
                    self._withdraw_timer.arm(delay)
        elif self.role == CoordinatorRole.MEMBER:
            self._evaluate_candidacy()
        jitter = float(self._rng.uniform(-0.05, 0.05)) * self.config.round_s
        self.schedule(self.config.round_s + jitter, self._round)

    def _beacon(self) -> None:
        payload = (
            "hello",
            frozenset(self._neighbors),
            self.role == CoordinatorRole.COORDINATOR,
        )
        self._send(payload)

    def _expire_neighbors(self) -> None:
        ttl = self.config.neighbor_ttl_rounds * self.config.round_s
        cutoff = self.now - ttl
        for nid in [n for n, (heard, _, _) in self._neighbors.items()
                    if heard < cutoff]:
            del self._neighbors[nid]

    # ---------------------------------------------------------- candidacy

    def _coordinator_ids(self) -> set[int]:
        ids = {nid for nid, (_, _, is_coord) in self._neighbors.items() if is_coord}
        if self.role == CoordinatorRole.COORDINATOR:
            ids.add(self.node_id)
        return ids

    def _uncovered_pairs(self, exclude_self: bool = False) -> tuple[int, int]:
        """(uncovered, total) neighbor pairs; a pair is covered when its two
        nodes are direct neighbors or share a coordinator neighbor."""
        coordinators = self._coordinator_ids()
        if exclude_self:
            coordinators.discard(self.node_id)
        ids = sorted(self._neighbors)
        uncovered = total = 0
        for i, a in enumerate(ids):
            _, a_nbrs, _ = self._neighbors[a]
            for b in ids[i + 1:]:
                _, b_nbrs, _ = self._neighbors[b]
                total += 1
                if b in a_nbrs or a in b_nbrs:
                    continue  # directly connected
                # A pair is bridged only by a *common* coordinator neighbor
                # (a relay both can actually reach) — a and b being
                # coordinators themselves connects them to nothing.
                if not (a_nbrs & b_nbrs & coordinators):
                    uncovered += 1
        return uncovered, total

    def _evaluate_candidacy(self) -> None:
        uncovered, total = self._uncovered_pairs()
        if uncovered == 0:
            if self._timer is not None:
                self._timer.suppress()
            return
        utility = uncovered / total if total else 1.0
        delay = (self.config.lam *
                 ((1.0 - self.energy) + (1.0 - utility)) / 2.0 +
                 float(self._rng.uniform(0.0, self.config.jitter)))
        self.role = CoordinatorRole.CANDIDATE
        if self._timer is None:
            self._timer = CandidateTimer(self, self._become_coordinator)
        self._timer.arm(delay)
        self.trace("span.candidate", delay=delay, utility=utility,
                   energy=self.energy)

    def _become_coordinator(self) -> None:
        # Re-check: announcements heard during the backoff may have covered
        # everything (the suppression path re-evaluates, but be safe).
        uncovered, _ = self._uncovered_pairs()
        if uncovered == 0:
            self.role = CoordinatorRole.MEMBER
            return
        self.role = CoordinatorRole.COORDINATOR
        self._tenure = 0
        self.announcements += 1
        self.trace("span.announce")
        self._send(("coord", True))

    def _redundant(self) -> bool:
        uncovered, _ = self._uncovered_pairs(exclude_self=True)
        return uncovered == 0

    def _try_withdraw(self) -> None:
        if self.role == CoordinatorRole.COORDINATOR and self._redundant():
            self._withdraw()

    def _withdraw(self) -> None:
        self.role = CoordinatorRole.MEMBER
        self.withdrawals += 1
        self.trace("span.withdraw")
        self._send(("coord", False))

    # ------------------------------------------------------------- wiring

    def _send(self, payload) -> None:
        self.mac.send(Packet(
            kind=PacketKind.ANNOUNCE,
            origin=self.node_id,
            seq=self._seq.next("span"),
            size_bytes=self.config.packet_size,
            created_at=self.now,
            payload=("span",) + payload,
        ))

    def _on_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        payload = packet.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == "span"):
            return
        tag = payload[1]
        if tag == "hello":
            _, _, their_neighbors, is_coord = payload
            self._neighbors[packet.origin] = (self.now, their_neighbors, is_coord)
        elif tag == "coord":
            becoming = payload[2]
            entry = self._neighbors.get(packet.origin)
            their_neighbors = entry[1] if entry else frozenset()
            self._neighbors[packet.origin] = (self.now, their_neighbors, becoming)
            if not becoming and self._withdraw_timer is not None \
                    and self._withdraw_timer.armed and not self._redundant():
                # A peer withdrew first; we are needed again.
                self._withdraw_timer.suppress()
            if becoming and self.role == CoordinatorRole.CANDIDATE:
                # Somebody answered the same need: re-evaluate; usually this
                # suppresses our pending candidacy.
                uncovered, _ = self._uncovered_pairs()
                if uncovered == 0 and self._timer is not None:
                    self._timer.suppress()
                    self.role = CoordinatorRole.MEMBER
                    self.trace("span.suppressed", by=packet.origin)

    # -------------------------------------------------------------- views

    @property
    def is_coordinator(self) -> bool:
        return self.role == CoordinatorRole.COORDINATOR

    def known_coordinators(self) -> set[int]:
        return self._coordinator_ids()
