"""LEACH-style cluster-head election on the leader-election primitive.

The paper cites LEACH [30] among the sensor-network protocols its primitive
speaks to; cluster-head selection *is* a local leader election — each round,
every neighborhood must elect one head to aggregate its members' readings,
and rotating the role with residual energy is exactly a prioritized backoff.

Protocol per round (round start times are locally scheduled; no global
clock — neighbors synchronize implicitly on the first HEAD announcement
they hear, as Section 2 prescribes):

1. At its round tick, an undecided node arms a candidacy backoff
   ``λ · (1 − energy) + jitter`` — the fullest battery bids fastest.
2. Timer fires → announce HEAD; serve the round (energy drain ∝ members).
3. Hearing a HEAD announcement first → cancel candidacy, JOIN the
   strongest-signal head heard this round (signal strength again standing
   in for proximity, à la SSAF).
4. Round ends → everyone resets; rotation emerges from the energy term.

Invariants tested: every node is a head or a member of an in-range head,
heads are a minority in dense networks, and the head role rotates so that
energy drains evenly (Jain index over residual energy stays high).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.timer import CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.packet import DEFAULT_CTRL_SIZE, Packet, PacketKind, SeqCounter
from repro.sim.components import Component, SimContext

__all__ = ["ClusterConfig", "ClusterNode"]


@dataclass(frozen=True)
class ClusterConfig:
    """Round structure and energy economics of the cluster-head election."""
    round_s: float = 2.0
    #: Time from a node's round start until it commits to a head.  Must
    #: exceed the phase spread between nodes' local round clocks (round/4)
    #: plus the longest candidacy backoff.
    election_window_s: float = 0.75
    lam: float = 0.05
    jitter: float = 0.005
    #: A head announcement suppresses new candidacies for this long — it
    #: spans round boundaries so late-phased nodes do not re-elect over a
    #: standing head.
    offer_valid_s: float = 1.0
    #: Rounds a node sits out after serving as head (LEACH's rotation rule).
    cooldown_rounds: int = 2
    #: Energy a head spends per served round (fraction of full charge).
    head_drain: float = 0.08
    #: Energy a member spends per round.
    member_drain: float = 0.01
    packet_size: int = DEFAULT_CTRL_SIZE


class ClusterNode(Component):
    """One node's LEACH-style agent."""

    def __init__(self, ctx: SimContext, node_id: int, mac: CsmaMac,
                 config: ClusterConfig | None = None, energy: float = 1.0):
        super().__init__(ctx, f"cluster[{node_id}]")
        self.node_id = node_id
        self.mac = mac
        self.config = config if config is not None else ClusterConfig()
        self.energy = energy
        self._rng = self.rng("cluster")
        self._seq = SeqCounter()
        self._timer: Optional[CandidateTimer] = None
        self.round_no = -1
        self.is_head = False
        #: Chosen head for the current round (self when head, None if orphan).
        self.head: Optional[int] = None
        #: Strongest recent head announcement: (power, head id, heard at).
        self._best_offer: Optional[tuple[float, int, float]] = None
        self._last_head_round = -10**9
        self.members: set[int] = set()

        self.rounds_as_head = 0
        self.rounds_as_member = 0
        self.rounds_orphan = 0

        mac.to_net.connect(self._on_packet)
        # Local (unsynchronized) round clock with a random phase.
        self.schedule(float(self._rng.uniform(0.0, self.config.round_s / 4)),
                      self._begin_round)

    # --------------------------------------------------------------- rounds

    def _begin_round(self) -> None:
        self._settle_previous_round()
        was_orphan = self.round_no >= 0 and not self.is_head and self.head is None
        self.round_no += 1
        self.is_head = False
        self.head = None
        self.members = set()
        # A stale offer no longer suppresses; a fresh one still does.
        if self._best_offer is not None and \
                self.now - self._best_offer[2] > self.config.offer_valid_s:
            self._best_offer = None
        cooling = (self.round_no - self._last_head_round) <= self.config.cooldown_rounds
        suppressed = self._best_offer is not None
        if self.energy > 0.0 and not suppressed and (not cooling or was_orphan):
            delay = (self.config.lam * (1.0 - self.energy) +
                     float(self._rng.uniform(0.0, self.config.jitter)))
            if self._timer is None:
                self._timer = CandidateTimer(self, self._become_head)
            self._timer.arm(delay)
        self.schedule(self.config.election_window_s, self._choose_head)
        self.schedule(self.config.round_s, self._begin_round)

    def _settle_previous_round(self) -> None:
        if self.round_no < 0:
            return
        if self.is_head:
            self.rounds_as_head += 1
            self.energy = max(0.0, self.energy - self.config.head_drain)
        elif self.head is not None:
            self.rounds_as_member += 1
            self.energy = max(0.0, self.energy - self.config.member_drain)
        else:
            self.rounds_orphan += 1

    def _become_head(self) -> None:
        self.is_head = True
        self.head = self.node_id
        self._last_head_round = self.round_no
        self.trace("cluster.head", round=self.round_no, energy=self.energy)
        self._send(("head", self.round_no))

    def _choose_head(self) -> None:
        """End of the election window: members commit to the best offer."""
        if self.is_head or self.head is not None:
            return
        if self._timer is not None:
            self._timer.suppress()
        if self._best_offer is None:
            self.trace("cluster.orphan", round=self.round_no)
            return
        _, head_id, _ = self._best_offer
        self.head = head_id
        self.trace("cluster.join", head=head_id, round=self.round_no)
        self._send(("join", self.round_no, head_id))

    # -------------------------------------------------------------- receive

    def _on_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        payload = packet.payload
        if not (isinstance(payload, tuple) and payload and payload[0] == "cl"):
            return
        tag = payload[1]
        if tag == "head":
            # First head heard suppresses our own candidacy (the election);
            # among several, the strongest signal wins our membership.
            if not self.is_head and self._timer is not None:
                self._timer.suppress()
            offer = (rx.power_dbm, packet.origin, self.now)
            if self._best_offer is None or offer[:2] > self._best_offer[:2] \
                    or self.now - self._best_offer[2] > self.config.offer_valid_s:
                self._best_offer = offer
        elif tag == "join":
            head_id = payload[3]
            if head_id == self.node_id and self.is_head:
                self.members.add(packet.origin)

    def _send(self, payload) -> None:
        self.mac.send(Packet(
            kind=PacketKind.ANNOUNCE,
            origin=self.node_id,
            seq=self._seq.next("cluster"),
            size_bytes=self.config.packet_size,
            created_at=self.now,
            payload=("cl",) + payload,
        ))
