"""The arm-a-backoff / cancel-on-overhear timer — the kernel of every election.

Lives in its own module (with no dependency on the packet layer) because both
the pure election protocol and the network protocols that *are* elections
(SSAF, Routeless Routing) build on it.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.sim.components import Component

__all__ = ["CandidateState", "CandidateTimer"]


class CandidateState(enum.Enum):
    """Lifecycle of one candidacy: armed, announced, or silenced."""
    IDLE = "idle"
    BACKING_OFF = "backing_off"
    ANNOUNCED = "announced"
    SUPPRESSED = "suppressed"


class CandidateTimer:
    """Tracks one node's candidacy in one election instance.

    ``arm`` starts (or restarts) the backoff countdown; ``suppress`` cancels
    it when another candidate is heard; the callback fires if nobody
    suppressed us first — at which point this node *is* the local leader.
    """

    __slots__ = ("state", "_handle", "_component", "_on_win")

    def __init__(self, component: Component, on_win: Callable[[], None]):
        self._component = component
        self._on_win = on_win
        self._handle = None
        self.state = CandidateState.IDLE

    def arm(self, delay: float) -> None:
        """Start (or restart) the backoff countdown."""
        if self._handle is not None:
            self._handle.cancel()
        self.state = CandidateState.BACKING_OFF
        self._handle = self._component.schedule(delay, self._fire)

    def suppress(self) -> bool:
        """Cancel the candidacy (another node won).  True if a timer died."""
        armed = self._handle is not None and not self._handle.cancelled
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self.state == CandidateState.BACKING_OFF:
            self.state = CandidateState.SUPPRESSED
        return armed

    def _fire(self) -> None:
        self._handle = None
        self.state = CandidateState.ANNOUNCED
        self._on_win()

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled
