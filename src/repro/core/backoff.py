"""Backoff-delay policies — the heart of the local leader election solution.

Section 2: "The heart of the solution is how to derive the backoff delay
based on a metric ... so that the most desirable node would have the greatest
chance of being elected a leader."  Each policy here maps per-candidate
observations to a delay in seconds; the candidate with the smallest delay
wins the election (transmits first and silences the rest).

Policies
--------
:class:`RandomBackoff`
    The CSMA-style fully random delay.  Used by counter-1 flooding; the paper
    calls it a waste of the prioritization opportunity.
:class:`SignalStrengthBackoff`
    SSAF's metric (Section 3): weaker received signal ⇒ probably farther from
    the sender ⇒ shorter delay ⇒ higher forwarding priority.
:class:`HopCountBackoff`
    Routeless Routing's metric (Section 4.1): fewer table hops to the target
    than the sender expected ⇒ shorter delay.  The exact equation is garbled
    in the surviving text; the reconstruction here satisfies both properties
    the prose states (see DESIGN.md §2).
:class:`FunctionBackoff`
    Escape hatch for experiments with custom metrics.

All delays are strictly positive to respect causality in the event kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "BackoffInput",
    "BackoffPolicy",
    "RandomBackoff",
    "SignalStrengthBackoff",
    "HopCountBackoff",
    "FunctionBackoff",
]


@dataclass(frozen=True)
class BackoffInput:
    """Everything a candidate node observed at the implicit sync point.

    Fields irrelevant to a given policy are simply left at their defaults;
    a policy raises ``ValueError`` if a field it *requires* is missing.
    """

    rng: np.random.Generator
    #: Received signal strength of the packet that triggered the election.
    rx_power_dbm: Optional[float] = None
    #: This node's active-node-table distance to the target (hops);
    #: ``None`` when the node has no entry for the target.
    table_hops: Optional[int] = None
    #: The expected-hop-count field carried by the packet.
    expected_hops: Optional[int] = None
    #: Free-form application metric (e.g. waiting time, battery charge) for
    #: custom policies — the paper's point is that *any* local quantity can
    #: prioritize an election.
    metric: Optional[float] = None


class BackoffPolicy:
    """Interface: observations in, delay (seconds) out."""

    def delay(self, observed: BackoffInput) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class RandomBackoff(BackoffPolicy):
    """Uniform random delay over ``[0, max_delay]`` — no prioritization."""

    max_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")

    def delay(self, observed: BackoffInput) -> float:
        return float(observed.rng.uniform(0.0, self.max_delay))


@dataclass(frozen=True)
class SignalStrengthBackoff(BackoffPolicy):
    """Delay grows with received signal strength (i.e. with proximity).

    The received power is inverted through a path-loss exponent into an
    estimated distance fraction ``ρ = d_est / range ∈ (0, 1]`` — at the
    receive threshold a node is presumed at the edge of the range (ρ = 1) and
    gets delay ≈ 0; a node right next to the sender gets delay ≈ ``lam``.
    A small uniform jitter desynchronizes equidistant nodes, which is what
    keeps "likely to be far" from requiring "provably the farthest"
    (Section 3: SSAF "does not intend to precisely select the furthest node
    every time").

    Parameters
    ----------
    lam:
        Full-scale delay in seconds.
    rx_threshold_dbm:
        Power at the edge of the transmission range.
    path_loss_exponent:
        Exponent of the assumed large-scale model (2 = free space).
    jitter:
        Upper bound of the additive uniform jitter, seconds.
    """

    lam: float = 0.05
    rx_threshold_dbm: float = -64.0
    path_loss_exponent: float = 2.0
    jitter: float = 0.002

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.jitter < 0:
            raise ValueError("lam must be positive and jitter non-negative")
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")

    def distance_fraction(self, rx_power_dbm: float) -> float:
        """Estimated distance as a fraction of the transmission range."""
        exponent = (self.rx_threshold_dbm - rx_power_dbm) / (
            10.0 * self.path_loss_exponent
        )
        return float(min(1.0, 10.0**exponent))

    def delay(self, observed: BackoffInput) -> float:
        if observed.rx_power_dbm is None:
            raise ValueError("SignalStrengthBackoff requires rx_power_dbm")
        rho = self.distance_fraction(observed.rx_power_dbm)
        return self.lam * (1.0 - rho) + float(observed.rng.uniform(0.0, self.jitter))


@dataclass(frozen=True)
class HopCountBackoff(BackoffPolicy):
    """Routeless Routing's hop-distance metric (reconstructed equation).

    .. code-block:: text

        d = λ · U(0,1) / (h_expected − h_table + 1)    if h_table ≤ h_expected
        d = λ · (h_table − h_expected + U(0,1))        if h_table >  h_expected

    Properties guaranteed (and asserted by the prose in Section 4.1):

    * a node with more table hops than expected always waits longer than λ;
    * the smaller ``h_table``, the smaller the delay (stochastically);
    * nodes exactly on expectation wait at most λ.

    Nodes with *no* table entry for the target participate as if they were
    ``unknown_penalty`` hops worse than expected — they relay only when
    nobody better answers, which is the failure-resilience fallback.
    """

    lam: float = 0.05
    unknown_penalty: int = 2

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError("lam must be positive")
        if self.unknown_penalty < 1:
            raise ValueError("unknown_penalty must be at least 1")

    def delay(self, observed: BackoffInput) -> float:
        if observed.expected_hops is None:
            raise ValueError("HopCountBackoff requires expected_hops")
        expected = observed.expected_hops
        if observed.table_hops is None:
            table = expected + self.unknown_penalty
        else:
            table = observed.table_hops
        u = float(observed.rng.uniform(0.0, 1.0))
        if table <= expected:
            return self.lam * u / (expected - table + 1)
        return self.lam * (table - expected + u)


@dataclass(frozen=True)
class FunctionBackoff(BackoffPolicy):
    """Wraps an arbitrary ``BackoffInput -> seconds`` callable."""

    fn: Callable[[BackoffInput], float] = field(repr=False)

    def delay(self, observed: BackoffInput) -> float:
        value = float(self.fn(observed))
        if value < 0 or not math.isfinite(value):
            raise ValueError(f"backoff function returned invalid delay {value!r}")
        return value
