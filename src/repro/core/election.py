"""The local leader election primitive (Section 2 of the paper).

A *local* leader election selects one node out of the set that observed a
common radio event.  The solution has four moving parts, all implemented
here:

1. **Implicit synchronization point** — the reception of a trigger packet
   (or of any commonly observed transmission).  No clock synchronization is
   used anywhere; nodes are synchronized only by hearing the same signal.
2. **Prioritized backoff** — each candidate derives a delay from a
   :class:`~repro.core.backoff.BackoffPolicy` and arms a timer.
3. **Announcement / suppression** — a candidate whose timer expires
   broadcasts an announcement and considers itself leader; candidates that
   hear an announcement first cancel their timers.
4. **Arbiter (optional)** — a node that can hear every candidate
   acknowledges the first announcement (silencing stragglers that missed it)
   and re-triggers the election if nobody announced within a timeout, which
   upgrades "usually elects somebody" to "eventually elects at least one".

The same machinery drives SSAF and Routeless Routing; this module's
:class:`ElectionNode` is the primitive in its pure form, running directly on
a CSMA MAC, used by the quickstart example and the election test-bench.

:class:`CandidateTimer` is the reusable arm/cancel core shared with the
routing protocols.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.backoff import BackoffInput, BackoffPolicy
from repro.core.timer import CandidateState, CandidateTimer
from repro.mac.csma import CsmaMac, MacRxInfo
from repro.net.packet import DEFAULT_CTRL_SIZE, Packet, PacketKind, SeqCounter
from repro.sim.components import Component, SimContext

__all__ = [
    "CandidateTimer",
    "CandidateState",
    "ElectionConfig",
    "ElectionNode",
    "ElectionRound",
]


@dataclass(frozen=True)
class ElectionConfig:
    """Policy and arbiter parameters for one election deployment."""
    policy: BackoffPolicy
    #: Run the arbiter protocol on the triggering node.
    use_arbiter: bool = True
    #: How long the arbiter waits for an announcement before re-triggering.
    arbiter_timeout_s: float = 0.25
    #: Maximum number of re-triggers before the arbiter gives up.
    max_retriggers: int = 5
    packet_size: int = DEFAULT_CTRL_SIZE


@dataclass
class ElectionRound:
    """One node's view of one election instance."""

    uid: tuple
    attempt: int = 0
    leader: Optional[int] = None
    timer: Optional[CandidateTimer] = None
    acknowledged: bool = False


class ElectionNode(Component):
    """A node participating in Section 2's election protocol.

    Wire one per node on top of a :class:`~repro.mac.csma.CsmaMac`.  Any node
    may :meth:`trigger` an election; every *candidate* node that hears the
    trigger competes.  The trigger node acts as arbiter when configured, and
    is not itself a candidate.
    """

    def __init__(
        self,
        ctx: SimContext,
        node_id: int,
        mac: CsmaMac,
        config: ElectionConfig,
        candidate: bool = True,
        observe: Callable[[Packet, MacRxInfo], BackoffInput] | None = None,
    ):
        super().__init__(ctx, f"election[{node_id}]")
        self.node_id = node_id
        self.mac = mac
        self.config = config
        self.candidate = candidate
        self._observe = observe if observe is not None else self._default_observe
        self._rng = self.rng("policy")
        self._seq = SeqCounter()
        self.rounds: dict[tuple, ElectionRound] = {}
        self._arbiter_handles: dict[tuple, object] = {}

        #: Delivers ``(round_uid, leader_id)`` when this node learns a leader.
        self.elected = self.outport("elected")

        mac.to_net.connect(self._on_packet)

    # ----------------------------------------------------------- triggering

    def trigger(self) -> tuple:
        """Broadcast a sync packet, creating the implicit synchronization
        point.  Returns the round uid."""
        seq = self._seq.next(PacketKind.SYNC)
        packet = Packet(
            kind=PacketKind.SYNC,
            origin=self.node_id,
            seq=seq,
            size_bytes=self.config.packet_size,
            created_at=self.now,
        )
        uid = packet.uid
        self.rounds[uid] = ElectionRound(uid=uid)
        self.trace("election.trigger", round=str(uid))
        self.mac.send(packet)
        if self.config.use_arbiter:
            self._arm_arbiter(uid, packet)
        return uid

    def _arm_arbiter(self, uid: tuple, sync_packet: Packet) -> None:
        handle = self.schedule(
            self.config.arbiter_timeout_s, self._arbiter_timeout, uid, sync_packet
        )
        self._arbiter_handles[uid] = handle

    def _arbiter_timeout(self, uid: tuple, sync_packet: Packet) -> None:
        self._arbiter_handles.pop(uid, None)
        round_ = self.rounds.get(uid)
        if round_ is None or round_.leader is not None:
            return
        if round_.attempt >= self.config.max_retriggers:
            self.trace("election.gave_up", round=str(uid))
            return
        round_.attempt += 1
        self.trace("election.retrigger", round=str(uid), attempt=round_.attempt)
        # "it will trigger the implicit synchronization point again by
        # sending out the original synchronization packet"
        self.mac.send(sync_packet)
        self._arm_arbiter(uid, sync_packet)

    # ------------------------------------------------------------ reception

    def _default_observe(self, packet: Packet, rx: MacRxInfo) -> BackoffInput:
        return BackoffInput(
            rng=self._rng,
            rx_power_dbm=rx.power_dbm,
            expected_hops=packet.expected_hops,
        )

    def _on_packet(self, packet: Packet, rx: MacRxInfo) -> None:
        if packet.kind == PacketKind.SYNC:
            self._on_sync(packet, rx)
        elif packet.kind == PacketKind.ANNOUNCE:
            self._on_announce(packet)
        elif packet.kind == PacketKind.NET_ACK:
            self._on_ack(packet)

    def _on_sync(self, packet: Packet, rx: MacRxInfo) -> None:
        if not self.candidate:
            return
        uid = packet.uid
        round_ = self.rounds.get(uid)
        if round_ is None:
            round_ = ElectionRound(uid=uid)
            self.rounds[uid] = round_
        if round_.leader is not None:
            return  # already resolved; a late re-trigger changes nothing
        delay = self.config.policy.delay(self._observe(packet, rx))
        if round_.timer is None:
            round_.timer = CandidateTimer(self, lambda: self._announce(uid, packet))
        round_.timer.arm(delay)
        self.trace("election.candidate", round=str(uid), backoff=delay)

    def _announce(self, uid: tuple, sync_packet: Packet) -> None:
        round_ = self.rounds[uid]
        round_.leader = self.node_id
        announce = Packet(
            kind=PacketKind.ANNOUNCE,
            origin=self.node_id,
            seq=self._seq.next(PacketKind.ANNOUNCE),
            target=sync_packet.origin,
            size_bytes=self.config.packet_size,
            created_at=self.now,
            ref_seq=sync_packet.seq,
            payload=uid,
        )
        self.trace("election.announce", round=str(uid))
        self.mac.send(announce)
        self._emit_elected(uid, self.node_id)

    def _on_announce(self, packet: Packet) -> None:
        uid = packet.payload
        round_ = self.rounds.get(uid)
        if round_ is None:
            return
        if round_.timer is not None:
            round_.timer.suppress()
        first_news = round_.leader is None
        if first_news:
            round_.leader = packet.origin
        # The arbiter acknowledges the first announcement it hears.
        if self.config.use_arbiter and uid[1] == self.node_id and not round_.acknowledged:
            round_.acknowledged = True
            handle = self._arbiter_handles.pop(uid, None)
            if handle is not None:
                handle.cancel()
            ack = Packet(
                kind=PacketKind.NET_ACK,
                origin=self.node_id,
                seq=self._seq.next(PacketKind.NET_ACK),
                size_bytes=self.config.packet_size,
                created_at=self.now,
                ref_seq=packet.seq,
                payload=(uid, packet.origin),
            )
            self.trace("election.ack", round=str(uid), leader=packet.origin)
            self.mac.send(ack)
        if first_news:
            self._emit_elected(uid, packet.origin)

    def _on_ack(self, packet: Packet) -> None:
        uid, leader = packet.payload
        round_ = self.rounds.get(uid)
        if round_ is None:
            round_ = ElectionRound(uid=uid)
            self.rounds[uid] = round_
        if round_.timer is not None:
            round_.timer.suppress()
        # The arbiter's acknowledgement is authoritative: when two
        # announcements raced, nodes that heard the loser first converge on
        # the arbiter's verdict.
        if round_.leader != leader:
            round_.leader = leader
            self._emit_elected(uid, leader)

    def _emit_elected(self, uid: tuple, leader: int) -> None:
        if self.elected.connected:
            self.elected(uid, leader)

    # -------------------------------------------------------------- queries

    def leader_of(self, uid: tuple) -> Optional[int]:
        round_ = self.rounds.get(uid)
        return None if round_ is None else round_.leader
