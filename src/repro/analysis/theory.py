"""Closed-form models of the election's behaviour, for validating the
simulator against theory.

A reproduction whose simulator is itself new code needs evidence that the
substrate computes what it claims.  This module derives exact expressions
for small, analyzable corners of the system; the test suite checks the
simulator (or direct Monte-Carlo draws of the policies) against them:

* :func:`uniform_win_probabilities` — who wins an election when candidate
  *i* draws its backoff uniformly over ``[0, b_i]``.
* :func:`tie_probability` — the probability that the runner-up fires within
  the suppression window of the winner (the paper's "λ too small ⇒
  collisions" failure mode, quantified).
* :func:`free_space_range_m` — the distance at which free-space received
  power crosses a threshold (inverse link budget).
* :func:`expected_election_delay` — the expected winner delay (minimum of
  uniforms).
* :func:`counter1_relay_bound` — transmission-count bounds for the flooding
  family on a connected topology.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "uniform_win_probabilities",
    "tie_probability",
    "expected_election_delay",
    "free_space_range_m",
    "counter1_relay_bound",
]


def uniform_win_probabilities(bounds: Sequence[float]) -> list[float]:
    """P(candidate i fires first) when candidate i draws U(0, bounds[i]).

    Computed exactly by integrating ``P(win_i) = ∫ f_i(t) Π_{j≠i} P(X_j > t) dt``
    piecewise over the sorted bound segments, where on a segment every
    survival function is linear (products of polynomials — integrated
    numerically with high-order accuracy via fine segment subdivision).
    """
    if not bounds or any(b <= 0 for b in bounds):
        raise ValueError("all bounds must be positive")
    n = len(bounds)
    if n == 1:
        return [1.0]
    # Numerical integration on [0, min-bound-relevant range]: candidate i can
    # only win while t <= bounds[i], and nobody wins past max(bounds).
    upper = min(bounds)  # beyond the smallest bound, that candidate has fired
    # P(no one fired before t) changes character at each bound; integrating
    # to min(bounds) suffices: by then somebody has certainly fired... no —
    # X_min <= min(bounds) always, so [0, min(bounds)] covers every outcome.
    steps = 20000
    dt = upper / steps
    wins = [0.0] * n
    for k in range(steps):
        t = (k + 0.5) * dt
        # survival of all others at t, density of i at t
        for i in range(n):
            if t >= bounds[i]:
                continue
            density = 1.0 / bounds[i]
            survival = 1.0
            for j in range(n):
                if j == i:
                    continue
                survival *= max(0.0, 1.0 - t / bounds[j])
            wins[i] += density * survival * dt
    total = sum(wins)
    return [w / total for w in wins]


def tie_probability(n_candidates: int, lam: float, settle_s: float) -> float:
    """P(the runner-up fires within ``settle_s`` of the winner), for
    ``n_candidates`` i.i.d. U(0, λ) backoffs.

    This is the probability that suppression arrives too late: the winner's
    frame needs ``settle_s`` of MAC access plus airtime before it can silence
    anyone.  Exact: ``1 − (1 − s/λ)^n`` for s ≤ λ — each spacing of n uniform
    order statistics on [0, λ] is Beta(1, n)-distributed (scaled by λ).
    """
    if n_candidates < 2:
        return 0.0
    if settle_s >= lam:
        return 1.0
    return 1.0 - (1.0 - settle_s / lam) ** n_candidates


def expected_election_delay(n_candidates: int, lam: float) -> float:
    """E[min of n i.i.d. U(0, λ)] = λ / (n + 1)."""
    if n_candidates < 1:
        raise ValueError("need at least one candidate")
    return lam / (n_candidates + 1)


def free_space_range_m(tx_power_dbm: float, threshold_dbm: float,
                       frequency_hz: float = 914e6) -> float:
    """Distance at which free-space rx power equals the threshold.

    Inverts ``P_rx = P_tx − 20 log10(4π d / λ_wave)``.
    """
    wavelength = 2.99792458e8 / frequency_hz
    loss_db = tx_power_dbm - threshold_dbm
    return wavelength / (4.0 * math.pi) * 10.0 ** (loss_db / 20.0)


def counter1_relay_bound(n_nodes: int) -> tuple[int, int]:
    """(min, max) data transmissions to flood one packet to everyone on a
    connected topology with duplicate suppression.

    At least one (the source's); at most every node except the destination
    transmits once.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    return 1, n_nodes - 1
