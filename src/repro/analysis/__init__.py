"""Analytical models and trace analysis: theory-vs-simulation validation."""

from repro.analysis.lifecycle import JourneyEvent, PacketJourney, reconstruct_journeys
from repro.analysis.theory import (
    counter1_relay_bound,
    expected_election_delay,
    free_space_range_m,
    tie_probability,
    uniform_win_probabilities,
)

__all__ = [
    "JourneyEvent",
    "PacketJourney",
    "counter1_relay_bound",
    "expected_election_delay",
    "free_space_range_m",
    "reconstruct_journeys",
    "tie_probability",
    "uniform_win_probabilities",
]
