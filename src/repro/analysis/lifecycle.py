"""Packet lifecycle reconstruction from traces.

Given a :class:`~repro.sim.trace.Tracer` from a Routeless Routing run, these
helpers reassemble what happened to each packet — candidacies, relays,
retransmissions, acknowledgements, delivery — as a structured journey.  Used
by the demo examples and by tests that assert on protocol *behaviour* where
end metrics would under-constrain it; also the fastest way to answer "what
happened to packet X?" when debugging a scenario.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.trace import TraceRecord, Tracer

__all__ = ["JourneyEvent", "PacketJourney", "reconstruct_journeys"]

_PACKET_RE = re.compile(r"(\w+)\(o=(\d+) s=(\d+)")
#: uid-tuple form used by arbiter traces: ``(<PacketKind.DATA: 'data'>, 0, 1)``
_UID_RE = re.compile(r"PacketKind\.\w+: '(\w+)'>, (\d+), (\d+)")
_NODE_RE = re.compile(r"\[(\d+)\]")


@dataclass(frozen=True)
class JourneyEvent:
    """One protocol action observed for a packet: when, where, what."""
    time: float
    node: int
    action: str          # candidate / relay / retransmit / ack / deliver / ...
    detail: dict = field(compare=False, default_factory=dict)


@dataclass
class PacketJourney:
    """Everything that happened to one packet, in time order."""
    kind: str
    origin: int
    seq: int
    events: list[JourneyEvent] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return any(e.action == "deliver" for e in self.events)

    @property
    def relays(self) -> list[int]:
        return [e.node for e in self.events if e.action == "relay"]

    @property
    def retransmissions(self) -> int:
        return sum(1 for e in self.events if e.action == "retransmit")

    @property
    def delivery_time(self) -> Optional[float]:
        for event in self.events:
            if event.action == "deliver":
                return event.time
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = f"{self.kind}(o={self.origin} s={self.seq})"
        lines = [head] + [
            f"  {e.time:10.6f}  node {e.node:<4} {e.action}"
            for e in self.events
        ]
        return "\n".join(lines)


_ACTION_BY_KIND = {
    "rr.candidate": "candidate",
    "rr.relay": "relay",
    "rr.retransmit": "retransmit",
    "rr.ack": "ack",
    "rr.gave_up": "gave_up",
    "rr.discovery": "originate",
    "rr.reply": "originate",
    "rr.discovery_reached": "reach_target",
    "rr.reply_received": "deliver",
    "net.deliver": "deliver",
    "flood.first_copy": "candidate",
    "flood.suppressed": "suppressed",
}


def _packet_key(record: TraceRecord) -> Optional[tuple[str, int, int]]:
    for value in record.detail.values():
        text = str(value)
        match = _PACKET_RE.search(text) or _UID_RE.search(text)
        if match:
            return match.group(1).lower(), int(match.group(2)), int(match.group(3))
    return None


def _node_of(record: TraceRecord) -> Optional[int]:
    match = _NODE_RE.search(record.source)
    return int(match.group(1)) if match else None


def reconstruct_journeys(tracer: Tracer | Iterable[TraceRecord]
                         ) -> dict[tuple[str, int, int], PacketJourney]:
    """Group trace records into per-packet journeys, time-ordered.

    Keys are ``(kind, origin, seq)`` mirroring packet uids (with the kind as
    its string value).
    """
    records = tracer.records if isinstance(tracer, Tracer) else list(tracer)
    journeys: dict[tuple[str, int, int], PacketJourney] = {}
    for record in records:
        action = _ACTION_BY_KIND.get(record.kind)
        if action is None:
            continue
        key = _packet_key(record)
        node = _node_of(record)
        if key is None or node is None:
            continue
        journey = journeys.get(key)
        if journey is None:
            journey = PacketJourney(kind=key[0], origin=key[1], seq=key[2])
            journeys[key] = journey
        journey.events.append(JourneyEvent(record.time, node, action,
                                           dict(record.detail)))
    for journey in journeys.values():
        journey.events.sort(key=lambda e: e.time)
    return journeys
