"""Terminal visualization: ASCII line charts and terrain relay maps."""

from repro.viz.ascii_chart import line_chart
from repro.viz.paths import corridor_usage, path_summary, relay_heatmap

__all__ = ["corridor_usage", "line_chart", "path_summary", "relay_heatmap"]
