"""Terminal line charts for experiment series.

The benchmark harness runs headless, so every figure panel is rendered as a
compact ASCII chart (plus the numeric table from
:func:`repro.stats.series.format_table`).  Good enough to eyeball the curve
shapes the reproduction is judged on: who wins, where, by how much.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["line_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    curves: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Points are plotted in data coordinates on a ``width``×``height`` grid;
    each curve gets a marker from a fixed cycle, identified in the legend.
    """
    points = [(x, y) for series in curves.values() for x, y in series]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # A touch of headroom so extreme points do not sit on the frame.
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(y: float) -> int:
        return min(height - 1, int((y_hi - y) / (y_hi - y_lo) * (height - 1)))

    legend = []
    for index, (label, series) in enumerate(curves.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={label}")
        ordered = sorted(series)
        # Linear interpolation between sample points keeps curves readable.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0, c1 = to_col(x0), to_col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                r = to_row(y)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in ordered:
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<10.4g}{x_label:^{max(width - 20, 0)}}{x_hi:>10.4g}")
    lines.append(" " * 12 + "  ".join(legend))
    return "\n".join(lines)
