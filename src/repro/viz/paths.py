"""Terrain maps of packet paths and relay usage (the Figure 2 visual).

Figure 2 of the paper plots "the actual paths taken by different packets" on
the terrain, showing A→B traffic bending around the congested C–D corridor.
:func:`relay_heatmap` renders the same information as a character grid: each
cell's symbol encodes how often nodes in that cell relayed the observed
flow's packets, with the flow endpoints marked.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["relay_heatmap", "path_summary", "corridor_usage"]

_SHADES = " .:-=+*#%@"


def relay_heatmap(
    positions: np.ndarray,
    paths: Iterable[tuple[int, ...]],
    endpoints: Mapping[str, int] | None = None,
    cols: int = 48,
    rows: int = 20,
) -> str:
    """Render relay usage as a shaded character grid.

    ``paths`` are relay chains (node-id tuples) of delivered packets;
    ``endpoints`` maps display letters to node ids (e.g. ``{"A": 3, "B": 77}``).
    """
    positions = np.asarray(positions, dtype=float)
    usage: Counter[int] = Counter()
    for path in paths:
        for node in path:
            usage[node] += 1

    x_lo, y_lo = positions.min(axis=0)
    x_hi, y_hi = positions.max(axis=0)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    cell = np.zeros((rows, cols))
    for node, count in usage.items():
        x, y = positions[node]
        c = min(cols - 1, int((x - x_lo) / x_span * (cols - 1)))
        r = min(rows - 1, int((y_hi - y) / y_span * (rows - 1)))
        cell[r, c] += count

    peak = cell.max() or 1.0
    grid = []
    for r in range(rows):
        row = []
        for c in range(cols):
            level = cell[r, c] / peak
            row.append(_SHADES[min(len(_SHADES) - 1, int(level * (len(_SHADES) - 1) + 0.999)) if level > 0 else 0])
        grid.append(row)

    if endpoints:
        for letter, node in endpoints.items():
            x, y = positions[node]
            c = min(cols - 1, int((x - x_lo) / x_span * (cols - 1)))
            r = min(rows - 1, int((y_hi - y) / y_span * (rows - 1)))
            grid[r][c] = letter

    frame = ["┌" + "─" * cols + "┐"]
    frame += ["│" + "".join(row) + "│" for row in grid]
    frame.append("└" + "─" * cols + "┘")
    return "\n".join(frame)


def path_summary(paths: Sequence[tuple[int, ...]]) -> str:
    """Frequency table of distinct relay chains, most used first."""
    counts = Counter(paths)
    lines = [f"{count:>5}×  {' → '.join(map(str, path)) if path else '(direct)'}"
             for path, count in counts.most_common()]
    return "\n".join(lines)


def corridor_usage(
    positions: np.ndarray,
    paths: Iterable[tuple[int, ...]],
    center: tuple[float, float],
    radius_m: float,
) -> float:
    """Fraction of relay events within ``radius_m`` of ``center``.

    The Figure 2 claim is quantified with this: once the C→D flow congests
    the middle of the terrain, the A→B flow's corridor usage near the C–D
    midpoint should drop.
    """
    positions = np.asarray(positions, dtype=float)
    center_arr = np.asarray(center, dtype=float)
    total = 0
    inside = 0
    for path in paths:
        for node in path:
            total += 1
            if np.linalg.norm(positions[node] - center_arr) <= radius_m:
                inside += 1
    return inside / total if total else 0.0
