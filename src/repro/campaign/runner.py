"""Campaign orchestration: cache + journal + fault-tolerant execution.

:func:`run_campaign` is the one entry point.  Given the same
``run_one(protocol, x, seed, config, **extra)`` callable the serial runners
and :func:`repro.experiments.parallel.parallel_sweep` use, it settles every
cell of the (protocol × x × seed) grid through a three-level lookup:

1. **journal** — on ``resume=True``, cells already settled in the campaign
   directory's journal are replayed without touching the cache or pool;
2. **cache** — cells whose content address is present in the result cache
   are hits, recorded to the journal, never executed;
3. **execution** — everything else runs under the fault-tolerant executor
   (timeouts, retries, pool recovery, quarantine).

Results are reassembled in canonical grid order — the exact nested-loop
order the serial runners use — so the returned ``{protocol: SweepSeries}``
is bit-identical to an uninterrupted, uncached serial sweep regardless of
completion order, cache state, or how many times the campaign was killed
and resumed along the way.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.executor import (
    Cell,
    CellFailure,
    ExecutorConfig,
    FaultTolerantExecutor,
    ObservedResult,
    ObservedRunner as _ObservedRunner,
)
from repro.campaign.fingerprint import (
    campaign_fingerprint,
    cell_key,
    runner_name_of,
)
from repro.campaign.journal import CampaignJournal, CellRecord
from repro.campaign.telemetry import CampaignTelemetry, ProgressEvent
from repro.stats.series import SweepSeries

__all__ = ["CampaignSpec", "CampaignOutcome", "ObservedResult",
           "run_campaign", "run_spec"]


@dataclass(frozen=True)
class CampaignSpec:
    """A sweep an experiment module exposes for campaign execution."""

    name: str
    run_one: Callable
    protocols: tuple
    xs: tuple
    seeds: tuple
    config: Any
    extra_kwargs: Mapping = field(default_factory=dict)


@dataclass
class CampaignOutcome:
    """Everything a campaign produced."""

    #: ``{protocol: SweepSeries}`` — identical to the serial sweep's.
    results: dict[str, SweepSeries]
    #: Machine-readable telemetry (see ``CampaignTelemetry.summary``).
    summary: dict
    #: Cells that exhausted their retries, excluded from ``results``.
    quarantined: list[CellFailure]
    #: Per-cell settlement records keyed by content address.
    records: dict[str, CellRecord]


def _cell_label(protocol: str, x, seed: int) -> str:
    return f"{protocol}/x={x:g}/seed={seed}"


def run_campaign(
    run_one: Callable,
    *,
    protocols: Sequence[str],
    xs: Sequence,
    seeds: Sequence[int],
    config: Any,
    runner_name: str | None = None,
    extra_kwargs: Mapping | None = None,
    cache_dir: str | os.PathLike | None = None,
    campaign_dir: str | os.PathLike | None = None,
    resume: bool = False,
    workers: int = 1,
    timeout_s: float | None = None,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    observe: bool = False,
    progress: Callable[[ProgressEvent], None] | None = None,
    backend: Any = None,
    dist_options: Any = None,
) -> CampaignOutcome:
    """Settle the full grid and return results, telemetry, and quarantine.

    With no ``cache_dir``/``campaign_dir`` this degrades to a plain
    (serial or pooled) sweep with retry protection — the migration path for
    the figure runners costs nothing when durability isn't requested.

    ``backend`` selects how cells that need execution are run: ``None`` or
    ``"local-pool"`` is the in-process fault-tolerant pool (bit-identical
    to the historical runner); ``"ssh"`` fans out to multi-host workers
    over a shared spool; ``"job-array"`` emits shard manifests plus batch
    submit scripts (see :mod:`repro.dist` and docs/DISTRIBUTED.md).  A
    backend instance is accepted as well as a name.  ``dist_options`` is a
    :class:`repro.dist.DistOptions` (hosts file, lease TTL, shards...).
    """
    name = runner_name if runner_name is not None else runner_name_of(run_one)
    extra = dict(extra_kwargs or {})

    grid = [
        (protocol, x, seed,
         cell_key(name, protocol, x, seed, config, extra))
        for protocol in protocols
        for x in xs
        for seed in seeds
    ]
    telemetry = CampaignTelemetry(total=len(grid))
    from repro.obs.logging import get_logger
    log = get_logger("campaign").bind(campaign=name)

    def emit(source: str, protocol: str, x, seed: int,
             wall_s: float = 0.0) -> None:
        label = _cell_label(protocol, x, seed)
        log.info("cell_settled", cell=label, source=source,
                 completed=telemetry.completed, total=telemetry.total,
                 wall_s=round(wall_s, 3) if wall_s else None)
        if progress is not None:
            progress(telemetry.event(source, label, wall_s))

    journal: CampaignJournal | None = None
    settled: dict[str, CellRecord] = {}
    if campaign_dir is not None:
        journal = CampaignJournal(campaign_dir)
        manifest = {
            "fingerprint": campaign_fingerprint(name, protocols, xs, seeds,
                                                config, extra),
            "runner": name,
            "protocols": list(protocols),
            "xs": [float(x) for x in xs],
            "seeds": [int(s) for s in seeds],
            "total_cells": len(grid),
            "created_at": time.time(),
        }
        if resume:
            journal.ensure_manifest(manifest, resume=True)
            # Quarantined cells get a fresh chance on resume; only cleanly
            # settled cells are replayed.
            settled = {k: r for k, r in journal.load().items()
                       if r.status == "done"}
        else:
            journal.reset()
            journal.write_manifest(manifest)

    cache = ResultCache(cache_dir) if cache_dir is not None else None

    records: dict[str, CellRecord] = {}
    quarantined: list[CellFailure] = []
    to_execute: list[Cell] = []

    for protocol, x, seed, key in grid:
        if key in records:  # duplicate grid coordinates share one settlement
            continue
        if key in settled:
            records[key] = settled[key]
            telemetry.record("journal")
            emit("journal", protocol, x, seed)
            continue
        summary = cache.get(key) if cache is not None else None
        if summary is not None:
            record = CellRecord(key=key, protocol=protocol, x=float(x),
                                seed=int(seed), status="done", source="cache",
                                summary=summary)
            records[key] = record
            if journal is not None:
                journal.append(record)
            telemetry.record("cache")
            emit("cache", protocol, x, seed)
            continue
        to_execute.append(Cell(key=key, protocol=protocol, x=x, seed=seed))

    if to_execute:
        def on_success(cell: Cell, summary, attempts: int, wall_s: float):
            if isinstance(summary, ObservedResult):
                telemetry.record_obs(summary.obs_snapshot)
                summary = summary.summary
            record = CellRecord(key=cell.key, protocol=cell.protocol,
                                x=float(cell.x), seed=int(cell.seed),
                                status="done", source="run", summary=summary,
                                attempts=attempts, wall_s=wall_s)
            records[cell.key] = record
            if cache is not None:
                cache.put(cell.key, summary,
                          meta={"runner": name, "protocol": cell.protocol,
                                "x": float(cell.x), "seed": int(cell.seed)})
            if journal is not None:
                journal.append(record)
            telemetry.record("run", wall_s)
            emit("run", cell.protocol, cell.x, cell.seed, wall_s)

        def on_quarantine(failure: CellFailure):
            cell = failure.cell
            record = CellRecord(key=cell.key, protocol=cell.protocol,
                                x=float(cell.x), seed=int(cell.seed),
                                status="quarantined", source="run",
                                attempts=failure.attempts,
                                error=failure.error)
            records[cell.key] = record
            quarantined.append(failure)
            if journal is not None:
                journal.append(record)
            telemetry.record("quarantined")
            emit("quarantined", cell.protocol, cell.x, cell.seed)

        def on_retry(cell: Cell, attempts: int, error: str):
            telemetry.record_retry()
            log.warning("cell_retry",
                        cell=_cell_label(cell.protocol, cell.x, cell.seed),
                        attempt=attempts, error=error)

        executor_config = ExecutorConfig(
            max_workers=max(1, workers),
            timeout_s=timeout_s,
            max_retries=max_retries,
            backoff_s=backoff_s,
        )
        if backend is None or backend == "local-pool":
            # The default path stays exactly the historical runner: an
            # in-process fault-tolerant pool, no spool, no dist imports.
            runner = _ObservedRunner(run_one) if observe else run_one
            executor = FaultTolerantExecutor(
                runner, config, extra_kwargs=extra,
                executor_config=executor_config,
                on_retry=on_retry,
            )
            executor.run(to_execute, on_success, on_quarantine)
        else:
            from repro.dist.backend import (
                BackendRun, DistOptions, get_backend,
            )
            backend_obj = (get_backend(backend) if isinstance(backend, str)
                           else backend)
            run = BackendRun(
                run_one=run_one, config=config, extra_kwargs=extra,
                cells=to_execute, executor_config=executor_config,
                on_success=on_success, on_quarantine=on_quarantine,
                on_retry=on_retry, observe=observe, runner_name=name,
                cache=cache,
                cache_dir=str(cache_dir) if cache_dir is not None else None,
                campaign_dir=(str(campaign_dir) if campaign_dir is not None
                              else None),
                options=dist_options or DistOptions(),
            )
            dist_stats = backend_obj.execute(run) or {}
            if dist_stats:
                telemetry.record_dist(dist_stats)

    # Reassemble in canonical grid order — the serial runners' loop order —
    # so per-x sample lists (and thus means/stderrs) are bit-identical.
    results = {p: SweepSeries(p) for p in protocols}
    for protocol, x, seed, key in grid:
        record = records.get(key)
        if record is not None and record.status == "done":
            results[protocol].add(float(x), record.summary)

    summary = telemetry.summary()
    summary["runner"] = name
    summary["quarantined_cells"] = [
        {"protocol": f.cell.protocol, "x": float(f.cell.x),
         "seed": int(f.cell.seed), "attempts": f.attempts, "error": f.error}
        for f in quarantined
    ]
    if journal is not None:
        # Durable campaigns keep their latest telemetry next to the journal
        # so `repro obs summary --campaign-dir DIR` (and any later tooling)
        # can read steal/heartbeat/throughput counters without a rerun.
        journal.write_summary(summary)
    return CampaignOutcome(results=results, summary=summary,
                           quarantined=quarantined, records=records)


def run_spec(spec: CampaignSpec, **kwargs) -> CampaignOutcome:
    """Run a :class:`CampaignSpec`; keyword arguments as for
    :func:`run_campaign`."""
    return run_campaign(
        spec.run_one,
        runner_name=spec.name,
        protocols=spec.protocols,
        xs=spec.xs,
        seeds=spec.seeds,
        config=spec.config,
        extra_kwargs=spec.extra_kwargs,
        **kwargs,
    )
