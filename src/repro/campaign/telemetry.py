"""Run telemetry for campaigns.

Tracks, as cells settle: how many came from the cache versus fresh
execution versus a resumed journal, per-cell wall times, retry and
quarantine counts, throughput (cells/sec over *executed* cells) and a
naive-but-useful ETA (remaining cells at the observed rate, with cache
hits counted as free).

Two consumers:

* a **progress callback** — :class:`ProgressEvent` snapshots pushed after
  every settled cell, cheap enough for a TTY progress line;
* a **machine-readable summary** — :meth:`CampaignTelemetry.summary`, a
  plain dict exported via :func:`repro.stats.export.write_campaign_summary`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CampaignTelemetry", "ProgressEvent"]


@dataclass(frozen=True)
class ProgressEvent:
    """One settled cell's view of the whole campaign."""

    completed: int
    total: int
    executed: int
    cache_hits: int
    resumed: int
    retries: int
    quarantined: int
    elapsed_s: float
    cells_per_sec: float
    eta_s: Optional[float]
    cache_hit_ratio: float
    #: What just settled: "run" | "cache" | "journal" | "quarantined".
    last_source: str = "run"
    last_cell: str = ""
    last_wall_s: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        eta = f"{self.eta_s:.0f}s" if self.eta_s is not None else "?"
        return (
            f"[{self.completed}/{self.total}] "
            f"{self.cells_per_sec:.2f} cells/s eta={eta} "
            f"cache={self.cache_hit_ratio:.0%} retries={self.retries} "
            f"quarantined={self.quarantined} ({self.last_source} "
            f"{self.last_cell} {self.last_wall_s:.2f}s)"
        )


class CampaignTelemetry:
    """Accumulates per-cell outcomes into progress events and a summary."""

    def __init__(self, total: int):
        self.total = total
        self.started_at = time.monotonic()
        self.executed = 0
        self.cache_hits = 0
        self.resumed = 0
        self.retries = 0
        self.quarantined = 0
        self.wall_times: list[float] = []
        #: Registry accumulating observed cells' metrics (see
        #: :meth:`record_obs`); ``None`` until the first snapshot arrives.
        self._obs_registry = None
        self.obs_cells = 0
        #: Distributed-backend stats (steals, heartbeats, worker deaths);
        #: ``None`` for local-pool campaigns.  See :meth:`record_dist`.
        self.dist: Optional[dict] = None

    # ------------------------------------------------------------ recording

    def record(self, source: str, wall_s: float = 0.0) -> None:
        if source == "run":
            self.executed += 1
            self.wall_times.append(wall_s)
        elif source == "cache":
            self.cache_hits += 1
        elif source == "journal":
            self.resumed += 1
        elif source == "quarantined":
            self.quarantined += 1
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown cell source {source!r}")

    def record_retry(self) -> None:
        self.retries += 1

    def record_obs(self, snapshot: dict) -> None:
        """Fold one observed cell's metrics-registry snapshot into the
        campaign-wide aggregate (counters sum, gauges keep the max)."""
        from repro.obs.registry import MetricsRegistry
        if self._obs_registry is None:
            self._obs_registry = MetricsRegistry()
        self._obs_registry.merge_snapshot(snapshot)
        self.obs_cells += 1

    def record_dist(self, stats: dict) -> None:
        """Attach a distributed backend's run stats.  A metrics-registry
        snapshot under ``stats["obs_snapshot"]`` (per-host steal/heartbeat
        counters) is folded into the campaign's observability aggregate
        without counting as an observed cell."""
        stats = dict(stats)
        snapshot = stats.pop("obs_snapshot", None)
        self.dist = stats
        if snapshot:
            from repro.obs.registry import MetricsRegistry
            if self._obs_registry is None:
                self._obs_registry = MetricsRegistry()
            self._obs_registry.merge_snapshot(snapshot)

    @property
    def obs_snapshot(self) -> Optional[dict]:
        """The merged metrics snapshot over every observed cell."""
        return (self._obs_registry.snapshot()
                if self._obs_registry is not None else None)

    # ------------------------------------------------------------ snapshots

    @property
    def completed(self) -> int:
        return self.executed + self.cache_hits + self.resumed + self.quarantined

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_at

    @property
    def cache_hit_ratio(self) -> float:
        """Cache hits over cells that *could* have hit (hits + executions)."""
        denom = self.cache_hits + self.executed
        return self.cache_hits / denom if denom else 0.0

    @property
    def cells_per_sec(self) -> float:
        elapsed = self.elapsed_s
        return self.completed / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> Optional[float]:
        """Remaining executed-cell work at the observed mean cell wall time."""
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        if not self.wall_times:
            return None
        mean_wall = sum(self.wall_times) / len(self.wall_times)
        return remaining * mean_wall

    def event(self, source: str, cell_label: str = "",
              wall_s: float = 0.0) -> ProgressEvent:
        return ProgressEvent(
            completed=self.completed,
            total=self.total,
            executed=self.executed,
            cache_hits=self.cache_hits,
            resumed=self.resumed,
            retries=self.retries,
            quarantined=self.quarantined,
            elapsed_s=self.elapsed_s,
            cells_per_sec=self.cells_per_sec,
            eta_s=self.eta_s(),
            cache_hit_ratio=self.cache_hit_ratio,
            last_source=source,
            last_cell=cell_label,
            last_wall_s=wall_s,
        )

    @staticmethod
    def _percentile(walls: list, q: float) -> float:
        """Nearest-rank percentile of a pre-sorted sample (p50 at q=0.5
        matches the historical ``walls[len // 2]``)."""
        if not walls:
            return 0.0
        return walls[min(len(walls) - 1, int(q * len(walls)))]

    def summary(self) -> dict:
        """Machine-readable campaign summary (JSON-safe)."""
        walls = sorted(self.wall_times)
        obs = ({"cells_observed": self.obs_cells,
                "metrics": self.obs_snapshot}
               if self._obs_registry is not None else None)
        return {
            "obs": obs,
            "dist": self.dist,
            "total_cells": self.total,
            "completed": self.completed,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "resumed_from_journal": self.resumed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "elapsed_s": self.elapsed_s,
            "cells_per_sec": self.cells_per_sec,
            "cache_hit_ratio": self.cache_hit_ratio,
            "cell_wall_s": {
                "count": len(walls),
                "mean": sum(walls) / len(walls) if walls else 0.0,
                "min": walls[0] if walls else 0.0,
                "max": walls[-1] if walls else 0.0,
                "p50": self._percentile(walls, 0.50),
                "p90": self._percentile(walls, 0.90),
                "p99": self._percentile(walls, 0.99),
                "total": sum(walls),
            },
        }
