"""Per-campaign durability: a manifest plus an append-only JSONL journal.

A campaign directory holds exactly two files:

* ``manifest.json`` — the campaign's grid fingerprint, runner name and grid
  shape, written once at creation.  Resuming validates the fingerprint so a
  journal recorded under one sweep definition is never replayed into a
  different one (changed config ⇒ changed fingerprint ⇒ hard error instead
  of silently wrong numbers).
* ``journal.jsonl`` — one JSON object per *settled* cell (completed or
  quarantined), appended and flushed as cells finish.  A killed run loses at
  most the cell that was in flight; everything journalled is replayed on
  resume without re-execution.

Records keep the cell's coordinates alongside its key, so reassembling the
``{protocol: SweepSeries}`` result needs no reverse lookup.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.cache import summary_from_dict, summary_to_dict
from repro.stats.metrics import MetricsSummary

__all__ = ["CampaignJournal", "CellRecord", "ManifestMismatch"]


class ManifestMismatch(RuntimeError):
    """Raised when resuming a journal recorded for a different sweep."""


@dataclass
class CellRecord:
    """One settled cell: its identity, outcome, and how it got there."""

    key: str
    protocol: str
    x: float
    seed: int
    status: str                      # "done" | "quarantined"
    source: str = "run"              # "run" | "cache" | "journal"
    summary: Optional[MetricsSummary] = None
    attempts: int = 1
    wall_s: float = 0.0
    error: str = ""

    def to_json(self) -> str:
        payload = asdict(self)
        payload["summary"] = (
            summary_to_dict(self.summary) if self.summary is not None else None
        )
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "CellRecord":
        payload = json.loads(line)
        summary = payload.get("summary")
        payload["summary"] = (
            summary_from_dict(summary) if summary is not None else None
        )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


class CampaignJournal:
    """Append-only record of a campaign's settled cells."""

    MANIFEST = "manifest.json"
    JOURNAL = "journal.jsonl"

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL

    # ------------------------------------------------------------- manifest

    def write_manifest(self, manifest: dict) -> None:
        self.manifest_path.write_text(json.dumps(manifest, sort_keys=True,
                                                 indent=1) + "\n")

    def read_manifest(self) -> Optional[dict]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None

    def ensure_manifest(self, manifest: dict, resume: bool) -> None:
        """Create the manifest, or on resume check it matches ``manifest``."""
        existing = self.read_manifest()
        if existing is None:
            self.write_manifest(manifest)
            return
        if existing.get("fingerprint") != manifest.get("fingerprint"):
            if not resume:
                # A fresh (non-resume) run over a stale directory restarts it.
                self.reset()
                self.write_manifest(manifest)
                return
            raise ManifestMismatch(
                f"campaign directory {self.directory} was recorded for a "
                f"different sweep (fingerprint {existing.get('fingerprint')!r}"
                f" != {manifest.get('fingerprint')!r}); refusing to resume. "
                "Point --campaign-dir somewhere fresh or delete the directory."
            )

    def reset(self) -> None:
        for path in (self.manifest_path, self.journal_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # -------------------------------------------------------------- journal

    def append(self, record: CellRecord) -> None:
        with open(self.journal_path, "a") as handle:
            handle.write(record.to_json() + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> dict[str, CellRecord]:
        """Replay the journal: ``{cell key: record}``, later lines winning.

        Torn trailing lines (a write cut off mid-crash) are skipped — the
        cell simply re-executes on resume.
        """
        records: dict[str, CellRecord] = {}
        try:
            lines = self.journal_path.read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = CellRecord.from_json(line)
            except (ValueError, TypeError):
                continue
            records[record.key] = record
        return records
