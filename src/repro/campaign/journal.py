"""Per-campaign durability: a manifest plus an append-only JSONL journal.

A campaign directory holds exactly two files:

* ``manifest.json`` — the campaign's grid fingerprint, runner name and grid
  shape, written once at creation.  Resuming validates the fingerprint so a
  journal recorded under one sweep definition is never replayed into a
  different one (changed config ⇒ changed fingerprint ⇒ hard error instead
  of silently wrong numbers).
* ``journal.jsonl`` — one JSON object per *settled* cell (completed or
  quarantined), appended and flushed as cells finish.  A killed run loses at
  most the cell that was in flight; everything journalled is replayed on
  resume without re-execution.

(A third, optional file — ``summary.json`` — holds the latest campaign
telemetry snapshot for tooling; it is informational and never read on
resume.)

Crash safety: the manifest and summary are published atomically (temp
file + ``os.replace``), and journal appends are flushed and — by default
— fsynced per record, so a worker killed mid-write never leaves a torn
manifest and at most one torn trailing journal line, which ``load``
skips.  Campaigns with many tiny cells can trade the per-append fsync for
throughput with ``fsync=False`` (the OS still gets the flush).

Records keep the cell's coordinates alongside its key, so reassembling the
``{protocol: SweepSeries}`` result needs no reverse lookup.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from repro.campaign.cache import summary_from_dict, summary_to_dict
from repro.stats.metrics import MetricsSummary

__all__ = ["CampaignJournal", "CellRecord", "ManifestMismatch"]


class ManifestMismatch(RuntimeError):
    """Raised when resuming a journal recorded for a different sweep."""


@dataclass
class CellRecord:
    """One settled cell: its identity, outcome, and how it got there."""

    key: str
    protocol: str
    x: float
    seed: int
    status: str                      # "done" | "quarantined"
    source: str = "run"              # "run" | "cache" | "journal"
    summary: Optional[MetricsSummary] = None
    attempts: int = 1
    wall_s: float = 0.0
    error: str = ""

    def to_json(self) -> str:
        payload = asdict(self)
        payload["summary"] = (
            summary_to_dict(self.summary) if self.summary is not None else None
        )
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "CellRecord":
        payload = json.loads(line)
        summary = payload.get("summary")
        payload["summary"] = (
            summary_from_dict(summary) if summary is not None else None
        )
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


class CampaignJournal:
    """Append-only record of a campaign's settled cells."""

    MANIFEST = "manifest.json"
    JOURNAL = "journal.jsonl"
    SUMMARY = "summary.json"

    def __init__(self, directory: str | os.PathLike, *, fsync: bool = True):
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        #: fsync each appended record (default).  ``False`` keeps the
        #: flush but skips the disk barrier — faster for tiny cells, and a
        #: crash can then lose the last few settled (not in-flight) cells.
        self.fsync = fsync

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL

    @property
    def summary_path(self) -> Path:
        return self.directory / self.SUMMARY

    def _atomic_write(self, path: Path, text: str) -> None:
        """Write-then-``os.replace`` publish: a crash at any instant leaves
        either the previous file or the new one, never a torn mix."""
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------- manifest

    def write_manifest(self, manifest: dict) -> None:
        self._atomic_write(self.manifest_path,
                           json.dumps(manifest, sort_keys=True, indent=1)
                           + "\n")

    def read_manifest(self) -> Optional[dict]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None

    def ensure_manifest(self, manifest: dict, resume: bool) -> None:
        """Create the manifest, or on resume check it matches ``manifest``."""
        existing = self.read_manifest()
        if existing is None:
            self.write_manifest(manifest)
            return
        if existing.get("fingerprint") != manifest.get("fingerprint"):
            if not resume:
                # A fresh (non-resume) run over a stale directory restarts it.
                self.reset()
                self.write_manifest(manifest)
                return
            raise ManifestMismatch(
                f"campaign directory {self.directory} was recorded for a "
                f"different sweep (fingerprint {existing.get('fingerprint')!r}"
                f" != {manifest.get('fingerprint')!r}); refusing to resume. "
                "Point --campaign-dir somewhere fresh or delete the directory."
            )

    def reset(self) -> None:
        for path in (self.manifest_path, self.journal_path,
                     self.summary_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # -------------------------------------------------------------- summary

    def write_summary(self, summary: dict) -> None:
        """Publish the latest telemetry snapshot (atomic; informational)."""
        self._atomic_write(self.summary_path,
                           json.dumps(summary, sort_keys=True, indent=1,
                                      default=str) + "\n")

    def read_summary(self) -> Optional[dict]:
        try:
            return json.loads(self.summary_path.read_text())
        except (OSError, ValueError):
            return None

    # -------------------------------------------------------------- journal

    def append(self, record: CellRecord) -> None:
        with open(self.journal_path, "a") as handle:
            handle.write(record.to_json() + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def load(self) -> dict[str, CellRecord]:
        """Replay the journal: ``{cell key: record}``, later lines winning.

        Torn trailing lines (a write cut off mid-crash) are skipped — the
        cell simply re-executes on resume.
        """
        records: dict[str, CellRecord] = {}
        try:
            lines = self.journal_path.read_text().splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = CellRecord.from_json(line)
            except (ValueError, TypeError):
                continue
            records[record.key] = record
        return records
