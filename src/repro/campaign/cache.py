"""Content-addressed on-disk result cache.

Layout mirrors git's object store: ``<root>/<key[:2]>/<key[2:]>.json``, one
file per cell result, sharded by the first byte of the key so directories
stay small even for campaigns of hundreds of thousands of cells.  Each entry
stores the :class:`~repro.stats.metrics.MetricsSummary` fields verbatim
(floats survive JSON exactly via shortest-round-trip repr) plus enough
metadata to audit where it came from.

Writes are atomic (temp file + ``os.replace``) so a killed run never leaves
a torn entry, and concurrent writers of the same key are idempotent — they
write identical bytes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterable, Optional

from repro.stats.metrics import MetricsSummary

__all__ = ["ResultCache", "summary_to_dict", "summary_from_dict"]


def summary_to_dict(summary) -> dict:
    """Serialize a cell result — a classic :class:`MetricsSummary` (plain
    field dict, the historical on-disk form) or an
    :class:`~repro.experiments.result.ExperimentResult` (tagged dict)."""
    if hasattr(summary, "to_dict"):  # ExperimentResult, duck-typed to avoid
        return summary.to_dict()     # a campaign → experiments import cycle
    return dataclasses.asdict(summary)


def summary_from_dict(payload: dict):
    """Inverse of :func:`summary_to_dict`; untagged payloads are classic
    summaries, so caches written before ExperimentResult existed still load."""
    if payload.get("__kind__") == "experiment_result":
        from repro.experiments.result import ExperimentResult
        return ExperimentResult.from_dict(payload)
    fields = {f.name for f in dataclasses.fields(MetricsSummary)}
    return MetricsSummary(**{k: v for k, v in payload.items() if k in fields})


class ResultCache:
    """Get/put of cell results keyed by their content address."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but could not be decoded; each is
        #: also counted as a miss and quarantined out of the store.
        self.malformed = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``.corrupt``) so the next get is a
        clean miss and the bytes stay around for forensics; a plain unlink
        if even the rename fails."""
        self.malformed += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def get(self, key: str) -> Optional[MetricsSummary]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # On-disk bytes that aren't JSON: the atomic publish means this
            # was never a torn write — the entry itself is corrupt.
            self.misses += 1
            self._quarantine(path)
            return None
        try:
            summary = summary_from_dict(payload["summary"])
        except (KeyError, TypeError, ValueError, AttributeError):
            # Valid JSON but not a cache entry (missing "summary", wrong
            # shape, bad field types): a miss, not a crash in the read path.
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return summary

    def put(self, key: str, summary: MetricsSummary, meta: dict | None = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "summary": summary_to_dict(summary),
            "created_at": time.time(),
        }
        if meta:
            payload["meta"] = meta
        blob = json.dumps(payload, sort_keys=True, indent=1)
        # Atomic publish: a reader sees either nothing or the full entry.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------ reporting

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entry_count(self) -> int:
        """Number of entries on disk (walks the store; for tooling/tests)."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def stats(self) -> dict:
        """Operational snapshot: on-disk shape plus this process's counters
        (the ``repro cache stats`` / ``GET /v1/stats`` payload)."""
        entries = 0
        size_bytes = 0
        quarantined = 0
        for path in self.root.glob("??/*"):
            try:
                size = path.stat().st_size
            except OSError:  # racing a concurrent gc/quarantine
                continue
            if path.suffix == ".json":
                entries += 1
                size_bytes += size
            elif path.suffix == ".corrupt":
                quarantined += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "size_bytes": size_bytes,
            "quarantined_files": quarantined,
            "hits": self.hits,
            "misses": self.misses,
            "malformed": self.malformed,
            "hit_ratio": self.hit_ratio,
        }

    def key_of(self, path: Path) -> str:
        """Invert :meth:`_path`: the content address an entry file stores."""
        return path.parent.name + path.stem

    def gc(self, older_than_s: float, *, now: float | None = None,
           protect: "Iterable[str] | None" = None) -> dict:
        """Remove entries whose mtime is more than ``older_than_s`` seconds
        old (quarantined ``.corrupt`` files are always collected).

        ``protect`` is a set of cell keys that must survive regardless of
        age — a running campaign's in-flight work (live spool leases plus
        unsettled spooled cells), so a gc racing a distributed sweep never
        evicts a result a worker just published or is about to re-read.
        Returns ``{"removed": n, "freed_bytes": n, "kept": n,
        "protected": n}``."""
        cutoff = (time.time() if now is None else now) - older_than_s
        protected_keys = set(protect) if protect is not None else set()
        removed = freed = kept = protected = 0
        for path in self.root.glob("??/*"):
            if path.suffix not in (".json", ".corrupt"):
                continue
            try:
                if (path.suffix == ".json"
                        and self.key_of(path) in protected_keys):
                    protected += 1
                    kept += 1
                    continue
                stat = path.stat()
                if path.suffix == ".corrupt" or stat.st_mtime < cutoff:
                    os.unlink(path)
                    removed += 1
                    freed += stat.st_size
                else:
                    kept += 1
            except OSError:  # already gone: a concurrent gc won the race
                continue
        return {"removed": removed, "freed_bytes": freed, "kept": kept,
                "protected": protected}
