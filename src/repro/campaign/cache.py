"""Content-addressed on-disk result cache.

Layout mirrors git's object store: ``<root>/<key[:2]>/<key[2:]>.json``, one
file per cell result, sharded by the first byte of the key so directories
stay small even for campaigns of hundreds of thousands of cells.  Each entry
stores the :class:`~repro.stats.metrics.MetricsSummary` fields verbatim
(floats survive JSON exactly via shortest-round-trip repr) plus enough
metadata to audit where it came from.

Writes are atomic (temp file + ``os.replace``) so a killed run never leaves
a torn entry, and concurrent writers of the same key are idempotent — they
write identical bytes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.stats.metrics import MetricsSummary

__all__ = ["ResultCache", "summary_to_dict", "summary_from_dict"]


def summary_to_dict(summary) -> dict:
    """Serialize a cell result — a classic :class:`MetricsSummary` (plain
    field dict, the historical on-disk form) or an
    :class:`~repro.experiments.result.ExperimentResult` (tagged dict)."""
    if hasattr(summary, "to_dict"):  # ExperimentResult, duck-typed to avoid
        return summary.to_dict()     # a campaign → experiments import cycle
    return dataclasses.asdict(summary)


def summary_from_dict(payload: dict):
    """Inverse of :func:`summary_to_dict`; untagged payloads are classic
    summaries, so caches written before ExperimentResult existed still load."""
    if payload.get("__kind__") == "experiment_result":
        from repro.experiments.result import ExperimentResult
        return ExperimentResult.from_dict(payload)
    fields = {f.name for f in dataclasses.fields(MetricsSummary)}
    return MetricsSummary(**{k: v for k, v in payload.items() if k in fields})


class ResultCache:
    """Get/put of cell results keyed by their content address."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str) -> Optional[MetricsSummary]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary_from_dict(payload["summary"])

    def put(self, key: str, summary: MetricsSummary, meta: dict | None = None) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "summary": summary_to_dict(summary),
            "created_at": time.time(),
        }
        if meta:
            payload["meta"] = meta
        blob = json.dumps(payload, sort_keys=True, indent=1)
        # Atomic publish: a reader sees either nothing or the full entry.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------ reporting

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entry_count(self) -> int:
        """Number of entries on disk (walks the store; for tooling/tests)."""
        return sum(1 for _ in self.root.glob("??/*.json"))
