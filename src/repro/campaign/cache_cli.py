"""``repro cache`` — operational companion to the result cache.

::

    python -m repro.experiments cache stats [--cache-dir DIR] [--json]
    python -m repro.experiments cache gc --older-than 7d [--cache-dir DIR]
                                         [--dry-run]

``stats`` reports the store's shape (entry count, on-disk bytes,
quarantined ``.corrupt`` files); ``gc`` prunes entries older than a cutoff
given as seconds or with a ``s``/``m``/``h``/``d``/``w`` suffix.  Both
default to the campaign CLI's cache location, ``campaigns/cache``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.campaign.cache import ResultCache

__all__ = ["main", "parse_age"]

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}

#: Where the campaign CLI puts the cache when no --cache-dir is given.
DEFAULT_CACHE_DIR = os.path.join("campaigns", "cache")


def parse_age(text: str) -> float:
    """``"90"`` → 90 s; ``"30m"``/``"12h"``/``"7d"``/``"2w"`` likewise."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r} (use e.g. 3600, 30m, 12h, 7d)") from None
    if seconds < 0:
        raise argparse.ArgumentTypeError("age must be non-negative")
    return seconds


def _human_bytes(n: int) -> str:
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or suffix == "GiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cache",
        description="Inspect and prune the content-addressed result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="entry count, bytes, counters")
    stats.add_argument("--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
                       help=f"cache root (default {DEFAULT_CACHE_DIR})")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")

    gc = sub.add_parser("gc", help="age-based pruning")
    gc.add_argument("--older-than", metavar="AGE", type=parse_age,
                    required=True,
                    help="remove entries older than AGE (e.g. 3600, 12h, 7d)")
    gc.add_argument("--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
                    help=f"cache root (default {DEFAULT_CACHE_DIR})")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without unlinking")
    gc.add_argument("--campaign-dir", metavar="DIR", action="append",
                    default=[], dest="campaign_dirs",
                    help="protect a running campaign's in-flight cells "
                         "(live spool leases + unsettled cells); repeatable")
    return parser


def _cmd_stats(args) -> int:
    cache = ResultCache(args.cache_dir)
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True, indent=1))
        return 0
    print(f"cache root:    {stats['root']}")
    print(f"entries:       {stats['entries']} "
          f"({_human_bytes(stats['size_bytes'])})")
    print(f"quarantined:   {stats['quarantined_files']} .corrupt file(s)")
    print(f"this process:  {stats['hits']} hits / {stats['misses']} misses "
          f"/ {stats['malformed']} malformed "
          f"(hit ratio {stats['hit_ratio']:.0%})")
    return 0


def _protected_keys(campaign_dirs: list[str]) -> set[str]:
    from repro.dist.spool import live_spool_keys
    keys: set[str] = set()
    for directory in campaign_dirs:
        keys |= live_spool_keys(directory)
    return keys


def _cmd_gc(args) -> int:
    cache = ResultCache(args.cache_dir)
    protect = _protected_keys(args.campaign_dirs)
    if args.dry_run:
        import time
        cutoff = time.time() - args.older_than
        doomed = []
        for path in cache.root.glob("??/*"):
            try:
                if path.suffix == ".json" and cache.key_of(path) in protect:
                    continue
                if (path.suffix == ".corrupt"
                        or (path.suffix == ".json"
                            and path.stat().st_mtime < cutoff)):
                    doomed.append(path)
            except OSError:
                continue
        size = sum(p.stat().st_size for p in doomed if p.exists())
        print(f"would remove {len(doomed)} file(s), "
              f"freeing {_human_bytes(size)}"
              + (f" (protecting {len(protect)} in-flight cells)"
                 if protect else ""))
        return 0
    report = cache.gc(args.older_than, protect=protect)
    print(f"removed {report['removed']} file(s), "
          f"freed {_human_bytes(report['freed_bytes'])}, "
          f"kept {report['kept']}"
          + (f" ({report['protected']} in-flight protected)"
             if report.get("protected") else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:]) if argv is None else list(argv))
    if args.command == "stats":
        return _cmd_stats(args)
    return _cmd_gc(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
