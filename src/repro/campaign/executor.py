"""Fault-tolerant execution of sweep cells.

Layered over :class:`concurrent.futures.ProcessPoolExecutor`, this executor
adds what the bare pool lacks for long campaigns:

* **per-cell timeout** — a cell that exceeds its deadline is failed, its
  (possibly hung) worker pool is torn down and rebuilt, and innocent
  bystander cells that died with the pool are resubmitted without an
  attempt penalty;
* **bounded retry with backoff** — a cell that raises or times out is
  retried up to ``max_retries`` times, each retry delayed by an exponential
  backoff so a transiently sick machine gets room to recover;
* **``BrokenProcessPool`` recovery** — a worker process dying (OOM kill,
  segfault, ``os._exit``) breaks the whole pool; the executor rebuilds it,
  charges a failed attempt only to cells whose future actually raised, and
  re-queues the rest for free;
* **quarantine** — a cell that exhausts its retries is reported through a
  callback and *excluded* from the results instead of failing the campaign.

Cells run serially in-process when ``max_workers <= 1`` (same retry and
quarantine semantics; timeouts need worker processes and are not enforced
inline).  ``KeyboardInterrupt`` always propagates — an interrupted campaign
is the journal's job to resume, not the executor's to swallow.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = ["Cell", "CellFailure", "ExecutorConfig", "FaultTolerantExecutor",
           "ObservedResult", "ObservedRunner"]


@dataclass(frozen=True)
class Cell:
    """Coordinates of one unit of work; ``key`` is its content address."""
    key: str
    protocol: str
    x: float
    seed: int


@dataclass(frozen=True)
class ObservedResult:
    """What an observed cell returns: the plain summary plus the worker's
    metrics-registry snapshot (JSON-safe, cheap to pickle home)."""

    summary: Any
    obs_snapshot: dict


class ObservedRunner:
    """Picklable wrapper giving each executed cell a fresh
    :class:`~repro.obs.observe.Observability` bundle.

    Only *executed* cells carry observability — cache and journal hits
    settle from the stored plain summary, so campaign-level obs covers the
    cells that actually ran this invocation.
    """

    def __init__(self, run_one: Callable):
        self.run_one = run_one

    def __call__(self, protocol, x, seed, config, **extra):
        from repro.obs.observe import Observability
        obs = Observability()
        summary = self.run_one(protocol, x, seed, config, obs=obs, **extra)
        return ObservedResult(summary=summary, obs_snapshot=obs.snapshot())


@dataclass(frozen=True)
class CellFailure:
    """A quarantined cell: every retry was spent."""
    cell: Cell
    attempts: int
    error: str


@dataclass(frozen=True)
class ExecutorConfig:
    max_workers: int = 1
    #: Per-cell wall-clock deadline; ``None`` disables (process mode only).
    timeout_s: Optional[float] = None
    #: Retries after the first failure; total attempts = max_retries + 1.
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: How often the event loop wakes to check deadlines.
    poll_s: float = 0.1

    def backoff_for(self, attempts: int) -> float:
        return self.backoff_s * self.backoff_multiplier ** max(0, attempts - 1)


@dataclass
class _Task:
    cell: Cell
    attempts: int = 0
    ready_at: float = 0.0


def _invoke(payload):
    """Worker-side cell execution; times itself so queue wait isn't billed."""
    run_one, protocol, x, seed, config, extra = payload
    start = time.monotonic()
    summary = run_one(protocol, x, seed, config, **extra)
    return summary, time.monotonic() - start


class FaultTolerantExecutor:
    """Runs a batch of cells to settlement: each either succeeds (reported
    via ``on_success``) or is quarantined (via ``on_quarantine``)."""

    def __init__(
        self,
        run_one: Callable,
        config: Any,
        extra_kwargs: Mapping | None = None,
        executor_config: ExecutorConfig | None = None,
        on_retry: Callable[[Cell, int, str], None] | None = None,
    ):
        self.run_one = run_one
        self.config = config
        self.extra = dict(extra_kwargs or {})
        self.exec_config = executor_config or ExecutorConfig()
        self.on_retry = on_retry
        self.retries = 0
        self.pool_rebuilds = 0

    # --------------------------------------------------------------- public

    def run(
        self,
        cells: Sequence[Cell],
        on_success: Callable[[Cell, Any, int, float], None],
        on_quarantine: Callable[[CellFailure], None],
    ) -> None:
        if not cells:
            return
        tasks = [_Task(cell) for cell in cells]
        if self.exec_config.max_workers <= 1:
            self._run_serial(tasks, on_success, on_quarantine)
        else:
            self._run_pool(tasks, on_success, on_quarantine)

    # --------------------------------------------------------------- serial

    def _run_serial(self, tasks, on_success, on_quarantine) -> None:
        for task in tasks:
            while True:
                task.attempts += 1
                start = time.monotonic()
                try:
                    summary = self.run_one(task.cell.protocol, task.cell.x,
                                           task.cell.seed, self.config,
                                           **self.extra)
                except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                    if not self._note_failure(task, repr(exc), on_quarantine):
                        break
                    time.sleep(self.exec_config.backoff_for(task.attempts))
                else:
                    on_success(task.cell, summary, task.attempts,
                               time.monotonic() - start)
                    break

    # ----------------------------------------------------------------- pool

    def _payload(self, task: _Task):
        return (self.run_one, task.cell.protocol, task.cell.x,
                task.cell.seed, self.config, self.extra)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.exec_config.max_workers)

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        # shutdown() never terminates a hung worker; do it ourselves first.
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead races
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        self.pool_rebuilds += 1

    def _note_failure(self, task: _Task, error: str, on_quarantine) -> bool:
        """Record a failed attempt.  True if the task will be retried."""
        if task.attempts > self.exec_config.max_retries:
            on_quarantine(CellFailure(task.cell, task.attempts, error))
            return False
        self.retries += 1
        if self.on_retry is not None:
            self.on_retry(task.cell, task.attempts, error)
        return True

    def _run_pool(self, tasks, on_success, on_quarantine) -> None:
        cfg = self.exec_config
        pending: deque[_Task] = deque(tasks)
        waiting: list[_Task] = []          # backing off until ready_at
        inflight: dict = {}                # future -> (task, deadline)
        pool = self._new_pool()

        def requeue(task: _Task, error: str) -> None:
            if self._note_failure(task, error, on_quarantine):
                task.ready_at = time.monotonic() + cfg.backoff_for(task.attempts)
                waiting.append(task)

        def rebuild(reason_tasks_free: list[_Task]) -> None:
            nonlocal pool
            self._kill_pool(pool)
            pool = self._new_pool()
            # Bystanders lost to the teardown retry without an attempt charge.
            for task in reason_tasks_free:
                task.attempts -= 1
                pending.appendleft(task)

        try:
            while pending or waiting or inflight:
                now = time.monotonic()
                still_waiting = []
                for task in waiting:
                    (pending.append if task.ready_at <= now
                     else still_waiting.append)(task)
                waiting[:] = still_waiting

                while pending and len(inflight) < cfg.max_workers:
                    task = pending.popleft()
                    try:
                        future = pool.submit(_invoke, self._payload(task))
                    except BrokenProcessPool:
                        # The pool died between loop iterations; rebuild and
                        # let the normal drain path settle the in-flight cells.
                        pending.appendleft(task)
                        bystanders = [t for t, _dl in inflight.values()]
                        inflight.clear()
                        rebuild(bystanders)
                        break
                    task.attempts += 1
                    deadline = (now + cfg.timeout_s
                                if cfg.timeout_s is not None else float("inf"))
                    inflight[future] = (task, deadline)

                if not inflight:
                    # Everything is backing off; sleep until the earliest wakes.
                    time.sleep(max(0.001, min(t.ready_at for t in waiting) - now))
                    continue

                done, _ = wait(set(inflight), timeout=cfg.poll_s,
                               return_when=FIRST_COMPLETED)
                pool_broke = False
                for future in done:
                    task, _deadline = inflight.pop(future)
                    try:
                        summary, wall_s = future.result()
                    except BrokenProcessPool as exc:
                        pool_broke = True
                        requeue(task, f"worker died: {exc!r}")
                    except Exception as exc:  # noqa: BLE001
                        requeue(task, repr(exc))
                    else:
                        on_success(task.cell, summary, task.attempts, wall_s)

                now = time.monotonic()
                overdue = [f for f, (_t, dl) in inflight.items() if now >= dl]
                if overdue:
                    for future in overdue:
                        task, _deadline = inflight.pop(future)
                        requeue(task, f"timeout after {cfg.timeout_s}s")
                    bystanders = [task for task, _dl in inflight.values()]
                    inflight.clear()
                    rebuild(bystanders)
                elif pool_broke:
                    # Sibling futures died with the pool through no fault of
                    # their own — but a few may have finished first; keep those.
                    bystanders = []
                    for future, (task, _deadline) in list(inflight.items()):
                        if future.done():
                            try:
                                summary, wall_s = future.result()
                            except Exception:  # noqa: BLE001
                                bystanders.append(task)
                            else:
                                on_success(task.cell, summary, task.attempts,
                                           wall_s)
                        else:
                            bystanders.append(task)
                    inflight.clear()
                    rebuild(bystanders)
        finally:
            self._kill_pool(pool)
