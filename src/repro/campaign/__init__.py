"""Durable, resumable experiment campaigns.

Every figure in the paper is a (protocol × x × seed) grid of independent
single-threaded runs.  :mod:`repro.experiments.parallel` fans those cells
over a process pool, but each invocation recomputes everything, a crashed
worker aborts the whole sweep, and nothing survives the process.  This
package turns one-shot sweeps into *campaigns*:

* :mod:`repro.campaign.fingerprint` — stable content addressing: every cell
  is keyed by a hash of (runner name, protocol, x, seed, config fields,
  package version), so identical work is recognized across invocations and
  any config change invalidates exactly the cells it affects;
* :mod:`repro.campaign.cache` — an on-disk result store addressed by those
  keys; re-running an identical sweep is a near-instant cache hit;
* :mod:`repro.campaign.executor` — a fault-tolerant layer over the process
  pool: per-cell timeouts, bounded retry with backoff,
  ``BrokenProcessPool`` recovery, and quarantine of persistently failing
  cells (reported, never fatal to their neighbours);
* :mod:`repro.campaign.journal` — a JSONL journal plus manifest per
  campaign directory, so a killed run resumed with ``resume=True``
  re-executes only the missing cells and reassembles bit-identical
  ``{protocol: SweepSeries}`` results;
* :mod:`repro.campaign.telemetry` — per-cell wall time, cells/sec, ETA,
  cache-hit ratio and retry counts, surfaced through a progress callback
  and a machine-readable summary.

Usage::

    from repro.campaign import run_campaign
    from repro.experiments.fig1_ssaf import Fig1Config, run_one

    config = Fig1Config.active()
    outcome = run_campaign(
        run_one,
        runner_name="fig1",
        protocols=config.protocols,
        xs=config.intervals_s,
        seeds=config.seeds,
        config=config,
        cache_dir="~/.cache/repro",
        campaign_dir="campaigns/fig1",
        resume=True,
        workers=4,
    )
    results = outcome.results          # {protocol: SweepSeries}
    print(outcome.summary)             # telemetry dict
"""

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CellFailure, ExecutorConfig, FaultTolerantExecutor
from repro.campaign.fingerprint import campaign_fingerprint, canonicalize, cell_key
from repro.campaign.journal import CampaignJournal, CellRecord
from repro.campaign.runner import (
    CampaignOutcome,
    CampaignSpec,
    ObservedResult,
    run_campaign,
    run_spec,
)
from repro.campaign.telemetry import CampaignTelemetry, ProgressEvent

__all__ = [
    "CampaignJournal",
    "CampaignOutcome",
    "CampaignSpec",
    "CampaignTelemetry",
    "CellFailure",
    "CellRecord",
    "ExecutorConfig",
    "FaultTolerantExecutor",
    "ObservedResult",
    "ProgressEvent",
    "ResultCache",
    "campaign_fingerprint",
    "canonicalize",
    "cell_key",
    "run_campaign",
    "run_spec",
]
