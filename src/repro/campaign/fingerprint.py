"""Content addressing for sweep cells.

A cell's identity is everything that determines its result: which runner,
which (protocol, x, seed) coordinates, every field of the experiment config
(nested dataclasses included), any extra keyword arguments, and the package
version.  Two invocations that agree on all of those produce the same
:class:`~repro.stats.metrics.MetricsSummary`, so their results can be shared
through the cache; change any one of them and the key — hence the cache
entry — changes with it.

Canonicalization is deliberately conservative: dataclasses are tagged with
their class name so two config types with identical fields don't collide,
floats go through ``repr`` (shortest round-trip form, exact), and unknown
objects fall back to ``repr`` so *something* always hashes rather than
silently aliasing distinct configs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = ["canonicalize", "cell_key", "campaign_fingerprint", "runner_name_of"]


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr is the shortest exact round-trip form; avoids JSON float quirks.
        return {"__float__": repr(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": canonicalize(obj.tolist())}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return canonicalize(float(obj))
    if isinstance(obj, Mapping):
        return {
            "__mapping__": sorted(
                (str(k), canonicalize(v)) for k, v in obj.items()
            )
        }
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(v), sort_keys=True)
                                  for v in obj)}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, type):
        return {"__type__": f"{obj.__module__}.{obj.__qualname__}"}
    if callable(obj):
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
        return {"__callable__": f"{getattr(obj, '__module__', '?')}.{name}"}
    return {"__repr__": repr(obj)}


def _digest(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _package_version() -> str:
    from repro import __version__
    return __version__


def runner_name_of(run_one: Callable) -> str:
    """Default runner identity: the callable's module-qualified name."""
    return f"{getattr(run_one, '__module__', '?')}.{run_one.__qualname__}"


def cell_key(
    runner_name: str,
    protocol: str,
    x: float,
    seed: int,
    config: Any,
    extra_kwargs: Mapping | None = None,
) -> str:
    """Content address of one sweep cell (64 hex chars)."""
    payload = {
        "runner": runner_name,
        "protocol": protocol,
        "x": canonicalize(x),
        "seed": int(seed),
        "config": canonicalize(config),
        "extra": canonicalize(dict(extra_kwargs or {})),
        "version": _package_version(),
    }
    return _digest(payload)


def campaign_fingerprint(
    runner_name: str,
    protocols: Sequence[str],
    xs: Sequence[float],
    seeds: Sequence[int],
    config: Any,
    extra_kwargs: Mapping | None = None,
) -> str:
    """Identity of a whole campaign grid — guards against resuming a journal
    produced by a different sweep definition."""
    payload = {
        "runner": runner_name,
        "protocols": list(protocols),
        "xs": canonicalize(list(xs)),
        "seeds": [int(s) for s in seeds],
        "config": canonicalize(config),
        "extra": canonicalize(dict(extra_kwargs or {})),
        "version": _package_version(),
    }
    return _digest(payload)
