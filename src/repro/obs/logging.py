"""Structured logging for the operational layer (daemon, campaigns, CLI).

One log record is one *event* with typed fields — never an interpolated
sentence — so ``jq`` and log pipelines can select on ``event`` and
``trace_id`` directly::

    {"ts": 1754700000.123, "level": "info", "logger": "serve.http",
     "event": "request", "trace_id": "9be1…", "method": "POST",
     "path": "/v1/cells", "status": 202, "duration_ms": 1.8}

The surface is deliberately tiny:

* :func:`configure` — process-wide level / format / stream, driven by the
  ``--log-level`` / ``--log-json`` CLI flags.  Until it is called, logging
  is **disabled** and every log call is a single integer comparison — the
  zero-cost discipline the rest of ``repro.obs`` follows.
* :func:`get_logger` — a named :class:`StructuredLogger`; ``bind(**fields)``
  returns a child with fields attached to every record (e.g. a lane name).

Text mode (the default when configured) renders the same record as one
aligned human line; ``--log-json`` switches to JSON lines.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Mapping, Optional, TextIO

__all__ = ["StructuredLogger", "configure", "get_logger", "is_configured",
           "LEVELS"]

#: Level names in severity order.
LEVELS = ("debug", "info", "warning", "error")
_LEVEL_NO = {name: i for i, name in enumerate(LEVELS)}
_OFF = len(LEVELS)  # above every level: nothing passes


class _Config:
    """Process-wide sink configuration (one, mutable, lock-protected)."""

    def __init__(self) -> None:
        self.level_no = _OFF
        self.json_mode = False
        self.stream: Optional[TextIO] = None
        self.lock = threading.Lock()


_CONFIG = _Config()


def configure(level: str = "info", *, json_mode: bool = False,
              stream: TextIO | None = None) -> None:
    """Enable logging process-wide.  ``level`` is one of ``debug``,
    ``info``, ``warning``, ``error`` or ``off``."""
    if level == "off":
        _CONFIG.level_no = _OFF
        return
    if level not in _LEVEL_NO:
        raise ValueError(f"unknown log level {level!r} "
                         f"(choose from {LEVELS + ('off',)})")
    _CONFIG.level_no = _LEVEL_NO[level]
    _CONFIG.json_mode = json_mode
    _CONFIG.stream = stream


def is_configured() -> bool:
    """True once :func:`configure` enabled a level."""
    return _CONFIG.level_no < _OFF


def _render_text(record: Mapping[str, Any]) -> str:
    ts = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
    ms = int((record["ts"] % 1) * 1000)
    head = (f"{ts}.{ms:03d} {record['level'].upper():<7} "
            f"{record['logger']} {record['event']}")
    fields = " ".join(
        f"{key}={value}" for key, value in record.items()
        if key not in ("ts", "level", "logger", "event") and value is not None)
    return f"{head} {fields}" if fields else head


class StructuredLogger:
    """A named logger writing one structured record per event."""

    __slots__ = ("name", "_bound")

    def __init__(self, name: str, bound: Mapping[str, Any] | None = None):
        self.name = name
        self._bound = dict(bound) if bound else {}

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger with ``fields`` attached to every record."""
        return StructuredLogger(self.name, {**self._bound, **fields})

    # ------------------------------------------------------------- emission

    def log(self, level: str, event: str, *,
            trace_id: str | None = None, **fields: Any) -> None:
        cfg = _CONFIG
        if _LEVEL_NO.get(level, _OFF) < cfg.level_no:
            return
        record: dict[str, Any] = {
            "ts": time.time(), "level": level, "logger": self.name,
            "event": event,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        if self._bound:
            record.update(self._bound)
        if fields:
            record.update(fields)
        line = (json.dumps(record, sort_keys=False, default=str)
                if cfg.json_mode else _render_text(record))
        stream = cfg.stream if cfg.stream is not None else sys.stderr
        with cfg.lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):  # closed stream: drop, don't crash
                pass

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


_LOGGERS: dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """The (unbound) logger for ``name``; cheap to call anywhere."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
