"""Sampling hotspot profiler with per-subsystem attribution.

A background thread samples the target thread's Python stack (via
``sys._current_frames``) on a fixed interval and buckets every sample two
ways:

* **subsystem** — the innermost frame inside the ``repro`` package decides
  which layer owns the sample (``phy``/``mac``/``net``/``sim``/``obs``/…),
  so the report answers "where does a cell's wall time go?" at the
  architecture level;
* **function** — ``module:function:line`` of that frame, the conventional
  flat hotspot list.

Sampling (rather than tracing) keeps the probe effect tiny: the profiled
thread runs at full speed between samples, and the sampler costs one
dictionary lookup plus a stack walk per tick on its own thread.  Reports
are machine-readable dicts, written by ``repro profile`` next to
``BENCH_kernel.json`` so performance work has both the regression gate and
the attribution that explains it.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Callable, Optional

__all__ = ["StackSampler", "profile_call", "subsystem_of"]

#: repro.<pkg> → subsystem bucket; unlisted packages report as themselves.
_SUBSYSTEM_PACKAGES = {
    "phy": "phy", "mac": "mac", "net": "net", "sim": "sim", "obs": "obs",
    "core": "net", "app": "app", "topology": "topology", "stats": "stats",
    "experiments": "experiments", "campaign": "campaign",
    "faults": "faults", "serve": "serve", "analysis": "stats",
}


def subsystem_of(module: str) -> Optional[str]:
    """The subsystem bucket for a module name, or None outside ``repro``."""
    if module == "repro":
        return "other"
    if not module.startswith("repro."):
        return None
    package = module.split(".", 2)[1]
    return _SUBSYSTEM_PACKAGES.get(package, package)


class StackSampler:
    """Samples one thread's stack on an interval; builds the hotspot report.

    Use as a context manager around the work to profile::

        sampler = StackSampler(interval_s=0.005)
        with sampler:
            run_cell()
        report = sampler.report()
    """

    def __init__(self, interval_s: float = 0.005,
                 target_thread_id: int | None = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.target_thread_id = target_thread_id
        self.samples = 0
        self.missed = 0
        self._subsystems: Counter[str] = Counter()
        self._functions: Counter[tuple[str, str]] = Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._elapsed_s = 0.0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        if self.target_thread_id is None:
            self.target_thread_id = threading.get_ident()
        self._started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._elapsed_s = time.perf_counter() - self._started_at

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- sampling

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self.target_thread_id)
            if frame is None:
                self.missed += 1
                continue
            self._attribute(frame)

    def _attribute(self, frame) -> None:
        """Walk outward from the innermost frame; the first ``repro`` frame
        owns the sample."""
        self.samples += 1
        node = frame
        while node is not None:
            module = node.f_globals.get("__name__", "")
            subsystem = subsystem_of(module)
            if subsystem is not None:
                self._subsystems[subsystem] += 1
                self._functions[
                    (subsystem,
                     f"{module}:{node.f_code.co_name}:"
                     f"{node.f_code.co_firstlineno}")] += 1
                return
            node = node.f_back
        self._subsystems["external"] += 1
        self._functions[("external",
                         f"{frame.f_globals.get('__name__', '?')}:"
                         f"{frame.f_code.co_name}:"
                         f"{frame.f_code.co_firstlineno}")] += 1

    # --------------------------------------------------------------- report

    def report(self, top: int = 30) -> dict:
        """The machine-readable hotspot report (JSON-safe)."""
        total = self.samples
        subsystems = {
            name: {"samples": count,
                   "fraction": count / total if total else 0.0}
            for name, count in sorted(self._subsystems.items(),
                                      key=lambda kv: -kv[1])
        }
        hotspots = [
            {"function": func, "subsystem": subsystem, "samples": count,
             "fraction": count / total if total else 0.0}
            for (subsystem, func), count in
            sorted(self._functions.items(), key=lambda kv: -kv[1])[:top]
        ]
        return {
            "schema": 1,
            "interval_s": self.interval_s,
            "elapsed_s": self._elapsed_s,
            "samples": total,
            "missed": self.missed,
            "subsystems": subsystems,
            "hotspots": hotspots,
        }


def profile_call(fn: Callable[..., Any], *args,
                 interval_s: float = 0.005, top: int = 30,
                 **kwargs) -> tuple[Any, dict]:
    """Run ``fn(*args, **kwargs)`` under a sampler on the calling thread;
    returns ``(result, report)``."""
    sampler = StackSampler(interval_s=interval_s)
    with sampler:
        result = fn(*args, **kwargs)
    return result, sampler.report(top=top)
