"""End-to-end span tracing across the serving stack.

A **span** is one named, timed interval of work attributed to a trace: the
client's ``repro query`` mints a trace id, ships it in the
``X-Repro-Trace-Id`` header, and every stage the query passes through —
HTTP handling, admission-queue wait, each execution attempt, the simulation
run itself — records a span against that id.  Spans from all stages land in
one process-wide :class:`SpanSink` (bounded, thread-safe: the event loop
and executor worker threads both record), and the daemon exports a trace's
spans as Chrome trace-event JSON so one Perfetto timeline shows queue wait
vs. retry vs. sim wall time.

Unlike the simulation-time timeline (:mod:`repro.obs.timeline`), span
timestamps are *wall-clock* (``time.time()``): they measure the operational
system, not the simulated one.

Zero-cost discipline: nothing records a span unless a request carried a
trace id — no header, no span, no overhead beyond one ``None`` check.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from typing import Iterable, Optional

__all__ = [
    "Span",
    "SpanSink",
    "TRACE_HEADER",
    "new_trace_id",
    "new_span_id",
    "valid_trace_id",
    "spans_to_chrome_events",
    "spans_to_chrome_trace",
]

#: Header carrying the trace id end to end.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Spans kept per process; the oldest fall off first.
_DEFAULT_CAPACITY = 8192

_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(trace_id: str) -> bool:
    """True for a well-formed client-supplied trace id (8–64 hex chars);
    anything else is rejected rather than echoed into logs and exports."""
    return (isinstance(trace_id, str) and 8 <= len(trace_id) <= 64
            and set(trace_id.lower()) <= _HEX)


class Span:
    """One timed interval of work within a trace.

    Construct it at the start of the work (``Span(name, trace_id=...)``),
    then either call :meth:`finish` (which records the end time and hands
    the span to a sink) or set ``end_s`` yourself for intervals measured
    after the fact (queue waits whose start was noted earlier).
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "category",
                 "start_s", "end_s", "attrs")

    def __init__(self, name: str, *, trace_id: str,
                 parent_id: Optional[str] = None, category: str = "serve",
                 start_s: Optional[float] = None,
                 attrs: Optional[dict] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.category = category
        self.start_s = time.time() if start_s is None else start_s
        self.end_s: Optional[float] = None
        self.attrs = dict(attrs) if attrs else {}

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def finish(self, sink: "SpanSink | None" = None,
               end_s: Optional[float] = None, **attrs) -> "Span":
        """Close the span (now, or at ``end_s``) and record it."""
        self.end_s = time.time() if end_s is None else end_s
        if attrs:
            self.attrs.update(attrs)
        if sink is not None:
            sink.record(self)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


class SpanSink:
    """Bounded, thread-safe store of finished spans.

    The daemon owns one; the event loop and every executor worker thread
    record into it.  Old spans age out FIFO so a long-lived daemon's memory
    stays bounded no matter how many traced queries it serves.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self.recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def spans(self) -> list[Span]:
        """Every retained span, oldest first."""
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> list[Span]:
        """The retained spans of one trace, oldest first."""
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]


# ------------------------------------------------------ Chrome trace export

#: Span categories get their own process rows in the viewer, next to the
#: simulation timeline's phy/mac/net rows (pids 1-4 — see timeline.py).
_CATEGORY_PID = {"client": 8, "serve": 9, "executor": 10, "sim": 11}
_S_TO_US = 1e6


def spans_to_chrome_events(spans: Iterable[Span],
                           t0_s: Optional[float] = None) -> list[dict]:
    """Spans as Chrome trace-event ``X`` (complete) events.

    Timestamps are shifted so the earliest span starts at 0 (Perfetto is
    happier with small numbers than with epoch microseconds); pass ``t0_s``
    to pin the origin when merging with other event sets.
    """
    spans = [s for s in spans if s.end_s is not None]
    if not spans:
        return []
    origin = min(s.start_s for s in spans) if t0_s is None else t0_s
    events: list[dict] = []
    seen: set[tuple[int, int]] = set()
    tids: dict[str, int] = {}
    for span in sorted(spans, key=lambda s: s.start_s):
        pid = _CATEGORY_PID.get(span.category, 9)
        tid = tids.setdefault(span.trace_id, len(tids))
        seen.add((pid, tid))
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id:
            args["parent_id"] = span.parent_id
        args.update({str(k): str(v) for k, v in span.attrs.items()})
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": (span.start_s - origin) * _S_TO_US,
            "dur": span.duration_s * _S_TO_US,
            "args": args,
        })
    for pid in sorted({p for p, _t in seen}):
        name = next((cat for cat, p in _CATEGORY_PID.items() if p == pid),
                    f"pid{pid}")
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})
    for pid, tid in sorted(seen):
        trace = next((t for t, i in tids.items() if i == tid), "?")
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": f"trace {trace[:12]}"}})
    return events


def spans_to_chrome_trace(spans: Iterable[Span]) -> dict:
    """The full JSON object Perfetto / ``chrome://tracing`` load."""
    return {
        "traceEvents": spans_to_chrome_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.spans", "time_unit": "us"},
    }
