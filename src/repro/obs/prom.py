"""Prometheus text exposition (format v0) for metrics-registry snapshots.

:func:`render_exposition` turns any :meth:`MetricsRegistry.snapshot
<repro.obs.registry.MetricsRegistry.snapshot>` dict into the plain-text
format every Prometheus-compatible scraper understands:

* counters and gauges render one sample line per label combination;
* histograms render cumulative ``_bucket{le="..."}`` lines (including the
  mandatory ``le="+Inf"``) plus ``_sum`` and ``_count``;
* metric and label names are sanitized to the exposition grammar, label
  values are escaped (backslash, quote, newline).

:func:`parse_exposition` is the matching tiny stdlib parser — strict
enough to catch a malformed exposition (bad sample lines, ``TYPE``
mismatches, non-numeric values), small enough to run in a CI smoke job
with no dependencies.  ``render`` → ``parse`` round-trips by construction,
and the tests pin it.
"""

from __future__ import annotations

import json
import math
import re
from typing import Mapping

__all__ = ["render_exposition", "parse_exposition", "ExpositionError"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_LABEL_PAIR = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


class ExpositionError(ValueError):
    """The text is not valid Prometheus exposition format."""


def _sanitize_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _sanitize_label(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not sanitized or not _LABEL_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _escape_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra=()) -> str:
    pairs = [f'{_sanitize_label(n)}="{_escape_value(str(v))}"'
             for n, v in zip(labelnames, labelvalues)]
    pairs += [f'{n}="{_escape_value(str(v))}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_exposition(snapshot: Mapping[str, dict]) -> str:
    """A registry snapshot as Prometheus text exposition v0."""
    lines: list[str] = []
    for name in sorted(snapshot):
        desc = snapshot[name]
        kind = desc.get("kind", "untyped")
        metric = _sanitize_name(name)
        labelnames = desc.get("labelnames", [])
        if desc.get("help"):
            lines.append(f"# HELP {metric} {_escape_help(desc['help'])}")
        lines.append(f"# TYPE {metric} {kind}")
        for key, sample in desc.get("samples", {}).items():
            values = json.loads(key)
            if kind == "histogram":
                buckets = sample["buckets"]
                cumulative = 0
                for bound, count in zip(buckets, sample["counts"]):
                    cumulative += count
                    labels = _labels_text(labelnames, values,
                                          extra=[("le", _fmt(bound))])
                    lines.append(f"{metric}_bucket{labels} {cumulative}")
                cumulative += sample["counts"][len(buckets)]
                labels = _labels_text(labelnames, values,
                                      extra=[("le", "+Inf")])
                lines.append(f"{metric}_bucket{labels} {cumulative}")
                labels = _labels_text(labelnames, values)
                lines.append(f"{metric}_sum{labels} {_fmt(sample['sum'])}")
                lines.append(f"{metric}_count{labels} {sample['count']}")
            else:
                labels = _labels_text(labelnames, values)
                lines.append(f"{metric}{labels} {_fmt(float(sample))}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ parser


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"non-numeric sample value {text!r}") from None


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR.match(text, pos)
        if match is None:
            raise ExpositionError(f"malformed label set {{{text}}}")
        raw = match.group("value")
        labels[match.group("name")] = (
            raw.replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))
        pos = match.end()
    return labels


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse exposition text into ``{family: {"type", "help", "samples"}}``.

    Each sample is ``(sample_name, labels_dict, value)``.  Histogram
    ``_bucket``/``_sum``/``_count`` samples are grouped under their family
    name.  Raises :class:`ExpositionError` on any grammar violation —
    that's the point: the CI scrape job uses this as the validator.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base
        return sample_name

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_OK.match(parts[2]):
                raise ExpositionError(f"line {lineno}: malformed HELP")
            families.setdefault(parts[2], {"type": "untyped", "help": "",
                                           "samples": []})
            families[parts[2]]["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_OK.match(parts[2]):
                raise ExpositionError(f"line {lineno}: malformed TYPE")
            if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                raise ExpositionError(
                    f"line {lineno}: unknown type {parts[3]!r}")
            if parts[2] in types and types[parts[2]] != parts[3]:
                raise ExpositionError(
                    f"line {lineno}: TYPE redeclared for {parts[2]!r}")
            types[parts[2]] = parts[3]
            families.setdefault(parts[2], {"type": parts[3], "help": "",
                                           "samples": []})
            families[parts[2]]["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        family = family_of(name)
        entry = families.setdefault(
            family, {"type": types.get(family, "untyped"), "help": "",
                     "samples": []})
        entry["samples"].append((name, labels, value))

    for name, entry in families.items():
        if entry["type"] == "histogram":
            bucket_samples = [s for s in entry["samples"]
                              if s[0] == f"{name}_bucket"]
            if bucket_samples and not any(
                    s[1].get("le") == "+Inf" for s in bucket_samples):
                raise ExpositionError(
                    f"histogram {name!r} missing le=\"+Inf\" bucket")
    return families
