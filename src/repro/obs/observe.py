"""The per-run observability bundle instrumented code talks to.

:class:`Observability` ties the three pillars together for one simulation:
a :class:`~repro.obs.registry.MetricsRegistry` (labeled counters, gauges,
histograms), a :class:`~repro.obs.ledger.PacketLedger` (per-packet causal
chains), and the export surface in :mod:`repro.obs.timeline`.

Instrumentation sites across phy/mac/net call the ``on_*`` hooks, which
update the ledger and the relevant metric families together so the two
views can never disagree about what happened.  Every hook is behind the
cheap ``SimContext.observing`` flag at the call site::

    if self.ctx.observing:
        self.ctx.obs.on_drop(self.now, self.node_id, "mac",
                             DropReason.QUEUE_OVERFLOW, uid)

so a run without observability pays one attribute read per site — the same
zero-cost discipline as :attr:`SimContext.tracing`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.ledger import DropReason, PacketLedger, PacketStage
from repro.obs.registry import MetricsRegistry

__all__ = ["Observability"]

#: Election-backoff histogram bounds: the paper's λ values put election
#: delays in the 100 µs – 100 ms band; resolve that band finely.
_BACKOFF_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2, 3.2e-2,
    6.4e-2, 0.128, 0.256,
)


class Observability:
    """One run's metrics registry + packet ledger, plus the hook surface."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 ledger: PacketLedger | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ledger = ledger if ledger is not None else PacketLedger()
        #: Read through ``SimContext.observing``; flip to pause collection.
        self.enabled = True
        #: kind -> node ids it has touched (backs the fault_nodes gauge).
        self._fault_touched: dict[str, set[int]] = {}

        reg = self.registry
        self.events = reg.counter(
            "repro_packet_events_total",
            "Packet lifecycle events by stage and witnessing layer.",
            ("stage", "layer"))
        self.drops = reg.counter(
            "repro_drops_total",
            "Dropped packet copies by typed reason and layer.",
            ("reason", "layer"))
        self.node_events = reg.counter(
            "repro_node_events_total",
            "Per-node lifecycle event counts by stage.",
            ("node", "stage"))
        self.tx_frames = reg.counter(
            "repro_tx_frames_total",
            "Frames put on the air, by frame kind (the per-protocol "
            "transmission breakdown).",
            ("kind",))
        self.airtime = reg.counter(
            "repro_airtime_seconds_total",
            "Cumulative airtime by frame kind.",
            ("kind",))
        self.delivery_delay = reg.histogram(
            "repro_delivery_delay_seconds",
            "End-to-end delay of delivered packets.")
        self.delivery_hops = reg.histogram(
            "repro_delivery_hops",
            "Hop count of delivered packets.",
            buckets=(1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32))
        self.election_backoff = reg.histogram(
            "repro_election_win_backoff_seconds",
            "Backoff delay of the relay that won each local election.",
            ("protocol",), buckets=_BACKOFF_BUCKETS)
        self.queue_peak = reg.gauge(
            "repro_tx_queue_peak_depth",
            "High watermark of each node's MAC transmit queue.",
            ("node",))
        self.fault_events = reg.counter(
            "repro_fault_events_total",
            "Injected fault transitions by fault kind and action "
            "(e.g. duty_cycle/off, node_crash/recover).",
            ("kind", "action"))
        self.fault_nodes = reg.gauge(
            "repro_fault_nodes_affected",
            "Number of distinct nodes each fault kind has touched.",
            ("kind",))
        self.link_budget_bytes = reg.gauge(
            "repro_channel_link_budget_bytes",
            "Peak bytes held by the channel's link-budget representation "
            "(dense matrices or sparse per-source arrays).")

    # ------------------------------------------------------------- lifecycle

    def _event(self, time: float, node: int, layer: str, stage: PacketStage,
               uid: Optional[tuple], reason: Optional[DropReason] = None,
               **detail: Any) -> None:
        self.ledger.record(time, node, layer, stage, uid, reason, **detail)
        self.events.labels(stage.value, layer).inc()
        self.node_events.labels(node, stage.value).inc()

    def on_originate(self, time: float, node: int, uid: tuple) -> None:
        self._event(time, node, "net", PacketStage.ORIGINATE, uid)

    def on_enqueue(self, time: float, node: int, uid: Optional[tuple],
                   depth: int) -> None:
        self._event(time, node, "mac", PacketStage.ENQUEUE, uid, depth=depth)
        self.queue_peak.labels(node).set_max(depth)

    def on_contend(self, time: float, node: int, uid: Optional[tuple],
                   backoff_s: float, retries: int) -> None:
        self._event(time, node, "mac", PacketStage.CONTEND, uid,
                    backoff_s=backoff_s, retries=retries)

    def on_tx(self, time: float, node: int, uid: Optional[tuple], kind: str,
              duration_s: float) -> None:
        self._event(time, node, "phy", PacketStage.TX, uid, kind=kind,
                    duration_s=duration_s)
        self.tx_frames.labels(kind).inc()
        self.airtime.labels(kind).inc(duration_s)

    def on_rx(self, time: float, node: int, uid: Optional[tuple],
              power_dbm: float) -> None:
        self._event(time, node, "phy", PacketStage.RX, uid, power_dbm=power_dbm)

    def on_suppress(self, time: float, node: int, uid: tuple,
                    **detail: Any) -> None:
        self._event(time, node, "net", PacketStage.SUPPRESS, uid, **detail)

    def on_forward(self, time: float, node: int, uid: tuple,
                   **detail: Any) -> None:
        self._event(time, node, "net", PacketStage.FORWARD, uid, **detail)

    def on_deliver(self, time: float, node: int, uid: tuple, delay_s: float,
                   hops: int) -> None:
        self._event(time, node, "net", PacketStage.DELIVER, uid,
                    delay_s=delay_s, hops=hops)
        self.delivery_delay.observe(delay_s)
        self.delivery_hops.observe(hops)

    def on_drop(self, time: float, node: int, layer: str, reason: DropReason,
                uid: Optional[tuple] = None, **detail: Any) -> None:
        self._event(time, node, layer, PacketStage.DROP, uid, reason, **detail)
        self.drops.labels(reason.value, layer).inc()

    def on_fault(self, time: float, node: int, kind: str, action: str,
                 **detail: Any) -> None:
        """A fault transition fired at ``node`` — e.g. a duty-cycle outage
        turning a radio off (``kind="duty_cycle", action="off"``) or a
        crashed node recovering (``kind="node_crash", action="recover"``).
        Fault entries land in the same ledger as packet events, so the
        timeline export interleaves chaos with its consequences, and the
        invariant checker reconstructs radio off-windows from them."""
        self._event(time, node, "fault", PacketStage.FAULT, None,
                    kind=kind, action=action, **detail)
        self.fault_events.labels(kind, action).inc()
        self._fault_touched.setdefault(kind, set()).add(node)
        self.fault_nodes.labels(kind).set(
            float(len(self._fault_touched[kind])))

    def on_election_win(self, time: float, node: int, uid: tuple,
                        protocol: str, backoff_s: float) -> None:
        """The relay that fired first for ``uid``; feeds the election-win
        backoff histogram the ``repro obs summary`` report renders."""
        self.election_backoff.labels(protocol).observe(backoff_s)

    def on_link_budget(self, bytes_: int) -> None:
        """The channel finished a link-budget rebuild holding ``bytes_`` of
        representation state; the gauge keeps the peak across rebuilds
        (mobility ticks, fault transitions)."""
        self.link_budget_bytes.set_max(float(bytes_))

    # ------------------------------------------------------------- plumbing

    def snapshot(self) -> dict:
        """The registry snapshot (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()
