"""Simulation observability: metrics registry, packet ledger, timelines.

Three pillars (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.registry` — labeled ``Counter``/``Gauge``/``Histogram``
  families in a :class:`MetricsRegistry`, with snapshot/merge APIs so
  parallel campaign workers fold their registries together;
* :mod:`repro.obs.ledger` — the per-packet causal chain
  (originate → enqueue → contend → tx → rx → suppress/forward →
  deliver/drop) with typed :class:`DropReason` values shared by every
  layer;
* :mod:`repro.obs.timeline` — Chrome trace-event JSON (Perfetto /
  chrome://tracing) and JSONL export.

:class:`Observability` bundles a registry and a ledger for one run; hand
it to :func:`repro.experiments.common.build_network` (or a ``SimContext``)
and the instrumented stack fills it in.  Collection is off unless a bundle
is attached — disabled observability costs one flag read per site.
"""

from repro.obs.ledger import DropReason, LedgerEntry, PacketLedger, PacketStage
from repro.obs.logging import StructuredLogger, configure, get_logger
from repro.obs.observe import Observability
from repro.obs.profiler import StackSampler, profile_call
from repro.obs.prom import ExpositionError, parse_exposition, render_exposition
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    merge_snapshots,
    quantiles_from_sample,
)
from repro.obs.spans import Span, SpanSink, new_trace_id, spans_to_chrome_trace
from repro.obs.summary import format_summary, summarize
from repro.obs.timeline import to_chrome_trace, write_chrome_trace, write_jsonl

__all__ = [
    "Counter",
    "DropReason",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "LedgerEntry",
    "MetricsRegistry",
    "Observability",
    "PacketLedger",
    "PacketStage",
    "Span",
    "SpanSink",
    "StackSampler",
    "StructuredLogger",
    "configure",
    "format_summary",
    "get_logger",
    "global_registry",
    "merge_snapshots",
    "new_trace_id",
    "parse_exposition",
    "profile_call",
    "quantiles_from_sample",
    "render_exposition",
    "spans_to_chrome_trace",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
