"""Human- and machine-readable summaries of an observed run.

:func:`summarize` reduces one :class:`~repro.obs.observe.Observability` to
the report ``repro obs summary`` prints: per-reason drop counts (which sum
to the run's total drops by construction — both come from the same
ledger), the per-frame-kind transmission breakdown, stage tallies, and the
election-win backoff histogram.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observe import Observability

__all__ = ["summarize", "format_summary", "format_campaign_summary"]


def _counter_samples(registry, name: str) -> dict[str, float]:
    family = registry.get(name)
    if family is None:
        return {}
    return {"/".join(json.loads(key)): value
            for key, value in family.describe()["samples"].items()}


def summarize(obs: "Observability") -> dict:
    """JSON-safe summary of one observed run."""
    ledger = obs.ledger
    drops = {reason.value: count
             for reason, count in sorted(ledger.drop_counts().items(),
                                         key=lambda kv: -kv[1])}
    stages = {stage.value: count
              for stage, count in sorted(ledger.stage_counts().items(),
                                         key=lambda kv: kv[0].value)}

    from repro.obs.registry import quantiles_from_sample

    def _percentiles(sample: dict) -> dict:
        estimates = quantiles_from_sample(sample, (0.5, 0.9, 0.99))
        return {"p50": estimates[0.5], "p90": estimates[0.9],
                "p99": estimates[0.99]}

    elections = {}
    family = obs.registry.get("repro_election_win_backoff_seconds")
    if family is not None:
        for key, sample in family.describe()["samples"].items():
            (protocol,) = json.loads(key)
            elections[protocol] = {
                "count": sample["count"],
                "mean_backoff_s": (sample["sum"] / sample["count"]
                                   if sample["count"] else 0.0),
                "buckets": sample["buckets"],
                "counts": sample["counts"],
                **_percentiles(sample),
            }

    delivery = None
    family = obs.registry.get("repro_delivery_delay_seconds")
    if family is not None:
        for _key, sample in family.describe()["samples"].items():
            delivery = {
                "count": sample["count"],
                "mean_s": (sample["sum"] / sample["count"]
                           if sample["count"] else 0.0),
                **_percentiles(sample),
            }
            break

    link_budget_bytes = None
    family = obs.registry.get("repro_channel_link_budget_bytes")
    if family is not None:
        for _key, value in family.describe()["samples"].items():
            # The gauge exists from construction; 0.0 means no channel
            # ever reported, so the summary omits the line entirely.
            link_budget_bytes = value if value > 0 else None
            break

    return {
        "delivery_delay": delivery,
        "link_budget_bytes": link_budget_bytes,
        "ledger_entries": len(ledger),
        "total_drops": ledger.total_drops(),
        "drops_by_reason": drops,
        "stages": stages,
        "tx_by_kind": _counter_samples(obs.registry, "repro_tx_frames_total"),
        "airtime_by_kind": _counter_samples(obs.registry,
                                            "repro_airtime_seconds_total"),
        "election_wins": elections,
    }


def format_campaign_summary(summary: dict) -> str:
    """Render a campaign telemetry summary (``summary.json`` from the
    campaign directory) — settlement counts, wall-time percentiles, the
    distributed backend's worker/steal/heartbeat counters, and any
    campaign-wide observability counters (``repro_dist_*`` included)."""
    lines: list[str] = []
    runner = summary.get("runner", "?")
    lines.append(f"campaign: {runner}")
    lines.append(
        f"cells: {summary.get('completed', 0)}/{summary.get('total_cells', 0)}"
        f" (executed {summary.get('executed', 0)}, cache hits "
        f"{summary.get('cache_hits', 0)}, resumed "
        f"{summary.get('resumed_from_journal', 0)}, quarantined "
        f"{summary.get('quarantined', 0)})")
    wall = summary.get("cell_wall_s") or {}
    if wall.get("count"):
        lines.append(
            f"cell wall: mean {wall['mean']:.2f}s  p50 {wall['p50']:.2f}s  "
            f"p90 {wall['p90']:.2f}s  p99 {wall['p99']:.2f}s "
            f"({wall['count']} executed)")

    dist = summary.get("dist")
    if dist:
        lines.append(f"\ndistributed backend: {dist.get('backend', '?')}")
        if dist.get("pending"):
            lines.append(
                f"  pending: {dist.get('cells_spooled', 0)} cells spooled "
                f"into {dist.get('shards', '?')} shard(s); submit "
                f"{', '.join(dist.get('scripts', ()))}")
        else:
            lines.append(
                f"  workers: {dist.get('workers_launched', dist.get('workers', 0))}"
                f" launched, {dist.get('workers_died', 0)} died"
                + (", inline fallback ran"
                   if dist.get("inline_fallback") else ""))
            lines.append(f"  lease TTL: {dist.get('lease_ttl_s', '?')}s")
            lines.append(f"  steals: {dist.get('steals', 0)} "
                         f"(lost races {dist.get('lost_steals', 0)})  "
                         f"heartbeats: {dist.get('heartbeats', 0)}")
            for host, bucket in sorted(dist.get("hosts", {}).items()):
                lines.append(
                    f"    {host:<20} workers={bucket.get('workers', 0)} "
                    f"done={bucket.get('cells_done', 0)} "
                    f"steals={bucket.get('steals', 0)} "
                    f"heartbeats={bucket.get('heartbeats', 0)}")

    obs = summary.get("obs")
    if obs and obs.get("metrics"):
        families = obs["metrics"]
        shown = []
        for name in sorted(families):
            if not name.startswith("repro_dist_"):
                continue
            family = families[name]
            samples = family.get("samples", {})
            total = sum(v for v in samples.values()
                        if isinstance(v, (int, float)))
            shown.append(f"  {name:<32} {total:>10.0f}")
        if shown:
            lines.append("\ndist counters (campaign obs registry):")
            lines.extend(shown)
    return "\n".join(lines)


def _bar(value: int, peak: int, width: int = 30) -> str:
    filled = round(width * value / peak) if peak else 0
    return "#" * filled


def format_summary(summary: dict) -> str:
    """Render :func:`summarize` output as the CLI report."""
    lines: list[str] = []
    lines.append(f"ledger entries: {summary['ledger_entries']}")
    link_budget = summary.get("link_budget_bytes")
    if link_budget is not None:
        lines.append(
            f"channel link budget: {link_budget / 1e6:.2f} MB peak")

    lines.append(f"\ndrops: {summary['total_drops']} total")
    drops = summary["drops_by_reason"]
    peak = max(drops.values(), default=0)
    for reason, count in drops.items():
        lines.append(f"  {reason:<18} {count:>8}  {_bar(count, peak)}")
    if not drops:
        lines.append("  (none)")

    lines.append("\ntransmissions by frame kind:")
    tx = dict(sorted(summary["tx_by_kind"].items(), key=lambda kv: -kv[1]))
    peak = max(tx.values(), default=0)
    airtime = summary.get("airtime_by_kind", {})
    for kind, count in tx.items():
        air = airtime.get(kind, 0.0)
        lines.append(f"  {kind:<18} {count:>8.0f}  air {air:>8.4f}s  "
                     f"{_bar(count, peak)}")
    if not tx:
        lines.append("  (none)")

    lines.append("\nlifecycle stages:")
    for stage, count in summary["stages"].items():
        lines.append(f"  {stage:<18} {count:>8}")

    delivery = summary.get("delivery_delay")
    if delivery and delivery["count"]:
        lines.append(
            f"\ndelivery delay: {delivery['count']} delivered, mean "
            f"{delivery['mean_s'] * 1e3:.2f} ms  "
            f"p50 {delivery['p50'] * 1e3:.2f} ms  "
            f"p90 {delivery['p90'] * 1e3:.2f} ms  "
            f"p99 {delivery['p99'] * 1e3:.2f} ms")

    for protocol, hist in summary["election_wins"].items():
        lines.append(f"\nelection-win backoff ({protocol}): "
                     f"{hist['count']} wins, mean "
                     f"{hist['mean_backoff_s'] * 1e3:.2f} ms")
        if hist["count"] and hist.get("p50") is not None:
            lines.append(
                f"  p50 {hist['p50'] * 1e3:.2f} ms  "
                f"p90 {hist['p90'] * 1e3:.2f} ms  "
                f"p99 {hist['p99'] * 1e3:.2f} ms")
        peak = max(hist["counts"], default=0)
        bounds = hist["buckets"]
        for i, count in enumerate(hist["counts"]):
            if count == 0:
                continue
            label = (f"<= {bounds[i] * 1e3:g} ms" if i < len(bounds)
                     else f"> {bounds[-1] * 1e3:g} ms")
            lines.append(f"  {label:<14} {count:>8}  {_bar(count, peak)}")
    return "\n".join(lines)
