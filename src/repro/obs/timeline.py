"""Timeline export: ledger (+ trace) records as Chrome trace-event JSON.

The Chrome trace-event format is the lingua franca of timeline viewers:
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) both load it
directly.  We map the simulation onto it as

* one *process* per layer (``phy``/``mac``/``net``) so Perfetto groups
  tracks the way the stack is layered;
* one *thread* per node, so every node gets a row per layer;
* transmissions (which have an airtime) as complete events (``ph: "X"``,
  with ``dur``); everything else as instant events (``ph: "i"``);
* drops flagged with their typed reason in ``args``.

Timestamps are microseconds (the format's unit); the simulation clock is
seconds, so a 1 ms airtime renders as a 1000-unit slice.

A flat JSONL export of the same records is provided for ad-hoc analysis
(``jq``, pandas) without a trace viewer.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.ledger import PacketLedger, PacketStage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import TraceRecord

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

_LAYER_PID = {"phy": 1, "mac": 2, "net": 3}
_S_TO_US = 1e6


def _uid_str(uid: Optional[tuple]) -> str:
    if uid is None:
        return "-"
    kind, origin, seq = uid
    return f"{getattr(kind, 'value', kind)}:{origin}:{seq}"


def chrome_trace_events(ledger: PacketLedger,
                        trace_records: Iterable["TraceRecord"] = ()) -> list[dict]:
    """The ``traceEvents`` list: ledger entries plus optional tracer records
    (tracer records land in a fourth ``trace`` process)."""
    events: list[dict] = []
    seen_threads: set[tuple[int, int]] = set()

    for entry in ledger.entries:
        pid = _LAYER_PID.get(entry.layer, 0)
        tid = entry.node
        seen_threads.add((pid, tid))
        args = {"uid": _uid_str(entry.uid)}
        if entry.reason is not None:
            args["reason"] = entry.reason.value
        if entry.detail:
            args.update(entry.detail)
        name = (f"drop:{entry.reason.value}"
                if entry.stage is PacketStage.DROP and entry.reason is not None
                else entry.stage.value)
        event = {
            "name": name,
            "cat": entry.layer,
            "pid": pid,
            "tid": tid,
            "ts": entry.time * _S_TO_US,
            "args": args,
        }
        duration = (entry.detail or {}).get("duration_s")
        if entry.stage is PacketStage.TX and duration is not None:
            event["ph"] = "X"
            event["dur"] = duration * _S_TO_US
        else:
            event["ph"] = "i"
            event["s"] = "t"  # instant scoped to its thread (node row)
        events.append(event)

    trace_pid = 4
    for record in trace_records:
        # Tracer sources look like "mac[7]" / "ssaf[3]" / "channel".
        source = record.source
        tid = 0
        if source.endswith("]") and "[" in source:
            name_part, _, node_part = source.rpartition("[")
            try:
                tid = int(node_part[:-1])
            except ValueError:  # pragma: no cover - defensive
                tid = 0
            source = name_part
        seen_threads.add((trace_pid, tid))
        events.append({
            "name": record.kind,
            "cat": source,
            "ph": "i",
            "s": "t",
            "pid": trace_pid,
            "tid": tid,
            "ts": record.time * _S_TO_US,
            "args": {str(k): str(v) for k, v in record.detail.items()},
        })

    # Metadata events name the process/thread rows in the viewer.
    names = {1: "phy", 2: "mac", 3: "net", 4: "trace", 0: "other"}
    for pid in sorted({p for p, _t in seen_threads}):
        events.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                       "args": {"name": names.get(pid, f"pid{pid}")}})
    for pid, tid in sorted(seen_threads):
        events.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                       "args": {"name": f"node {tid}"}})
    return events


def to_chrome_trace(ledger: PacketLedger,
                    trace_records: Iterable["TraceRecord"] = ()) -> dict:
    """The full JSON-object form Perfetto/chrome://tracing load."""
    return {
        "traceEvents": chrome_trace_events(ledger, trace_records),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_unit": "us"},
    }


def _prepare(path: str | os.PathLike) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    return target


def write_chrome_trace(ledger: PacketLedger, path: str | os.PathLike,
                       trace_records: Iterable["TraceRecord"] = ()) -> None:
    """Write a Perfetto-loadable Chrome trace-event JSON file."""
    with open(_prepare(path), "w") as handle:
        json.dump(to_chrome_trace(ledger, trace_records), handle)
        handle.write("\n")


def write_jsonl(ledger: PacketLedger, path: str | os.PathLike) -> None:
    """One JSON object per ledger entry, in record order."""
    with open(_prepare(path), "w") as handle:
        for entry in ledger.entries:
            handle.write(json.dumps(entry.to_dict()) + "\n")
