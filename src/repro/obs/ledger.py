"""The packet-lifecycle ledger: per-packet causal chains with typed drops.

The paper's claims are mechanistic — SSAF's elected forwarder *suppresses*
redundant rebroadcasts, Routeless Routing survives failures because a dead
next hop simply *loses an election* — so validating them needs per-packet
causality, not endpoint ratios.  The ledger records one
:class:`LedgerEntry` per lifecycle event:

    originate → enqueue → contend → tx → rx → suppress/forward → deliver/drop

keyed by the packet's network-wide uid, with every drop carrying a typed
:class:`DropReason`.  ``bare dropped += 1`` counters across the stack now
route through this taxonomy, so the MAC's queue-overflow drop and AODV's
no-route drop are distinguishable in the same report.

Entries also name the *layer* (``phy``/``mac``/``net``) that witnessed the
event: one packet's chain threads through every layer of every node it
touched, which is exactly the view the timeline export renders.
"""

from __future__ import annotations

import enum
from collections import Counter as TallyCounter
from typing import Any, Iterator, Optional

__all__ = ["DropReason", "PacketStage", "LedgerEntry", "PacketLedger"]


class DropReason(enum.Enum):
    """Why a packet (or one node's copy of it) died.  The single taxonomy
    shared by the MAC transmit queues, the net-layer pending buffers and
    every protocol's forwarding logic."""

    #: A drop-tail queue or pending buffer was full (MAC tx queue, net-layer
    #: pending-data buffer awaiting discovery).
    QUEUE_OVERFLOW = "queue_overflow"
    #: Two decodable frames overlapped at a receiver and corrupted each other.
    COLLISION = "collision"
    #: The hop budget (``max_hops``) was exhausted.
    TTL_EXPIRED = "ttl_expired"
    #: A copy of an already-seen packet arrived and was discarded.
    DUPLICATE = "duplicate"
    #: No forwarder emerged: an election chain gave up after retransmissions.
    NO_FORWARDER = "no_forwarder"
    #: No route existed (or discovery failed) for a routed protocol.
    NO_ROUTE = "no_route"
    #: A MAC unicast exhausted its retry budget without an acknowledgement.
    RETRY_EXHAUSTED = "retry_exhausted"
    #: The node's transceiver was off/asleep when the packet needed it.
    RADIO_OFF = "radio_off"
    #: An injected packet-corruption fault flipped bits in an otherwise
    #: intact reception (see :mod:`repro.faults`).
    FAULT_CORRUPTED = "fault_corrupted"
    #: The node's energy budget ran out and its transceiver shut down.
    ENERGY_DEPLETED = "energy_depleted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PacketStage(enum.Enum):
    """One step of the packet lifecycle."""

    ORIGINATE = "originate"   # net: application handed us a fresh packet
    ENQUEUE = "enqueue"       # mac: accepted into a transmit queue
    CONTEND = "contend"       # mac: CSMA backoff armed for the medium
    TX = "tx"                 # phy: frame put on the air
    RX = "rx"                 # phy: frame decoded intact at a receiver
    SUPPRESS = "suppress"     # net: pending rebroadcast cancelled (election lost)
    FORWARD = "forward"       # net: this node relays the packet onward
    DELIVER = "deliver"       # net: packet reached its destination
    DROP = "drop"             # any layer: a copy died (reason attached)
    FAULT = "fault"           # fault injector: a fault fired/cleared at a node

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LedgerEntry:
    """One lifecycle event.  ``uid`` is the packet's network-wide identity
    (``(kind, origin, seq)``), or ``None`` for control frames that carry no
    network packet (MAC ACK/RTS/CTS)."""

    __slots__ = ("time", "node", "layer", "stage", "uid", "reason", "detail")

    def __init__(self, time: float, node: int, layer: str, stage: PacketStage,
                 uid: Optional[tuple] = None,
                 reason: Optional[DropReason] = None,
                 detail: Optional[dict] = None):
        self.time = time
        self.node = node
        self.layer = layer
        self.stage = stage
        self.uid = uid
        self.reason = reason
        self.detail = detail

    def to_dict(self) -> dict:
        """JSON-safe form (the JSONL export row)."""
        row: dict[str, Any] = {
            "time": self.time,
            "node": self.node,
            "layer": self.layer,
            "stage": self.stage.value,
        }
        if self.uid is not None:
            kind, origin, seq = self.uid
            row["uid"] = [getattr(kind, "value", str(kind)), origin, seq]
        if self.reason is not None:
            row["reason"] = self.reason.value
        if self.detail:
            row["detail"] = self.detail
        return row

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        reason = f" reason={self.reason.value}" if self.reason else ""
        return (f"<LedgerEntry t={self.time:.6f} n{self.node} {self.layer}."
                f"{self.stage.value} uid={self.uid}{reason}>")


class PacketLedger:
    """Append-only store of lifecycle events for one simulation run."""

    def __init__(self) -> None:
        self.entries: list[LedgerEntry] = []
        self._by_uid: dict[tuple, list[LedgerEntry]] = {}
        self._drops: TallyCounter[DropReason] = TallyCounter()
        self._stages: TallyCounter[PacketStage] = TallyCounter()

    def record(self, time: float, node: int, layer: str, stage: PacketStage,
               uid: Optional[tuple] = None,
               reason: Optional[DropReason] = None,
               **detail: Any) -> LedgerEntry:
        entry = LedgerEntry(time, node, layer, stage, uid, reason,
                            detail or None)
        self.entries.append(entry)
        if uid is not None:
            self._by_uid.setdefault(uid, []).append(entry)
        if reason is not None:
            self._drops[reason] += 1
        self._stages[stage] += 1
        return entry

    # -------------------------------------------------------------- queries

    def chain(self, uid: tuple) -> list[LedgerEntry]:
        """Every event of one packet, in record (≈ causal) order."""
        return list(self._by_uid.get(uid, ()))

    def uids(self) -> Iterator[tuple]:
        return iter(self._by_uid)

    def of_stage(self, stage: PacketStage) -> Iterator[LedgerEntry]:
        return (e for e in self.entries if e.stage is stage)

    def drop_counts(self) -> dict[DropReason, int]:
        """Per-reason drop tallies; their sum is :meth:`total_drops`."""
        return dict(self._drops)

    def total_drops(self) -> int:
        return sum(self._drops.values())

    def stage_counts(self) -> dict[PacketStage, int]:
        return dict(self._stages)

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self._by_uid.clear()
        self._drops.clear()
        self._stages.clear()
