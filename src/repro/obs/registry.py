"""Labeled metrics primitives and the process-wide registry.

Prometheus-shaped, simulation-sized: :class:`Counter`, :class:`Gauge` and
:class:`Histogram` families carry a fixed tuple of label names; calling
``labels(...)`` resolves (and memoizes) one child per label-value
combination, so hot paths can hold a child and pay a single attribute
update per event.

Collection follows the same zero-cost discipline as tracing
(:mod:`repro.sim.trace`): instrumented code never talks to the registry
directly — it checks the cheap :attr:`repro.sim.components.SimContext.observing`
flag first, so with observability disabled no labels are built and no call
is made.

Two APIs exist because campaign workers run in separate processes:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-safe dict of every
  family and child value, cheap to pickle across a process boundary;
* :meth:`MetricsRegistry.merge_snapshot` / :func:`merge_snapshots` — fold
  snapshots together (counters and histogram buckets add, gauges keep the
  extremum) so N workers' registries collapse into one campaign-level view.
"""

from __future__ import annotations

import bisect
import json
from typing import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "merge_snapshots",
    "quantiles_from_sample",
]

#: Default histogram buckets (seconds): µs-scale MAC access through
#: multi-second end-to-end delays.
DEFAULT_BUCKETS = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(values: Sequence) -> str:
    """Stable, JSON-safe key for one label-value combination."""
    return json.dumps([str(v) for v in values])


class _Family:
    """Shared machinery: a named metric with labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple, "_Family"] = {}

    def labels(self, *values, **kv):
        """The child for one label-value combination (created on first use)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kv[name] for name in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}")
        values = tuple(str(v) for v in values)
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def _sample_items(self) -> Iterable[tuple[str, object]]:
        if self.labelnames:
            for values, child in self._children.items():
                yield _label_key(values), child._own_sample()
        else:
            yield _label_key(()), self._own_sample()

    def _own_sample(self):
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": dict(self._sample_items()),
        }


class Counter(_Family):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def _own_sample(self) -> float:
        return self.value


class Gauge(_Family):
    """A value that can move both ways; merging keeps the maximum."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self.value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name)

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """High-watermark update (queue depths, backlog peaks)."""
        if value > self.value:
            self.value = float(value)

    def _own_sample(self) -> float:
        return self.value


class Histogram(_Family):
    """Fixed-bucket histogram (cumulative counts, like Prometheus)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # counts[i] = observations <= buckets[i]; counts[-1] = overflow
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, buckets=self.buckets)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantiles(self, qs: Sequence[float] = (0.5, 0.9, 0.99)
                  ) -> dict[float, float | None]:
        """Bucket-interpolated quantile estimates (see
        :func:`quantiles_from_sample`)."""
        return quantiles_from_sample(self._own_sample(), qs)

    def _own_sample(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def quantiles_from_sample(sample: dict, qs: Sequence[float] = (0.5, 0.9, 0.99)
                          ) -> dict[float, float | None]:
    """Quantile estimates from a histogram sample dict (the snapshot form:
    ``{"buckets", "counts", "sum", "count"}``).

    Linear interpolation within the containing bucket — the same estimator
    Prometheus's ``histogram_quantile`` uses: a quantile landing in the
    overflow (``+Inf``) bucket reports the highest finite bound, and the
    lower edge of the first bucket is taken as 0 (observations are
    non-negative durations/counts throughout this codebase).  An empty
    histogram maps every quantile to ``None``.
    """
    buckets = list(sample["buckets"])
    counts = list(sample["counts"])
    total = sample["count"]
    if total <= 0:
        return {q: None for q in qs}
    cumulative: list[int] = []
    running = 0
    for c in counts[: len(buckets)]:
        running += c
        cumulative.append(running)
    out: dict[float, float | None] = {}
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        rank = q * total
        idx = bisect.bisect_left(cumulative, rank)
        while idx < len(buckets) and cumulative[idx] < rank:
            idx += 1  # float bisect edge: ensure cumulative[idx] >= rank
        if idx >= len(buckets):
            out[q] = float(buckets[-1])
            continue
        upper = float(buckets[idx])
        lower = float(buckets[idx - 1]) if idx > 0 else 0.0
        prev_cum = cumulative[idx - 1] if idx > 0 else 0
        in_bucket = cumulative[idx] - prev_cum
        if in_bucket <= 0:
            out[q] = upper
        else:
            out[q] = lower + (upper - lower) * (rank - prev_cum) / in_bucket
    return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Every metric family of one process (or one simulation run).

    ``enabled`` exists for symmetry with :class:`~repro.sim.trace.Tracer`;
    instrumented code reads it through ``SimContext.observing`` and skips
    the registry entirely when collection is off.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self.enabled = True

    # ------------------------------------------------------------- creation

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str],
                  **kwargs) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if type(family) is not cls or family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}")
            return family
        family = cls(name, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    # -------------------------------------------------------------- queries

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def clear(self) -> None:
        self._families.clear()

    # ---------------------------------------------------- snapshot & merge

    def snapshot(self) -> dict:
        """JSON-safe dump of every family: ``{name: describe()}``."""
        return {name: family.describe()
                for name, family in sorted(self._families.items())}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges keep the maximum (the
        only merge with a meaning across runs — high watermarks survive).
        """
        for name, desc in snap.items():
            cls = _KINDS.get(desc.get("kind"))
            if cls is None:
                raise ValueError(f"snapshot entry {name!r} has unknown kind "
                                 f"{desc.get('kind')!r}")
            labelnames = tuple(desc.get("labelnames", ()))
            if cls is Histogram:
                buckets = None
                for sample in desc["samples"].values():
                    buckets = sample["buckets"]
                    break
                family = self._register(
                    cls, name, desc.get("help", ""), labelnames,
                    buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS)
            else:
                family = self._register(cls, name, desc.get("help", ""), labelnames)
            for key, sample in desc["samples"].items():
                values = tuple(json.loads(key))
                child = family.labels(*values) if labelnames else family
                if cls is Counter:
                    child.value += float(sample)
                elif cls is Gauge:
                    child.set_max(float(sample))
                else:
                    if tuple(sample["buckets"]) != child.buckets:
                        raise ValueError(
                            f"histogram {name!r} bucket mismatch in merge")
                    for i, c in enumerate(sample["counts"]):
                        child.counts[i] += c
                    child.sum += sample["sum"]
                    child.count += sample["count"]


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold worker snapshots into one combined snapshot (order-insensitive
    for counters and histograms; gauges keep the maximum)."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (one per campaign worker)."""
    return _GLOBAL
