"""The discrete-event simulation kernel.

A :class:`Simulator` owns a binary heap of :class:`~repro.sim.events.Event`
objects and a simulated clock.  Components schedule callbacks at relative
delays and may cancel them through the returned
:class:`~repro.sim.events.EventHandle`.

The kernel is deliberately minimal — no processes, no coroutines — because
every protocol in this reproduction is naturally written as a callback state
machine (timers armed and cancelled in response to radio events).  A heap
scheduler with lazy cancellation handles the workload's dominant pattern
(millions of armed-then-cancelled backoff timers) in O(log n) per operation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

from repro.sim.events import EVENT_PRIORITY_DEFAULT, Event, EventHandle

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EVENT_PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event fires this instant, after currently
        queued same-time events) but never negative — simulated time only
        moves forward.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EVENT_PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        event = Event(float(time), priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ---------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.fire()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the heap drains, the clock passes ``until``, or
        ``max_events`` events have fired (whichever comes first).

        When stopping on ``until``, the clock is advanced to exactly
        ``until`` so repeated ``run(until=...)`` calls tile cleanly.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._processed += 1
                fired += 1
                event.fire()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard every pending event without firing it."""
        self._heap.clear()


def run_all(simulators: Iterable[Simulator]) -> None:
    """Convenience: run several independent simulators to completion."""
    for sim in simulators:
        sim.run()
