"""The discrete-event simulation kernel.

A :class:`Simulator` owns a binary heap of scheduled events and a simulated
clock.  Components schedule callbacks at relative delays and may cancel them
through the returned :class:`~repro.sim.events.EventHandle`.

The kernel is deliberately minimal — no processes, no coroutines — because
every protocol in this reproduction is naturally written as a callback state
machine (timers armed and cancelled in response to radio events).  A heap
scheduler with lazy cancellation handles the workload's dominant pattern
(millions of armed-then-cancelled backoff timers) in O(log n) per operation.

Hot-path notes
--------------
The heap stores ``(time, priority, seq, callback, args, event)`` tuples
rather than bare :class:`~repro.sim.events.Event` objects: heap sift
comparisons then run as C tuple comparisons, never entering Python (the
unique ``seq`` breaks every tie first), and the run loop dispatches straight
off the tuple without touching the event's attributes.  :meth:`Simulator.schedule`
builds the event with ``object.__new__`` plus direct slot stores — skipping
the ``__init__`` call frame is worth ~15% of total kernel time at this call
volume — and :meth:`Simulator.run` is one inlined loop with hoisted lookups
because it is *the* inner loop of every experiment.

Lazy cancellation has a pathological mode: a cancellation storm (elections
cancel ~90% of armed timers) leaves the heap dominated by dead entries,
inflating the depth of every subsequent sift.  Cancellation therefore
notifies the scheduler (:meth:`Simulator._note_cancelled`), which
opportunistically compacts the heap — filter out cancelled entries and
re-heapify, O(n) — once they outnumber live events.  Compaction removes only
already-dead entries and re-heapifies on the same total order, so observable
event ordering is bit-identical with or without it.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable

from repro.sim.events import EVENT_PRIORITY_DEFAULT, Event, EventHandle

__all__ = ["Simulator", "SimulationError"]

#: Compaction triggers once at least this many cancelled entries are heaped
#: *and* cancelled entries outnumber live ones.  The floor keeps small heaps
#: (where a full O(n) rebuild buys nothing) untouched.
_COMPACT_MIN_CANCELLED = 512

_new_event = object.__new__

#: Shared sixth-tuple-element for bulk-scheduled events, which are never
#: cancellable: lets :meth:`Simulator.schedule_many` heap entries skip event
#: allocation entirely.  Its ``cancelled`` flag is False forever.
_UNCANCELLABLE = Event(0.0, 0, -1, lambda: None)


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a finished sim)."""


class Simulator:
    """A single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Callable[..., None], tuple, Event]] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._cancelled = 0  # cancelled entries believed to still be heaped

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EVENT_PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` may be zero (the event fires this instant, after currently
        queued same-time events) but never negative — simulated time only
        moves forward.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        if time.__class__ is not float:  # e.g. a numpy scalar delay
            time = float(time)
        seq = self._seq
        self._seq = seq + 1
        event = _new_event(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.sim = self
        heappush(self._heap, (time, priority, seq, callback, args, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = EVENT_PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self._now!r}"
            )
        time = float(time)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, False, self)
        heappush(self._heap, (time, priority, seq, callback, args, event))
        return event

    def schedule_many(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Bulk-schedule ``(delay, callback, args)`` triples at default
        priority, in order, without returning handles.

        This is the channel fan-out fast path: one broadcast schedules two
        events per reachable receiver, none of which is ever cancelled, so
        handle construction and delay validation are pure overhead — the
        heap entries share one immortal uncancellable sentinel and allocate
        nothing per event.  Delays must be non-negative (callers pass
        precomputed propagation delays).  Sequence numbers are assigned in
        iteration order, so firing order is identical to an equivalent
        series of :meth:`schedule` calls.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        live = _UNCANCELLABLE
        for delay, callback, args in items:
            heappush(heap, (now + delay, 0, seq, callback, args, live))
            seq += 1
        self._seq = seq

    # ------------------------------------------------------------ cancellation

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` on an event this scheduler owns.

        Keeps an (approximate — a handle cancelled after its event fired
        still counts) tally of dead heap entries and compacts the heap when
        they dominate, so cancellation storms stop inflating sift depth for
        every later operation.
        """
        self._cancelled = cancelled = self._cancelled + 1
        heap = self._heap
        if cancelled >= _COMPACT_MIN_CANCELLED and 2 * cancelled > len(heap):
            # In-place so a run() loop holding a reference keeps seeing it.
            heap[:] = [entry for entry in heap if not entry[5].cancelled]
            heapify(heap)
            self._cancelled = 0

    # ---------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when drained."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[5].cancelled:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            self._now = entry[0]
            self._processed += 1
            entry[3](*entry[4])
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the heap drains, the clock passes ``until``, or
        ``max_events`` events have fired (whichever comes first).

        When stopping on ``until``, the clock is advanced to exactly
        ``until`` so repeated ``run(until=...)`` calls tile cleanly.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        pop = heappop
        try:
            if until is None and max_events is None:
                # Unbounded drain: the tightest loop the kernel has.
                while heap:
                    entry = pop(heap)
                    if entry[5].cancelled:
                        if self._cancelled:
                            self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    self._processed += 1
                    entry[3](*entry[4])
                return
            fired = 0
            while heap:
                if max_events is not None and fired >= max_events:
                    return
                entry = heap[0]
                if entry[5].cancelled:
                    pop(heap)
                    if self._cancelled:
                        self._cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                pop(heap)
                self._now = time
                self._processed += 1
                fired += 1
                entry[3](*entry[4])
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def drain(self) -> None:
        """Discard every pending event without firing it."""
        self._heap.clear()
        self._cancelled = 0


def run_all(simulators: Iterable[Simulator]) -> None:
    """Convenience: run several independent simulators to completion."""
    for sim in simulators:
        sim.run()
