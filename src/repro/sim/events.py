"""Event primitives for the discrete-event kernel.

The kernel orders events by ``(time, priority, sequence)``.  The *sequence*
component is a monotonically increasing integer assigned by the scheduler,
which makes event ordering fully deterministic: two events scheduled for the
same simulated time always fire in the order in which they were scheduled
(unless an explicit ``priority`` says otherwise).  Determinism matters here
because the protocols under study are timing races by construction — a
nondeterministic kernel would make the test suite flaky and the experiments
irreproducible.

:class:`Event` is a ``__slots__`` class compared by its ``(time, priority,
seq)`` key rather than a dataclass: the simulator heap holds millions of
short-lived events per sweep, and both the per-instance ``__dict__`` and the
attribute-by-attribute dataclass comparison showed up at the top of every
profile.  The scheduler stores the key *precomputed* inside its heap entries
— ``(time, priority, seq, callback, args, event)`` tuples — so heap sift
comparisons run as C tuple comparisons without ever entering Python (the
unique ``seq`` breaks every tie before later elements would be compared).

An event is also its own cancellation handle: :data:`EventHandle` is an
alias of :class:`Event`, kept for readability at API boundaries that only
care about the handle protocol (``time``, ``cancelled``, :meth:`Event.cancel`).
Merging the two halves the per-schedule allocations on the hottest path in
the codebase.

Cancellation is *lazy*: cancelling an event merely flips a flag, and the
scheduler discards flagged events when they surface at the top of the heap.
This is the standard approach for simulations with many short-lived timers
(every backoff timer in this codebase is cancelled far more often than it
fires) because it keeps both :meth:`~repro.sim.engine.Simulator.schedule` and
cancellation O(log n) / O(1) instead of O(n).  Cancelling also notifies the
owning scheduler so it can compact the heap when cancelled entries dominate
(see :meth:`~repro.sim.engine.Simulator._note_cancelled`).
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event", "EventHandle", "EVENT_PRIORITY_DEFAULT"]

#: Default scheduling priority.  Lower values fire first at equal timestamps.
EVENT_PRIORITY_DEFAULT = 0


class Event:
    """A scheduled callback, ordered by its ``(time, priority, seq)`` key.

    Also serves as the opaque, cancellable handle returned by the scheduler:
    handles stay valid after the event fires, and cancelling a fired (or
    already cancelled) event is a harmless no-op, which lets protocol state
    machines unconditionally cancel timers without bookkeeping.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
        sim: Any = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: The owning scheduler, notified on cancellation so it can compact
        #: its heap.  ``None`` for bare events constructed in tests.
        self.sim = sim

    @property
    def key(self) -> tuple[float, int, int]:
        """The ``(time, priority, seq)`` ordering key."""
        return (self.time, self.priority, self.seq)

    def fire(self) -> None:
        self.callback(*self.args)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if this call did the cancelling."""
        if self.cancelled:
            return False
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancelled()
        return True

    # Rich comparisons mirror the former dataclass(order=True) semantics:
    # same-class operands compare by key, anything else is NotImplemented.

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is Event:
            return self.key == other.key
        return NotImplemented

    def __lt__(self, other: Any) -> bool:
        if other.__class__ is Event:
            return self.key < other.key
        return NotImplemented

    def __le__(self, other: Any) -> bool:
        if other.__class__ is Event:
            return self.key <= other.key
        return NotImplemented

    def __gt__(self, other: Any) -> bool:
        if other.__class__ is Event:
            return self.key > other.key
        return NotImplemented

    def __ge__(self, other: Any) -> bool:
        if other.__class__ is Event:
            return self.key >= other.key
        return NotImplemented

    __hash__ = None  # unhashable, like the dataclass(eq=True) it replaces

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}{state})")


#: The scheduler returns the event itself as its cancellation handle; this
#: alias names the narrow protocol (``time``, ``cancelled``, ``cancel()``)
#: that handle-holding code should rely on.
EventHandle = Event
