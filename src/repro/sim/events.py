"""Event primitives for the discrete-event kernel.

The kernel stores :class:`Event` objects in a binary heap keyed by
``(time, priority, sequence)``.  The *sequence* component is a monotonically
increasing integer assigned by the scheduler, which makes event ordering fully
deterministic: two events scheduled for the same simulated time always fire in
the order in which they were scheduled (unless an explicit ``priority`` says
otherwise).  Determinism matters here because the protocols under study are
timing races by construction — a nondeterministic kernel would make the test
suite flaky and the experiments irreproducible.

Cancellation is *lazy*: cancelling an event merely flips a flag, and the
scheduler discards flagged events when they surface at the top of the heap.
This is the standard approach for simulations with many short-lived timers
(every backoff timer in this codebase is cancelled far more often than it
fires) because it keeps both :meth:`~repro.sim.engine.Simulator.schedule` and
cancellation O(log n) / O(1) instead of O(n).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventHandle", "EVENT_PRIORITY_DEFAULT"]

#: Default scheduling priority.  Lower values fire first at equal timestamps.
EVENT_PRIORITY_DEFAULT = 0


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        self.callback(*self.args)


class EventHandle:
    """Opaque, cancellable reference to a scheduled :class:`Event`.

    Handles stay valid after the event fires; cancelling a fired (or already
    cancelled) event is a harmless no-op, which lets protocol state machines
    unconditionally cancel timers without bookkeeping.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if this call did the cancelling."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True


# A single shared counter would be a hidden global coupling between
# simulators; instead each Simulator owns an itertools.count.  This alias is
# exported only so tests can construct bare Events conveniently.
fresh_sequence = itertools.count
