"""Seeded random-number streams.

Every stochastic component (MAC backoff, traffic jitter, topology placement,
failure processes, fading) draws from its *own* named stream derived from a
single experiment seed.  This gives two properties the experiments rely on:

* **Reproducibility** — the same seed produces bit-identical runs.
* **Variance isolation** — changing, say, the routing protocol does not
  perturb the placement or traffic streams, so paired comparisons between
  protocols see identical topologies and workloads (common random numbers,
  the standard variance-reduction technique for simulation studies).

Streams are spawned with :func:`numpy.random.SeedSequence`, which guarantees
independence between children regardless of the names chosen.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The mapping from name to stream depends only on ``(seed, name)``,
        never on the order in which streams are requested.
        """
        gen = self._cache.get(name)
        if gen is None:
            # Hash the name into spawn keys so that the derived stream is a
            # pure function of (seed, name).
            key = [ord(c) for c in name]
            child = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(key))
            gen = np.random.Generator(np.random.PCG64(child))
            self._cache[name] = gen
        return gen

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform sample from the named stream."""
        return float(self.stream(name).uniform(low, high))
