"""SENSE-style component and port model.

The paper's simulator, SENSE, composes a node from components (application,
network protocol, MAC, radio) connected through typed ports.  We mirror that
structure: a :class:`Component` owns named :class:`Outport` objects that are
wired to bound methods of peer components.  The indirection keeps protocol
code ignorant of what sits above or below it — the same CSMA MAC serves
flooding, SSAF, Routeless Routing, AODV and Gradient Routing — and lets tests
wire a component to probes instead of real peers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observe import Observability

__all__ = ["SimContext", "Component", "Outport", "PortNotConnected"]


class PortNotConnected(RuntimeError):
    """Raised when a component sends through an unwired outport."""


class Outport:
    """A one-to-many output connector.

    Calling the port invokes every connected handler, in connection order.
    """

    __slots__ = ("name", "_handlers")

    def __init__(self, name: str):
        self.name = name
        self._handlers: list[Callable[..., None]] = []

    def connect(self, handler: Callable[..., None]) -> None:
        self._handlers.append(handler)

    @property
    def connected(self) -> bool:
        return bool(self._handlers)

    def __call__(self, *args: Any, **kwargs: Any) -> None:
        if not self._handlers:
            raise PortNotConnected(f"outport {self.name!r} is not connected")
        for handler in self._handlers:
            handler(*args, **kwargs)


class SimContext:
    """Everything a component needs from its environment.

    Bundles the simulator clock/scheduler, the named RNG streams and the
    tracer, so component constructors take a single ``ctx`` argument.
    """

    def __init__(
        self,
        simulator: Simulator | None = None,
        streams: RandomStreams | None = None,
        tracer: Tracer | None = None,
        obs: "Observability | None" = None,
    ):
        self.simulator = simulator if simulator is not None else Simulator()
        self.streams = streams if streams is not None else RandomStreams(0)
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Observability bundle (metrics registry + packet ledger); ``None``
        #: means no collection — see :attr:`observing`.
        self.obs = obs

    @property
    def now(self) -> float:
        return self.simulator.now

    @property
    def tracing(self) -> bool:
        """True when trace records are being collected.

        Hot-path code checks this *before* building trace arguments
        (``str(frame)``, kwargs dicts), making disabled tracing free.
        Reads through to :attr:`Tracer.enabled` so runtime toggles are
        honoured.
        """
        return self.tracer.enabled

    @property
    def observing(self) -> bool:
        """True when the observability subsystem is collecting.

        The same zero-cost discipline as :attr:`tracing`: hot-path code
        checks this before building ledger/metric arguments, so a run
        without an :class:`~repro.obs.observe.Observability` attached pays
        one attribute read per instrumented site.
        """
        obs = self.obs
        return obs is not None and obs.enabled


class Component:
    """Base class for simulation components.

    Subclasses declare outports in ``__init__`` via :meth:`outport` and
    expose inports as plain bound methods.
    """

    def __init__(self, ctx: SimContext, name: str):
        self.ctx = ctx
        self.name = name

    # ------------------------------------------------------------- utilities

    def outport(self, port_name: str) -> Outport:
        return Outport(f"{self.name}.{port_name}")

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any,
                 priority: int = 0) -> EventHandle:
        return self.ctx.simulator.schedule(delay, callback, *args, priority=priority)

    def trace(self, kind: str, **detail: Any) -> None:
        self.ctx.tracer.emit(self.ctx.now, self.name, kind, **detail)

    def rng(self, stream_suffix: str = "") -> Any:
        """The component's own RNG stream (optionally sub-named)."""
        name = self.name if not stream_suffix else f"{self.name}.{stream_suffix}"
        return self.ctx.streams.stream(name)

    @property
    def now(self) -> float:
        return self.ctx.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
