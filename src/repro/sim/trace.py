"""Structured tracing for simulations.

Components emit ``(time, source, kind, detail)`` records through a
:class:`Tracer`.  Tracing is off by default and costs one predicate call per
emission when disabled, so protocol code can trace unconditionally.

Hot-path call sites (channel transmit, radio RX/TX, MAC access) should not
even pay for *building* the trace arguments — ``str(frame)`` and the kwargs
dict dominate the cost when tracing is off.  Those sites gate emission
behind the cheap :attr:`repro.sim.components.SimContext.tracing` flag::

    if self.ctx.tracing:
        self.trace("radio.tx", frame=str(frame), duration=duration)

so a disabled tracer is truly zero-cost: one attribute read, no argument
construction, no call.

Traces back two things in this reproduction:

* debugging protocol state machines (the integration tests assert on traces
  where externally visible metrics would under-constrain the behaviour);
* the Figure 2 visualization, which needs the actual per-packet relay path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    time: float
    source: str
    kind: str
    detail: dict[str, Any]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fields = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.source:<16} {self.kind:<20} {fields}"


class Tracer:
    """Collects trace records, optionally filtered by kind."""

    def __init__(self, kinds: set[str] | None = None, sink: Callable[[TraceRecord], None] | None = None):
        self.records: list[TraceRecord] = []
        self._kinds = kinds
        self._sink = sink
        self.enabled = True

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        record = TraceRecord(time, source, kind, detail)
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.kind == kind)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default for production runs."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        return
