"""Discrete-event simulation kernel (the SENSE substitute's foundation)."""

from repro.sim.components import Component, Outport, PortNotConnected, SimContext
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer, TraceRecord

__all__ = [
    "Component",
    "Event",
    "EventHandle",
    "NullTracer",
    "Outport",
    "PortNotConnected",
    "RandomStreams",
    "SimContext",
    "SimulationError",
    "Simulator",
    "Tracer",
    "TraceRecord",
]
