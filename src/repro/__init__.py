"""repro — a reproduction of Chen, Branch & Szymanski (WMAN'05):
"Local Leader Election, Signal Strength Aware Flooding, and Routeless Routing".

The package provides, from the ground up:

* a deterministic discrete-event wireless network simulator
  (:mod:`repro.sim`, :mod:`repro.phy`, :mod:`repro.mac`) standing in for the
  authors' SENSE simulator;
* the paper's contribution — the local leader election primitive with
  metric-derived backoff policies (:mod:`repro.core`);
* the protocols built on it — SSAF and Routeless Routing — plus the
  baselines they are evaluated against: counter-1 flooding, blind flooding,
  AODV and Gradient Routing (:mod:`repro.net`);
* workload, topology, failure and metrics infrastructure
  (:mod:`repro.app`, :mod:`repro.topology`, :mod:`repro.stats`);
* the paper's four evaluation figures as runnable experiments
  (:mod:`repro.experiments`) and terminal visualization (:mod:`repro.viz`).

Quickstart::

    from repro import (ScenarioConfig, build_network, attach_cbr, SSAF)
    net = build_network(
        lambda ctx, nid, mac, m: SSAF(ctx, nid, mac, metrics=m),
        ScenarioConfig(n_nodes=50, seed=7),
    )
    attach_cbr(net, [(0, 42)], interval_s=2.0)
    net.run(until=60.0)
    print(net.summary())
"""

from repro.campaign import (
    CampaignOutcome,
    CampaignSpec,
    ResultCache,
    run_campaign,
    run_spec,
)
from repro.core import (
    BackoffInput,
    BackoffPolicy,
    ElectionConfig,
    ElectionNode,
    FunctionBackoff,
    HopCountBackoff,
    MutexConfig,
    RandomBackoff,
    SignalStrengthBackoff,
    TokenMutex,
)
from repro.experiments.common import (
    Network,
    ScenarioConfig,
    attach_cbr,
    build_network,
    pick_flows,
)
from repro.mac import CsmaMac, MacConfig
from repro.net import (
    SSAF,
    ActiveNodeTable,
    Aodv,
    AodvConfig,
    BlindFlooding,
    Counter1Flooding,
    Dsdv,
    Dsr,
    FloodingConfig,
    GradientRouting,
    Packet,
    PacketKind,
    RoutelessConfig,
    RoutelessRouting,
)
from repro.phy import (
    Channel,
    FreeSpace,
    LogDistance,
    RadioConfig,
    RayleighFading,
    Transceiver,
    TwoRayGround,
)
from repro.sim import RandomStreams, SimContext, Simulator, Tracer
from repro.stats import MetricsCollector, MetricsSummary, SweepSeries, format_table
from repro.topology import (
    Arena,
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    RandomWalk,
    RandomWaypoint,
    VirtualForceConfig,
    VirtualForceControl,
    apply_failures,
    connected_uniform,
    grid,
    mobility_model,
    mobility_model_names,
    register_mobility_model,
    uniform_random,
)

__version__ = "1.0.0"

__all__ = [
    "ActiveNodeTable",
    "Aodv",
    "Arena",
    "AodvConfig",
    "BackoffInput",
    "BackoffPolicy",
    "BlindFlooding",
    "CampaignOutcome",
    "CampaignSpec",
    "Channel",
    "Counter1Flooding",
    "Dsdv",
    "Dsr",
    "CsmaMac",
    "ElectionConfig",
    "ElectionNode",
    "FloodingConfig",
    "FreeSpace",
    "FunctionBackoff",
    "GaussMarkov3D",
    "GaussMarkovConfig",
    "GradientRouting",
    "HopCountBackoff",
    "LogDistance",
    "MacConfig",
    "MetricsCollector",
    "MobilityConfig",
    "MutexConfig",
    "MetricsSummary",
    "Network",
    "Packet",
    "PacketKind",
    "RadioConfig",
    "RandomBackoff",
    "RandomWalk",
    "RandomWaypoint",
    "RandomStreams",
    "RayleighFading",
    "ResultCache",
    "RoutelessConfig",
    "RoutelessRouting",
    "SSAF",
    "ScenarioConfig",
    "SignalStrengthBackoff",
    "SimContext",
    "Simulator",
    "SweepSeries",
    "TokenMutex",
    "Tracer",
    "Transceiver",
    "TwoRayGround",
    "VirtualForceConfig",
    "VirtualForceControl",
    "apply_failures",
    "attach_cbr",
    "build_network",
    "connected_uniform",
    "format_table",
    "grid",
    "mobility_model",
    "mobility_model_names",
    "pick_flows",
    "register_mobility_model",
    "run_campaign",
    "run_spec",
    "uniform_random",
]
