"""End-of-run invariant checks over the observability ledger.

Chaos runs are only useful if something *checks* them: metrics moving under
faults is expected, but certain properties must hold under **any** fault
plan — they are what "correctness under failures" means for this stack (the
paper: unreliability "may negatively affect the efficiency, but not the
correctness").  The checker inspects one run's
:class:`~repro.obs.ledger.PacketLedger` after the fact:

* **no-dead-radio-traffic** — no packet event (RX, DELIVER, TX) is
  witnessed by a node strictly inside one of its radio-OFF windows.  The
  windows are reconstructed from the fault entries the injector and
  :class:`~repro.topology.failures.DutyCycleFailure` emit, so this check
  cross-validates the PHY power gating against the fault schedule.
* **ledger-conservation** — every originated packet is accounted for:
  originated = delivered + dropped + in-flight, as a *partition* of uids,
  plus nothing was delivered that was never originated (packets cannot
  materialize from nowhere).
* **unique-origination** — each uid is originated exactly once (uid
  collisions would silently merge two packets' chains).
* **single-forwarder** — election-based flooding elects at most one relay
  per (packet, node): a node never FORWARDs the same uid twice, and never
  forwards a uid it already suppressed.  Protocols with legitimate
  re-forwarding (Routeless Routing retransmits an election when no
  successor answers) run with this check off — pass
  ``single_forwarder=False``.

``check_invariants`` returns the violations (empty list = clean run);
``raise_on_violation=True`` turns any violation into an
:class:`InvariantViolation` for CI gates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.ledger import PacketLedger, PacketStage

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observe import Observability

__all__ = [
    "Violation",
    "InvariantViolation",
    "off_windows",
    "ledger_accounting",
    "check_invariants",
]

#: Fault kinds whose off/on transitions gate radio power (mirror of
#: :data:`repro.faults.injector.RADIO_POWER_KINDS`, kept here so the checker
#: has no dependency on the injector).
_RADIO_POWER_KINDS = ("duty_cycle", "node_crash", "energy_depletion")

#: Packet stages that require a live radio at the witnessing node.
_RADIO_STAGES = (PacketStage.TX, PacketStage.RX, PacketStage.DELIVER)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to debug the run."""

    invariant: str
    message: str
    detail: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


class InvariantViolation(AssertionError):
    """Raised by ``check_invariants(..., raise_on_violation=True)``."""

    def __init__(self, violations: list[Violation]):
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(
            f"{len(violations)} invariant violation(s):\n{lines}")


def off_windows(ledger: PacketLedger) -> dict[int, list[tuple[float, float]]]:
    """Per-node radio-OFF windows reconstructed from fault ledger entries.

    A window opens at a radio-power fault with ``action="off"`` and closes
    at the node's next ``action="on"`` (or the end of the run — represented
    as ``float("inf")``).  Overlapping fault processes (a crash during a
    duty-cycle outage) conservatively merge: the radio counts as off while
    *any* process holds it off... which matches :meth:`Transceiver.set_power`
    semantics only approximately — a recovery from one fault re-enables a
    radio another fault turned off.  The injector emits transitions in the
    order it applies them, so the last transition wins, exactly like the
    radio itself.
    """
    windows: dict[int, list[tuple[float, float]]] = {}
    open_since: dict[int, float] = {}
    for entry in ledger.entries:
        if entry.stage is not PacketStage.FAULT:
            continue
        detail = entry.detail or {}
        if detail.get("kind") not in _RADIO_POWER_KINDS:
            continue
        action = detail.get("action")
        node = entry.node
        if action == "off":
            open_since.setdefault(node, entry.time)
        elif action == "on":
            start = open_since.pop(node, None)
            if start is not None:
                windows.setdefault(node, []).append((start, entry.time))
    for node, start in open_since.items():
        windows.setdefault(node, []).append((start, float("inf")))
    return windows


def ledger_accounting(ledger: PacketLedger) -> dict:
    """Partition every originated uid into delivered / dropped / in-flight.

    "Dropped" means every copy died (at least one DROP entry, no DELIVER);
    "in-flight" means neither happened before the run ended (the packet was
    still queued, backing off, or waiting on a pending-election timer).
    """
    originated: set[tuple] = set()
    delivered: set[tuple] = set()
    dropped: set[tuple] = set()
    ghost_deliveries: set[tuple] = set()
    for entry in ledger.entries:
        if entry.uid is None:
            continue
        if entry.stage is PacketStage.ORIGINATE:
            originated.add(entry.uid)
        elif entry.stage is PacketStage.DELIVER:
            delivered.add(entry.uid)
        elif entry.stage is PacketStage.DROP:
            dropped.add(entry.uid)
    ghost_deliveries = delivered - originated
    dropped_only = (dropped - delivered) & originated
    in_flight = originated - delivered - dropped
    return {
        "originated": originated,
        "delivered": delivered & originated,
        "dropped": dropped_only,
        "in_flight": in_flight,
        "ghost_deliveries": ghost_deliveries,
    }


def _check_dead_radio(ledger: PacketLedger,
                      violations: list[Violation]) -> None:
    windows = off_windows(ledger)
    if not windows:
        return
    for entry in ledger.entries:
        if entry.stage not in _RADIO_STAGES:
            continue
        for start, stop in windows.get(entry.node, ()):
            # Strict bounds: transitions at the exact instant of an event
            # are ordered by the scheduler, not by this checker.
            if start < entry.time < stop:
                violations.append(Violation(
                    "no-dead-radio-traffic",
                    f"node {entry.node} witnessed {entry.stage.value} at "
                    f"t={entry.time:.6f} inside its radio-OFF window "
                    f"[{start:.6f}, {stop if stop != float('inf') else 'end'})",
                    detail={"node": entry.node, "time": entry.time,
                            "stage": entry.stage.value, "uid": entry.uid},
                ))
                break


def _check_conservation(ledger: PacketLedger,
                        violations: list[Violation]) -> None:
    acct = ledger_accounting(ledger)
    for uid in sorted(acct["ghost_deliveries"], key=repr):
        violations.append(Violation(
            "ledger-conservation",
            f"uid {uid} was delivered but never originated",
            detail={"uid": uid},
        ))
    n_orig = len(acct["originated"])
    n_sum = (len(acct["delivered"]) + len(acct["dropped"])
             + len(acct["in_flight"]))
    if n_orig != n_sum:  # pragma: no cover - the partition is set algebra;
        # a mismatch means the ledger itself is corrupt.
        violations.append(Violation(
            "ledger-conservation",
            f"originated={n_orig} != delivered+dropped+in_flight={n_sum}",
            detail={k: len(v) for k, v in acct.items()},
        ))


def _check_unique_origination(ledger: PacketLedger,
                              violations: list[Violation]) -> None:
    counts: Counter[tuple] = Counter()
    for entry in ledger.of_stage(PacketStage.ORIGINATE):
        if entry.uid is not None:
            counts[entry.uid] += 1
    for uid, n in counts.items():
        if n > 1:
            violations.append(Violation(
                "unique-origination",
                f"uid {uid} originated {n} times",
                detail={"uid": uid, "count": n},
            ))


def _check_single_forwarder(ledger: PacketLedger,
                            violations: list[Violation]) -> None:
    forwards: Counter[tuple] = Counter()
    suppressed: set[tuple] = set()
    late_forwards: set[tuple] = set()
    for entry in ledger.entries:
        if entry.uid is None:
            continue
        key = (entry.uid, entry.node)
        if entry.stage is PacketStage.FORWARD:
            forwards[key] += 1
            if key in suppressed:
                late_forwards.add(key)
        elif entry.stage is PacketStage.SUPPRESS:
            suppressed.add(key)
    for (uid, node), n in forwards.items():
        if n > 1:
            violations.append(Violation(
                "single-forwarder",
                f"node {node} forwarded uid {uid} {n} times (one election "
                "must elect at most one uncancelled relay per node)",
                detail={"uid": uid, "node": node, "count": n},
            ))
    for uid, node in sorted(late_forwards, key=repr):
        violations.append(Violation(
            "single-forwarder",
            f"node {node} forwarded uid {uid} after suppressing it",
            detail={"uid": uid, "node": node},
        ))


def check_invariants(obs: "Observability | PacketLedger", *,
                     single_forwarder: bool = True,
                     raise_on_violation: bool = False) -> list[Violation]:
    """Run every invariant over one run's ledger.

    Accepts the :class:`Observability` bundle or a bare ledger.  Returns
    the violations found (empty = clean); with ``raise_on_violation`` any
    violation raises :class:`InvariantViolation` instead — the form the
    chaos CI job uses.
    """
    ledger = obs.ledger if hasattr(obs, "ledger") else obs
    violations: list[Violation] = []
    _check_unique_origination(ledger, violations)
    _check_conservation(ledger, violations)
    _check_dead_radio(ledger, violations)
    if single_forwarder:
        _check_single_forwarder(ledger, violations)
    if violations and raise_on_violation:
        raise InvariantViolation(violations)
    return violations
