"""Executes a :class:`~repro.faults.plan.FaultPlan` against a built network.

:func:`install_plan` translates every declarative spec into scheduled sim
events on a single :class:`FaultController` component, before the simulation
starts.  Everything stochastic draws from named :mod:`repro.sim.rng`
streams, keyed by fault kind and node id — never by installation order — so
any (plan, seed) pair replays bit-identically regardless of how the plan's
faults are listed.

Determinism notes worth keeping in mind when adding fault kinds:

* Duty-cycle outages delegate to
  :func:`repro.topology.failures.apply_failures` with the *same component
  names* the legacy Figure 4 path used (``failure[{node}]``), so
  ``fig4_plan(f)`` reproduces the legacy results to the last bit.
* Per-node streams (``faults.corrupt[{n}]``, ``faults.skew[{n}]``) mean the
  set of *other* affected nodes never shifts a node's own draws.
* Link faults mutate a shared sparse ``{(src, dst): dB}`` offset map;
  activation/deactivation are additive/subtractive, so overlapping link
  faults compose, and a deactivation cancels its activation exactly
  (identical float sequence), leaving the link pristine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.ledger import DropReason
from repro.sim.components import Component, SimContext
from repro.faults.plan import (
    ClockSkew,
    DutyCycleOutage,
    EnergyDepletion,
    FaultPlan,
    FaultSpec,
    LinkDegradation,
    NodeCrash,
    PacketCorruption,
    Partition,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.common import Network

__all__ = ["FaultController", "install_plan", "PARTITION_LOSS_DB"]

#: Pathloss injected across partition boundaries — far beyond any link
#: margin in these scenarios, so cross-group links are dead while active.
PARTITION_LOSS_DB = 1000.0

#: Fault kinds whose off/on ledger transitions toggle radio power; the
#: invariant checker reconstructs per-node OFF windows from these.
RADIO_POWER_KINDS = ("duty_cycle", "node_crash", "energy_depletion")


class FaultController(Component):
    """One network's installed fault plan: schedules every transition and
    owns the shared per-link offset matrix."""

    def __init__(self, ctx: SimContext, net: "Network", plan: FaultPlan,
                 exempt: Iterable[int] = ()):
        super().__init__(ctx, "faults")
        self.net = net
        self.plan = plan
        self.exempt = frozenset(int(n) for n in exempt)
        self.n_nodes = len(net.radios)

        #: Duty-cycle processes created by the plan (mirrors the legacy
        #: ``apply_failures`` return value, for tests and reports).
        self.duty_cycles: list = []
        #: node id -> drawn clock-rate factor (clock_skew faults).
        self.skew_factors: dict[int, float] = {}
        #: node ids shut down for good by energy depletion.
        self.depleted: set[int] = set()

        self._link_offsets: dict[tuple[int, int], float] = {}
        self._active_link_faults = 0
        self._energy_polls: dict[int, object] = {}  # node -> poll handle

        all_ids = frozenset(r.node_id for r in net.radios)
        unknown_exempt = self.exempt - all_ids
        if unknown_exempt:
            raise ValueError(f"exempt node id(s) {sorted(unknown_exempt)} "
                             "name no radio in the network")
        for spec in plan.faults:
            self._validate_nodes(spec)
        for spec in plan.faults:
            self._install(spec)

    # ---------------------------------------------------------------- helpers

    def _validate_nodes(self, spec: FaultSpec) -> None:
        named: set[int] = set(spec.nodes or ())
        if isinstance(spec, LinkDegradation):
            named = {n for pair in spec.pairs for n in pair}
        elif isinstance(spec, Partition):
            named = {n for group in spec.groups for n in group}
        out_of_range = {n for n in named
                        if not 0 <= n < self.n_nodes}
        if out_of_range:
            raise ValueError(
                f"fault {spec.kind!r} names node id(s) {sorted(out_of_range)} "
                f"outside 0..{self.n_nodes - 1}")

    def _selected(self, spec: FaultSpec, honour_exempt: bool = True) -> list[int]:
        """Node ids a spec applies to — explicit set or all nodes, minus the
        experiment's exemption set when the spec honours it."""
        ids: Iterable[int]
        if spec.nodes is None:
            ids = range(self.n_nodes)
        else:
            ids = spec.nodes
        if honour_exempt:
            return [n for n in ids if n not in self.exempt]
        return list(ids)

    def _emit(self, node: int, kind: str, action: str, **detail) -> None:
        if self.ctx.observing:
            self.ctx.obs.on_fault(self.now, node, kind, action, **detail)

    # ---------------------------------------------------------------- install

    def _install(self, spec: FaultSpec) -> None:
        if isinstance(spec, NodeCrash):
            self._install_crash(spec)
        elif isinstance(spec, DutyCycleOutage):
            self._install_duty_cycle(spec)
        elif isinstance(spec, LinkDegradation):
            self._install_link_degradation(spec)
        elif isinstance(spec, Partition):
            self._install_partition(spec)
        elif isinstance(spec, PacketCorruption):
            self._install_corruption(spec)
        elif isinstance(spec, ClockSkew):
            self._install_clock_skew(spec)
        elif isinstance(spec, EnergyDepletion):
            self._install_energy_depletion(spec)
        else:  # pragma: no cover - new kinds must add an installer
            raise TypeError(f"no installer for fault kind {spec.kind!r}")

    # ------------------------------------------------------------ node crash

    def _install_crash(self, spec: NodeCrash) -> None:
        for node in self._selected(spec):
            self.schedule(spec.start_s, self._crash_node, node)
            if spec.recover_s is not None:
                self.schedule(spec.recover_s, self._recover_node, node)

    def _crash_node(self, node: int) -> None:
        self.net.radios[node].set_power(False)
        self._emit(node, "node_crash", "off")

    def _recover_node(self, node: int) -> None:
        if node in self.depleted:
            return  # energy ran out meanwhile; depletion is permanent
        self.net.radios[node].set_power(True)
        self._emit(node, "node_crash", "on")

    # ------------------------------------------------------------ duty cycle

    def _install_duty_cycle(self, spec: DutyCycleOutage) -> None:
        from repro.topology.failures import apply_failures

        radios = self.net.radios
        if spec.nodes is not None:
            chosen = set(self._selected(spec,
                                        honour_exempt=spec.exempt_endpoints))
            radios = [r for r in radios if r.node_id in chosen]
            exempt: Sequence[int] = ()
        else:
            exempt = sorted(self.exempt) if spec.exempt_endpoints else ()
        self.duty_cycles.extend(apply_failures(
            self.ctx, radios, spec.off_fraction,
            exempt=exempt, mean_cycle_s=spec.mean_cycle_s, sleep=spec.sleep))

    # ----------------------------------------------------------- link faults

    def _apply_offsets(self) -> None:
        channel = self.net.channel
        if self._active_link_faults > 0:
            channel.set_link_offsets(self._link_offsets)
        else:
            channel.set_link_offsets(None)

    def _shift_links(self, pairs: Sequence[tuple[int, int]], delta_db: float,
                     kind: str, action: str, detail: dict) -> None:
        offsets = self._link_offsets
        touched: set[int] = set()
        for a, b in pairs:
            # Same accumulation sequence a dense matrix entry would see, so
            # on/off pairs cancel to exactly 0.0 and the entry is dropped —
            # the sparse channel patches only rows that still carry offsets.
            value = offsets.get((a, b), 0.0) + delta_db
            if value == 0.0:
                offsets.pop((a, b), None)
            else:
                offsets[(a, b)] = value
            touched.update((a, b))
        self._active_link_faults += 1 if delta_db < 0 else -1
        self._apply_offsets()
        for node in sorted(touched):
            self._emit(node, kind, action, **detail)

    def _install_link_degradation(self, spec: LinkDegradation) -> None:
        pairs = list(spec.pairs)
        if spec.symmetric:
            pairs += [(b, a) for a, b in spec.pairs]
        detail = {"loss_db": spec.loss_db}
        self.schedule(spec.start_s, self._shift_links, pairs, -spec.loss_db,
                      "link_degradation", "on", detail)
        if spec.stop_s is not None:
            self.schedule(spec.stop_s, self._shift_links, pairs, spec.loss_db,
                          "link_degradation", "off", detail)

    def _install_partition(self, spec: Partition) -> None:
        pairs: list[tuple[int, int]] = []
        for i, group in enumerate(spec.groups):
            for other in spec.groups[i + 1:]:
                for a in group:
                    for b in other:
                        pairs.append((a, b))
                        pairs.append((b, a))
        detail = {"groups": len(spec.groups)}
        self.schedule(spec.start_s, self._shift_links, pairs,
                      -PARTITION_LOSS_DB, "partition", "on", detail)
        if spec.stop_s is not None:
            self.schedule(spec.stop_s, self._shift_links, pairs,
                          PARTITION_LOSS_DB, "partition", "off", detail)

    # ------------------------------------------------------------ corruption

    def _install_corruption(self, spec: PacketCorruption) -> None:
        nodes = self._selected(spec)
        self.schedule(spec.start_s, self._corruption_on, nodes,
                      spec.probability)
        if spec.stop_s is not None:
            self.schedule(spec.stop_s, self._corruption_off, nodes)

    def _corruption_on(self, nodes: list[int], probability: float) -> None:
        for node in nodes:
            radio = self.net.radios[node]
            # Per-node stream: other nodes' receptions never perturb ours.
            radio._fault_rng = self.ctx.streams.stream(
                f"faults.corrupt[{node}]")
            radio.fault_corrupt_prob = probability
            self._emit(node, "packet_corruption", "on",
                       probability=probability)

    def _corruption_off(self, nodes: list[int]) -> None:
        for node in nodes:
            self.net.radios[node].fault_corrupt_prob = 0.0
            self._emit(node, "packet_corruption", "off")

    # ------------------------------------------------------------ clock skew

    def _install_clock_skew(self, spec: ClockSkew) -> None:
        nodes = self._selected(spec)
        self.schedule(spec.start_s, self._skew_on, nodes, spec)

    def _skew_on(self, nodes: list[int], spec: ClockSkew) -> None:
        sources_by_node: dict[int, list] = {}
        for source in self.net.sources:
            sources_by_node.setdefault(source.protocol.node_id,
                                       []).append(source)
        for node in nodes:
            rng = self.ctx.streams.stream(f"faults.skew[{node}]")
            factor = max(spec.min_factor, 1.0 + float(rng.normal(0.0, spec.sigma)))
            self.skew_factors[node] = factor
            self.net.macs[node].time_scale = factor
            for source in sources_by_node.get(node, ()):
                source.time_scale = factor
            self._emit(node, "clock_skew", "on", factor=factor)

    # ------------------------------------------------------ energy depletion

    def _install_energy_depletion(self, spec: EnergyDepletion) -> None:
        nodes = self._selected(spec)
        for node in nodes:
            if self.net.radios[node].energy is None:
                raise ValueError(
                    f"energy_depletion on node {node} needs the scenario "
                    "built with with_energy=True (no energy meter attached)")
        for node in nodes:
            self.schedule(spec.start_s + spec.poll_s, self._poll_energy,
                          node, spec)

    def _poll_energy(self, node: int, spec: EnergyDepletion) -> None:
        if node in self.depleted:
            return
        radio = self.net.radios[node]
        if not radio.is_on:
            # Can't deplete while already off; keep watching for recovery.
            self.schedule(spec.poll_s, self._poll_energy, node, spec)
            return
        consumed = radio.energy.finalize(self.now)
        if consumed < spec.capacity_j:
            self.schedule(spec.poll_s, self._poll_energy, node, spec)
            return
        self.depleted.add(node)
        # The battery is dead for good: drain the MAC queue under the
        # fault-specific reason, then cut power.
        mac = self.net.macs[node]
        purged = mac.queue.purge(DropReason.ENERGY_DEPLETED)
        if self.ctx.observing:
            for job in purged:
                self.ctx.obs.on_drop(self.now, node, "mac",
                                     DropReason.ENERGY_DEPLETED,
                                     job.packet.uid)
        radio.set_power(False)
        self._emit(node, "energy_depletion", "off", consumed_j=consumed)


def install_plan(net: "Network", plan: FaultPlan,
                 exempt: Iterable[int] = ()) -> FaultController:
    """Install ``plan`` on a freshly built network, before ``net.run``.

    ``exempt`` is the experiment's protected node set (the CBR endpoints,
    per Figure 4's convention); specs that honour it never touch those
    nodes.  Returns the controller for inspection.
    """
    return FaultController(net.ctx, net, plan, exempt=exempt)
