"""Deterministic, seed-reproducible fault injection.

Declarative :class:`FaultPlan`\\ s (JSON-serializable, content-addressable,
picklable) describe *what* goes wrong; :func:`install_plan` schedules it
against a built network; :func:`check_invariants` verifies after the run
that chaos broke only efficiency, never correctness.  See ``docs/FAULTS.md``
for the taxonomy, the plan schema and the replay guarantees.

::

    from repro import faults

    plan = faults.FaultPlan(name="demo", faults=(
        faults.DutyCycleOutage(off_fraction=0.1),
        faults.NodeCrash(nodes=(7,), start_s=3.0, recover_s=6.0),
    ))
    net = build_protocol_network("ssaf", scenario, obs=obs)
    faults.install_plan(net, plan, exempt=endpoints)
    net.run(until=10.0)
    faults.check_invariants(obs, raise_on_violation=True)
"""

from repro.faults.injector import FaultController, install_plan
from repro.faults.invariants import (
    InvariantViolation,
    Violation,
    check_invariants,
    ledger_accounting,
    off_windows,
)
from repro.faults.plan import (
    ClockSkew,
    DutyCycleOutage,
    EnergyDepletion,
    FaultPlan,
    FaultSpec,
    LinkDegradation,
    NodeCrash,
    PacketCorruption,
    Partition,
    fig4_plan,
    mixed_chaos_plan,
)

__all__ = [
    "FaultSpec",
    "NodeCrash",
    "DutyCycleOutage",
    "LinkDegradation",
    "Partition",
    "PacketCorruption",
    "ClockSkew",
    "EnergyDepletion",
    "FaultPlan",
    "fig4_plan",
    "mixed_chaos_plan",
    "FaultController",
    "install_plan",
    "Violation",
    "InvariantViolation",
    "check_invariants",
    "ledger_accounting",
    "off_windows",
]
