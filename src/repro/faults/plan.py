"""Declarative, seed-reproducible fault plans.

The paper's Figure 4 stresses the protocols with exactly one failure shape:
duty-cycled transceiver outages (:class:`~repro.topology.failures
.DutyCycleFailure`).  The related leader-election literature (Czumaj &
Davies; Ghaffari et al.) analyses a much richer adversary — crashed
participants, missed wake slots, asymmetric links, partitions — and the
ROADMAP's north star asks for "as many scenarios as you can imagine".

A :class:`FaultPlan` is the declarative answer: an ordered tuple of
:class:`FaultSpec` values, each describing one fault process with explicit
timing.  Plans are plain frozen dataclasses, so they

* serialize to/from JSON (``to_json``/``from_json``) for the campaign
  ``--faults PLAN.json`` axis,
* pickle across campaign worker processes,
* canonicalize through :func:`repro.campaign.fingerprint.canonicalize`, so
  a cell's content address changes with its fault plan exactly like it
  changes with any other config field, and
* replay **bit-identically**: every stochastic fault draws from named
  :mod:`repro.sim.rng` streams, so the same (plan, seed) pair produces the
  same fault event sequence every time.

Execution lives in :mod:`repro.faults.injector`; end-of-run property checks
in :mod:`repro.faults.invariants`.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, ClassVar, Iterable, Optional

__all__ = [
    "FaultSpec",
    "NodeCrash",
    "DutyCycleOutage",
    "LinkDegradation",
    "Partition",
    "PacketCorruption",
    "ClockSkew",
    "EnergyDepletion",
    "FaultPlan",
    "fault_spec",
    "fig4_plan",
    "mixed_chaos_plan",
]

#: kind string -> spec class; filled by the :func:`fault_spec` decorator.
SPEC_TYPES: dict[str, type["FaultSpec"]] = {}


def fault_spec(kind: str):
    """Class decorator registering a :class:`FaultSpec` subclass under its
    wire-format ``kind`` string (the discriminator used by JSON plans)."""

    def register(cls: type["FaultSpec"]) -> type["FaultSpec"]:
        if kind in SPEC_TYPES:
            raise ValueError(f"fault kind {kind!r} already registered "
                             f"({SPEC_TYPES[kind].__name__})")
        cls.kind = kind
        SPEC_TYPES[kind] = cls
        return cls

    return register


@dataclass(frozen=True, kw_only=True)
class FaultSpec:
    """Base class for one declarative fault process.

    ``nodes`` selects the affected node ids; ``None`` means *every*
    non-exempt node (the injector receives the experiment's exemption set —
    the CBR endpoints, mirroring Figure 4's "all nodes but those that
    generate and receive CBR traffic").
    """

    kind: ClassVar[str] = "abstract"

    nodes: Optional[tuple[int, ...]] = None
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
            if len(set(self.nodes)) != len(self.nodes):
                raise ValueError(f"duplicate node ids in {self.nodes}")

    # ------------------------------------------------------------------ wire

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            payload[field.name] = value
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "FaultSpec":
        payload = dict(payload)
        kind = payload.pop("kind", None)
        cls = SPEC_TYPES.get(kind)
        if cls is None:
            known = " ".join(sorted(SPEC_TYPES))
            raise ValueError(f"unknown fault kind {kind!r} "
                             f"(known kinds: {known})")
        known_fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known_fields
        if unknown:
            raise ValueError(f"unknown field(s) {sorted(unknown)} for fault "
                             f"kind {kind!r}")
        for name, value in payload.items():
            if isinstance(value, list):
                payload[name] = tuple(
                    tuple(v) if isinstance(v, list) else v for v in value
                )
        return cls(**payload)


@fault_spec("node_crash")
@dataclass(frozen=True, kw_only=True)
class NodeCrash(FaultSpec):
    """Hard transceiver shutdown at ``start_s``; optional later recovery.

    The crashed node is deaf and mute for the whole outage — receptions in
    flight are lost, queued frames are purged (``DropReason.RADIO_OFF``).
    """

    recover_s: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes is None:
            raise ValueError("node_crash needs an explicit node set "
                             "(crashing every node ends the simulation)")
        if self.recover_s is not None and self.recover_s <= self.start_s:
            raise ValueError("recover_s must be after start_s")


@fault_spec("duty_cycle")
@dataclass(frozen=True, kw_only=True)
class DutyCycleOutage(FaultSpec):
    """Figure 4's failure shape: an alternating ON/OFF renewal process per
    node with exponential period lengths, long-run OFF fraction
    ``off_fraction`` (see :class:`repro.topology.failures.DutyCycleFailure`).
    """

    off_fraction: float = 0.1
    mean_cycle_s: float = 4.0
    sleep: bool = False
    #: Honour the experiment's exemption set (the CBR endpoints).  Turn off
    #: to duty-cycle even traffic endpoints.
    exempt_endpoints: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.off_fraction < 1.0:
            raise ValueError("off_fraction must be in [0, 1)")
        if self.mean_cycle_s <= 0:
            raise ValueError("mean_cycle_s must be positive")


@fault_spec("link_degradation")
@dataclass(frozen=True, kw_only=True)
class LinkDegradation(FaultSpec):
    """Extra pathloss on selected links between ``start_s`` and ``stop_s``.

    ``loss_db`` is subtracted from the link budget of every ``(src, dst)``
    pair; ``symmetric=False`` degrades only the given direction, producing
    the *unidirectional links* whose effect on Routeless Routing the paper
    discusses.  A large ``loss_db`` (≥ the link margin) severs the link.
    """

    pairs: tuple[tuple[int, int], ...] = ()
    loss_db: float = 10.0
    stop_s: Optional[float] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.pairs:
            raise ValueError("link_degradation needs at least one (src, dst) pair")
        object.__setattr__(
            self, "pairs",
            tuple((int(a), int(b)) for a, b in self.pairs))
        for a, b in self.pairs:
            if a == b:
                raise ValueError(f"link ({a}, {b}) is a self-loop")
        if self.loss_db <= 0:
            raise ValueError("loss_db must be positive")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must be after start_s")


@fault_spec("partition")
@dataclass(frozen=True, kw_only=True)
class Partition(FaultSpec):
    """Block every link between the groups for the fault's lifetime.

    Nodes not named in any group keep their links to everyone (they sit on
    the "border"); name every node to make the cut total.
    """

    groups: tuple[tuple[int, ...], ...] = ()
    stop_s: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.groups) < 2:
            raise ValueError("partition needs at least two groups")
        object.__setattr__(
            self, "groups",
            tuple(tuple(int(n) for n in group) for group in self.groups))
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen.intersection(group)
            if overlap:
                raise ValueError(f"node(s) {sorted(overlap)} appear in more "
                                 "than one partition group")
            seen.update(group)
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must be after start_s")


@fault_spec("packet_corruption")
@dataclass(frozen=True, kw_only=True)
class PacketCorruption(FaultSpec):
    """Corrupt each otherwise-intact reception with probability
    ``probability`` at the affected radios (random bit errors at the PHY).
    Dropped copies carry ``DropReason.FAULT_CORRUPTED``."""

    probability: float = 0.1
    stop_s: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop_s must be after start_s")


@fault_spec("clock_skew")
@dataclass(frozen=True, kw_only=True)
class ClockSkew(FaultSpec):
    """Gaussian per-node oscillator skew applied to node-local timers.

    Each affected node draws a rate factor ``max(min_factor, N(1, sigma))``
    from its own named RNG stream and runs its MAC contention backoffs and
    application traffic cadence at that rate — a node with factor 1.02 has a
    2 % slow clock.  Skew models the cheap-crystal drift that breaks wake
    slot alignment in real duty-cycled deployments.
    """

    sigma: float = 0.01
    min_factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.min_factor <= 0:
            raise ValueError("min_factor must be positive")


@fault_spec("energy_depletion")
@dataclass(frozen=True, kw_only=True)
class EnergyDepletion(FaultSpec):
    """Shut a node's transceiver down for good once its energy meter has
    integrated ``capacity_j`` joules.  Needs the scenario built with
    ``with_energy=True`` (each radio owns an
    :class:`~repro.phy.energy.EnergyMeter`)."""

    capacity_j: float = 1.0
    poll_s: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.capacity_j <= 0:
            raise ValueError("capacity_j must be positive")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """An ordered, named collection of fault specs — one chaos scenario."""

    name: str = "plan"
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"not a FaultSpec: {spec!r}")

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Both plans' faults under a combined name."""
        return FaultPlan(name=f"{self.name}+{other.name}",
                         faults=self.faults + other.faults)

    # ------------------------------------------------------------------ wire

    def to_dict(self) -> dict:
        return {"name": self.name,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            name=str(payload.get("name", "plan")),
            faults=tuple(FaultSpec.from_dict(spec)
                         for spec in payload.get("faults", ())),
        )

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls.from_dict(json.loads(blob))

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


# --------------------------------------------------------------- built-ins

def fig4_plan(off_fraction: float, mean_cycle_s: float = 4.0,
              sleep: bool = False) -> FaultPlan:
    """The paper's Figure 4 workload as a plan: duty-cycled outages on every
    node except the CBR endpoints.  Byte-for-byte the same renewal processes
    as the legacy ``apply_failures`` path (same named RNG streams), so
    results match bit-identically."""
    return FaultPlan(name=f"fig4-{off_fraction:g}", faults=(
        DutyCycleOutage(off_fraction=off_fraction, mean_cycle_s=mean_cycle_s,
                        sleep=sleep),
    ))


def mixed_chaos_plan(n_nodes: int,
                     exempt: Iterable[int] = ()) -> FaultPlan:
    """A deliberately nasty mixed plan for chaos smoke runs: duty-cycled
    outages, one mid-run crash with recovery, degraded links around the
    crash victim, and light packet corruption everywhere."""
    exempt_set = set(int(n) for n in exempt)
    victims = [n for n in range(n_nodes) if n not in exempt_set]
    if not victims:
        raise ValueError("no non-exempt nodes to inject faults into")
    crash = victims[len(victims) // 2]
    neighbor = victims[len(victims) // 3]
    pairs: tuple[tuple[int, int], ...] = ((crash, neighbor),) \
        if crash != neighbor else ((crash, victims[0]),) \
        if crash != victims[0] else ()
    faults: tuple[FaultSpec, ...] = (
        DutyCycleOutage(off_fraction=0.05, mean_cycle_s=2.0),
        NodeCrash(nodes=(crash,), start_s=3.0, recover_s=7.0),
        PacketCorruption(probability=0.02, start_s=1.0),
        ClockSkew(sigma=0.01),
    )
    if pairs:
        faults = faults + (LinkDegradation(pairs=pairs, loss_db=30.0,
                                           start_s=2.0, stop_s=9.0),)
    return FaultPlan(name="mixed-chaos", faults=faults)
