from repro.experiments.cli import main

raise SystemExit(main())
