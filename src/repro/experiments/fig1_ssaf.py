"""Figure 1 — SSAF versus counter-1 flooding.

Paper setup: 100 nodes uniformly random on 1000 m × 1000 m, free space
propagation, 50 connections between randomly chosen sources and
destinations, packet generation interval swept along the x-axis.  Three
panels: average end-to-end delay, average hops, delivery ratio.

Paper findings this experiment should reproduce *in shape*:

* SSAF delivers a higher fraction of packets at every interval;
* SSAF's packets take fewer hops;
* SSAF's delay is slightly lower in light traffic and *much* lower at small
  generation intervals, where the MAC priority queue lets short-backoff
  relays overtake queued ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    paper_scale,
    pick_flows,
)
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.stats.series import SweepSeries

__all__ = ["Fig1Config", "campaign_spec", "run_fig1", "run_one"]


@dataclass(frozen=True, kw_only=True)
class Fig1Config:
    n_nodes: int = 60
    terrain_m: float = 775.0  # preserves the paper's node density
    range_m: float = 250.0
    n_connections: int = 15
    intervals_s: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0)
    duration_s: float = 12.0
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("counter1", "ssaf")

    @classmethod
    def paper(cls) -> "Fig1Config":
        return cls(
            n_nodes=100,
            terrain_m=1000.0,
            n_connections=50,
            intervals_s=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0),
            duration_s=60.0,
            seeds=(1, 2, 3, 4, 5),
        )

    @classmethod
    def active(cls) -> "Fig1Config":
        return cls.paper() if paper_scale() else cls()


def run_one(protocol: str, interval_s: float, seed: int, config: Fig1Config,
            obs=None, faults=None) -> ExperimentResult:
    """One cell of the sweep.  ``faults`` takes an optional
    :class:`~repro.faults.plan.FaultPlan`, installed with the CBR endpoints
    exempt."""
    started = time.perf_counter()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes,
        width_m=config.terrain_m,
        height_m=config.terrain_m,
        range_m=config.range_m,
        seed=seed,
    )
    net = build_protocol_network(protocol, scenario, obs=obs)
    flows = pick_flows(
        config.n_nodes,
        config.n_connections,
        RandomStreams(seed + 7777).stream("fig1.flows"),
        distinct_endpoints=False,
    )
    if faults is not None:
        from repro.faults import install_plan
        endpoints = {node for flow in flows for node in flow}
        install_plan(net, faults, exempt=endpoints)
    # Sources stop early enough for in-flight packets to drain.
    attach_cbr(net, flows, interval_s=interval_s,
               stop_s=config.duration_s - 2.0)
    net.run(until=config.duration_s)
    return ExperimentResult.from_summary(
        net.summary(), config=config, seed=seed,
        wall_s=time.perf_counter() - started)


@experiment(name="fig1",
            description="SSAF vs counter-1 flooding (delay, hops, delivery "
                        "vs packet generation interval)",
            panels=("avg_delay_s", "avg_hops", "delivery_ratio"),
            x_label="packet generation interval (s)")
def campaign_spec(config: Fig1Config | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else Fig1Config.active()
    return CampaignSpec(name="fig1", run_one=run_one,
                        protocols=config.protocols, xs=config.intervals_s,
                        seeds=config.seeds, config=config)


def run_fig1(config: Fig1Config | None = None,
             **campaign_kwargs) -> dict[str, SweepSeries]:
    """The full sweep: ``{protocol: series}`` keyed like the figure legend.

    Keyword arguments (``cache_dir``, ``campaign_dir``, ``resume``,
    ``workers``, ...) are forwarded to :func:`repro.campaign.run_campaign`.
    A quarantined cell raises here — library callers expect a complete
    sweep; use :func:`repro.campaign.run_spec` directly for the tolerant
    campaign semantics.
    """
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"fig1 sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_fig1()
    series = list(results.values())
    for metric, label in (
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("avg_hops", "Average Hops"),
        ("delivery_ratio", "Delivery Ratio"),
    ):
        print(f"\n=== Figure 1: {label} vs Packet Generation Interval ===")
        print(format_table(series, metric, x_label="interval_s"))
        print(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="packet generation interval (s)",
        ))


if __name__ == "__main__":  # pragma: no cover
    main()
