"""Figure 2 — automatic congestion avoidance in Routeless Routing.

Paper setup: two simulations visualized side by side.  Left: a single flow
A→B.  Right: the same scenario plus a second, heavily loaded flow C↔D whose
corridor crosses A→B's straight-line path.  The figure shows A→B's packets
routing *around* the congested middle.

The mechanism (Section 4.2): a congested relay may win the election on
backoff but its MAC queue is long, so a less-congested peer's relay hits the
air first and takes the hop — no explicit congestion signalling anywhere.

We reproduce it quantitatively: endpoints are the nodes nearest the paper's
A/B (west/east midline) and C/D (south/north midline) positions, and the
reported statistic is the fraction of A→B relay events within a disc around
the terrain centre, with and without the C↔D load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.cbr import CbrConfig, CbrSource
from repro.experiments.common import (
    ScenarioConfig,
    build_protocol_network,
    paper_scale,
)
from repro.experiments.registry import register_script
from repro.viz.paths import corridor_usage, relay_heatmap

__all__ = ["Fig2Config", "Fig2Result", "run_fig2", "nearest_node"]


@dataclass(frozen=True, kw_only=True)
class Fig2Config:
    n_nodes: int = 100
    terrain_m: float = 1000.0
    range_m: float = 250.0
    seed: int = 11
    #: A→B probe traffic.
    ab_interval_s: float = 0.4
    #: C↔D congesting traffic (each direction).
    cd_interval_s: float = 0.015
    duration_s: float = 12.0
    corridor_radius_m: float = 250.0

    @classmethod
    def paper(cls) -> "Fig2Config":
        return cls(n_nodes=200, duration_s=40.0)

    @classmethod
    def active(cls) -> "Fig2Config":
        return cls.paper() if paper_scale() else cls()


@dataclass
class Fig2Result:
    positions: np.ndarray
    endpoints: dict[str, int]
    paths_alone: list[tuple[int, ...]]
    paths_congested: list[tuple[int, ...]]
    corridor_alone: float
    corridor_congested: float
    delivery_alone: float
    delivery_congested: float

    def heatmaps(self) -> tuple[str, str]:
        marks = self.endpoints
        return (
            relay_heatmap(self.positions, self.paths_alone, marks),
            relay_heatmap(self.positions, self.paths_congested, marks),
        )


def nearest_node(positions: np.ndarray, point: tuple[float, float]) -> int:
    """Node id closest to a terrain coordinate."""
    deltas = positions - np.asarray(point, dtype=float)
    return int(np.argmin((deltas**2).sum(axis=1)))


def _run_phase(config: Fig2Config, congested: bool):
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes,
        width_m=config.terrain_m,
        height_m=config.terrain_m,
        range_m=config.range_m,
        seed=config.seed,
    )
    net = build_protocol_network("routeless", scenario)
    t = config.terrain_m
    a = nearest_node(net.positions, (0.08 * t, 0.5 * t))
    b = nearest_node(net.positions, (0.92 * t, 0.5 * t))
    c = nearest_node(net.positions, (0.5 * t, 0.08 * t))
    d = nearest_node(net.positions, (0.5 * t, 0.92 * t))

    CbrSource(net.ctx, net.protocols[a], b, CbrConfig(
        interval_s=config.ab_interval_s, stop_s=config.duration_s - 2.0,
        start_jitter_s=config.ab_interval_s))
    if congested:
        for src, dst in ((c, d), (d, c)):
            CbrSource(net.ctx, net.protocols[src], dst, CbrConfig(
                interval_s=config.cd_interval_s,
                stop_s=config.duration_s - 2.0,
                start_jitter_s=config.cd_interval_s))
    net.run(until=config.duration_s)

    paths = net.metrics.paths_between(a, b)
    generated = sum(1 for uid, p in net.metrics._originated.items()
                    if p.origin == a and p.target == b)
    delivery = len(paths) / generated if generated else 0.0
    return net, {"A": a, "B": b, "C": c, "D": d}, paths, delivery


def run_fig2(config: Fig2Config | None = None) -> Fig2Result:
    config = config if config is not None else Fig2Config.active()
    net_alone, endpoints, paths_alone, delivery_alone = _run_phase(config, congested=False)
    net_cong, _, paths_congested, delivery_congested = _run_phase(config, congested=True)

    center = (config.terrain_m / 2, config.terrain_m / 2)
    return Fig2Result(
        positions=net_alone.positions,
        endpoints=endpoints,
        paths_alone=paths_alone,
        paths_congested=paths_congested,
        corridor_alone=corridor_usage(
            net_alone.positions, paths_alone, center, config.corridor_radius_m),
        corridor_congested=corridor_usage(
            net_cong.positions, paths_congested, center, config.corridor_radius_m),
        delivery_alone=delivery_alone,
        delivery_congested=delivery_congested,
    )


@register_script(name="fig2",
                 description="Congestion-avoidance heatmaps (A→B corridor "
                             "usage with and without cross traffic)")
def main() -> None:  # pragma: no cover - exercised via benchmarks
    result = run_fig2()
    left, right = result.heatmaps()
    print("=== Figure 2: A→B relay usage, alone (left) vs with C↔D load (right) ===")
    for l_line, r_line in zip(left.splitlines(), right.splitlines()):
        print(f"{l_line}   {r_line}")
    print(f"corridor usage alone:     {result.corridor_alone:.3f} "
          f"(delivery {result.delivery_alone:.2f})")
    print(f"corridor usage congested: {result.corridor_congested:.3f} "
          f"(delivery {result.delivery_congested:.2f})")


if __name__ == "__main__":  # pragma: no cover
    main()
