"""Extension experiment — routing under node mobility.

Not in the paper's evaluation (its dynamics come from transceiver failures),
but squarely in its motivation: Routeless Routing "makes networks more
adaptive to dynamic changes".  This sweep moves every non-endpoint node with
the random-waypoint model and compares the explicit-route protocols (AODV,
DSR, DSDV) against Routeless Routing across maximum speeds.

Expected shape, extrapolating the paper's argument: the explicit-route
protocols pay for every broken link (repair floods and/or stale tables — cost
grows with speed), while Routeless Routing re-elects each hop per packet and
degrades only through table staleness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    paper_scale,
    pick_flows,
)
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.stats.series import SweepSeries
from repro.topology.mobility import (
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    mobility_model,
)

__all__ = ["MobilityExpConfig", "campaign_spec", "run_mobility", "run_one"]


@dataclass(frozen=True, kw_only=True)
class MobilityExpConfig:
    """Sweep grid for the mobility extension experiment."""
    n_nodes: int = 100
    terrain_m: float = 900.0
    range_m: float = 250.0
    n_pairs: int = 3
    cbr_interval_s: float = 1.0
    duration_s: float = 30.0
    max_speeds_mps: tuple[float, ...] = (0.0, 5.0, 10.0, 20.0)
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("aodv", "dsr", "dsdv", "routeless")

    @classmethod
    def paper(cls) -> "MobilityExpConfig":
        return cls(n_nodes=200, terrain_m=1300.0, duration_s=60.0,
                   seeds=(1, 2, 3))

    @classmethod
    def active(cls) -> "MobilityExpConfig":
        return cls.paper() if paper_scale() else cls()


def run_one(protocol: str, max_speed: float, seed: int,
            config: MobilityExpConfig, obs=None, faults=None,
            mobility: str | None = None) -> ExperimentResult:
    started = time.perf_counter()
    # ``--mobility NAME`` swaps the model; 3-D-only models get a degenerate
    # depth_m=0 arena (x/y placement draws are unchanged, z is pinned to 0).
    model_cls = mobility_model(mobility) if mobility is not None else None
    needs_3d = model_cls is not None and issubclass(model_cls, GaussMarkov3D)
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes,
        width_m=config.terrain_m,
        height_m=config.terrain_m,
        depth_m=0.0 if needs_3d else None,
        range_m=config.range_m,
        seed=seed,
    )
    net = build_protocol_network(protocol, scenario, obs=obs)
    flows = pick_flows(config.n_nodes, config.n_pairs,
                       RandomStreams(seed + 4242).stream("mobility.flows"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    if max_speed > 0:
        if needs_3d:
            model_cls(
                net.ctx, net.channel, arena=scenario.arena,
                config=GaussMarkovConfig(mean_speed_mps=max_speed),
                frozen=endpoints,
            )
        else:
            cls = model_cls if model_cls is not None else mobility_model("rwp")
            cls(
                net.ctx, net.channel, arena=scenario.arena,
                config=MobilityConfig(min_speed_mps=max(0.5, max_speed / 4),
                                      max_speed_mps=max_speed),
                frozen=endpoints,  # endpoints pinned, like Figure 4's exemption
            )
    if faults is not None:
        from repro.faults import install_plan
        install_plan(net, faults, exempt=endpoints)
    attach_cbr(net, flows, interval_s=config.cbr_interval_s,
               stop_s=config.duration_s - 3.0)
    net.run(until=config.duration_s)
    return ExperimentResult.from_summary(
        net.summary(), config=config, seed=seed,
        wall_s=time.perf_counter() - started)


@experiment(name="mobility",
            description="Extension: routing under random-waypoint mobility",
            panels=("delivery_ratio", "avg_delay_s", "mac_packets"),
            x_label="max node speed (m/s)")
def campaign_spec(config: MobilityExpConfig | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else MobilityExpConfig.active()
    return CampaignSpec(name="mobility", run_one=run_one,
                        protocols=config.protocols, xs=config.max_speeds_mps,
                        seeds=config.seeds, config=config)


def run_mobility(config: MobilityExpConfig | None = None,
                 **campaign_kwargs) -> dict[str, SweepSeries]:
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"mobility sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_mobility()
    series = list(results.values())
    for metric, label in (
        ("delivery_ratio", "Delivery Ratio"),
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("mac_packets", "Number of MAC Packets"),
    ):
        print(f"\n=== Extension: {label} vs Max Node Speed ===")
        print(format_table(series, metric, x_label="speed_mps"))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=label, x_label="max node speed (m/s)"))


if __name__ == "__main__":  # pragma: no cover
    main()
