"""Process-parallel execution of experiment sweeps.

Every figure is an embarrassingly parallel grid — (protocol, x, seed) cells
that share nothing — and each cell is a single-threaded discrete-event run.
The right parallelism is therefore at the *process* level: one interpreter
per cell batch, no shared state, results reduced in the parent.  This module
fans a sweep's cells over a :class:`concurrent.futures.ProcessPoolExecutor`
and reassembles the same ``{protocol: SweepSeries}`` structure the serial
runners produce — bit-identical, since every cell's RNG derives from its own
(seed, name) pair and never from execution order.

Usage::

    from repro.experiments.parallel import parallel_sweep
    from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one

    config = Fig3Config.active()
    results = parallel_sweep(
        run_one,
        protocols=config.protocols,
        xs=config.pair_counts,
        seeds=config.seeds,
        config=config,
    )

The ``run_one`` callable must be a module-level function (picklable) with
the signature ``run_one(protocol, x, seed, config) -> MetricsSummary``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Mapping, Sequence

from repro.stats.series import SweepSeries

__all__ = ["parallel_sweep", "default_workers"]


def default_workers() -> int:
    """Worker count: all cores minus one, at least one.

    The ``REPRO_MAX_WORKERS`` environment variable bounds the fan-out
    (clamped to ≥ 1) so CI and shared machines can cap parallelism without
    touching call sites.
    """
    workers = max(1, (os.cpu_count() or 2) - 1)
    cap = os.environ.get("REPRO_MAX_WORKERS", "").strip()
    if cap:
        try:
            workers = min(workers, max(1, int(cap)))
        except ValueError:
            pass
    return workers


def _run_cell(args):
    run_one, protocol, x, seed, config, extra = args
    return protocol, x, run_one(protocol, x, seed, config, **extra)


def parallel_sweep(
    run_one: Callable,
    protocols: Sequence[str],
    xs: Sequence[float],
    seeds: Sequence[int],
    config,
    max_workers: int | None = None,
    extra_kwargs: Mapping | None = None,
) -> dict[str, SweepSeries]:
    """Run the full (protocol × x × seed) grid across worker processes.

    Returns ``{protocol: SweepSeries}`` identical to the serial sweep: cell
    results are deterministic functions of their arguments, and series
    insertion order is normalized by sorting the grid.
    """
    extra = dict(extra_kwargs or {})
    cells = [
        (run_one, protocol, x, seed, config, extra)
        for protocol in protocols
        for x in xs
        for seed in seeds
    ]
    results = {p: SweepSeries(p) for p in protocols}
    workers = max_workers if max_workers is not None else default_workers()
    if workers <= 1:
        outcomes = map(_run_cell, cells)
    else:
        # chunksize > 1 amortizes pickling for large grids of small cells.
        chunksize = max(1, len(cells) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_cell, cells, chunksize=chunksize))
    for protocol, x, summary in outcomes:
        results[protocol].add(float(x), summary)
    return results
