"""The paper's evaluation, one module per figure."""

from repro.experiments.common import (
    Network,
    ScenarioConfig,
    attach_cbr,
    build_network,
    paper_scale,
    pick_flows,
)

__all__ = [
    "Network",
    "ScenarioConfig",
    "attach_cbr",
    "build_network",
    "paper_scale",
    "pick_flows",
]
