"""Figure 4 — Routeless Routing versus AODV under node failures.

Paper setup: same terrain as Figure 3; transceivers of every node *except*
the CBR endpoints are switched off a random 0-10 % of the time.  Four
panels, x-axis now the failure percentage.

Shape to reproduce:

* AODV's end-to-end delay and MAC packet count climb roughly linearly with
  the failure rate (every outage breaks a route: MAC retries, RERRs, a fresh
  discovery flood);
* Routeless Routing's stay approximately flat — a dead node simply loses
  elections it never entered ("completely resilient to node failures");
* delivery ratios stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import paper_scale
from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.faults.plan import fig4_plan
from repro.stats.series import SweepSeries

__all__ = ["Fig4Config", "campaign_spec", "run_cell", "run_fig4"]


@dataclass(frozen=True, kw_only=True)
class Fig4Config:
    base: Fig3Config = Fig3Config(duration_s=40.0)
    n_pairs: int = 4
    failure_fractions: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)
    #: Mean on+off cycle; off bursts last fraction × cycle on average.
    failure_cycle_s: float = 4.0
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("aodv", "routeless")

    @classmethod
    def paper(cls) -> "Fig4Config":
        return cls(
            base=Fig3Config.paper(),
            n_pairs=5,
            failure_fractions=tuple(i / 100 for i in range(0, 11)),
            seeds=(1, 2, 3),
        )

    @classmethod
    def active(cls) -> "Fig4Config":
        return cls.paper() if paper_scale() else cls()


def run_cell(protocol: str, fraction: float, seed: int, config: Fig4Config,
             obs=None, faults=None) -> ExperimentResult:
    """One Figure 4 cell in the standard (protocol, x, seed, config) shape —
    the swept x here is the failure fraction, not the pair count — so the
    figure fits the campaign/parallel grid runners.

    The failure workload is expressed as a :func:`~repro.faults.plan.fig4_plan`
    FaultPlan, which replays the legacy ``apply_failures`` renewal processes
    bit-identically (same named RNG streams).  Extra ``faults`` merge in.
    """
    plan = fig4_plan(fraction, config.failure_cycle_s) if fraction > 0.0 else None
    if faults is not None:
        plan = plan.merged(faults) if plan is not None else faults
    return run_one(
        protocol, config.n_pairs, seed, config.base,
        obs=obs,
        faults=plan,
    )


@experiment(name="fig4",
            description="Routeless Routing vs AODV under duty-cycled node "
                        "failures (FaultPlan-driven)",
            panels=("avg_delay_s", "delivery_ratio", "mac_packets",
                    "avg_hops"),
            x_label="node failure fraction")
def campaign_spec(config: Fig4Config | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else Fig4Config.active()
    return CampaignSpec(name="fig4", run_one=run_cell,
                        protocols=config.protocols,
                        xs=config.failure_fractions,
                        seeds=config.seeds, config=config)


def run_fig4(config: Fig4Config | None = None,
             **campaign_kwargs) -> dict[str, SweepSeries]:
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"fig4 sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_fig4()
    series = list(results.values())
    for metric, label in (
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("delivery_ratio", "Delivery Ratio"),
        ("mac_packets", "Number of MAC Packets"),
        ("avg_hops", "Average Hops"),
    ):
        print(f"\n=== Figure 4: {label} vs Node Failure Percentage ===")
        print(format_table(series, metric, x_label="failure"))
        print(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="node failure fraction",
        ))


if __name__ == "__main__":  # pragma: no cover
    main()
