"""The unified result shape every experiment's ``run_one`` returns.

Historically each experiment module returned whatever its figure needed —
a bare :class:`~repro.stats.metrics.MetricsSummary` here, ad-hoc dicts in
scripts there.  :class:`ExperimentResult` replaces them all with one frozen
dataclass:

* ``metrics`` — the cell's measurements as a plain name→value mapping (the
  :data:`~repro.stats.metrics.MetricsSummary` fields today; fault-injection
  and energy metrics can join without a schema change),
* ``fingerprint`` — content address of the cell's config (the same
  :func:`repro.campaign.fingerprint.canonicalize` the cache keys use), so a
  result can always be traced back to the exact configuration that
  produced it,
* ``seed`` — the cell's RNG seed,
* ``wall_s`` — wall-clock execution time (``compare=False``: two
  bit-identical simulations are *equal* even though their wall clocks
  differ).

Legacy call sites that read summary attributes off a ``run_one`` return
value (``result.delivery_ratio`` …) keep working through a deprecation
passthrough; the supported spellings are ``result.metrics["delivery_ratio"]``
or ``result.to_summary()``.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.stats.metrics import MetricsSummary

__all__ = ["ExperimentResult", "config_fingerprint"]


def config_fingerprint(config: Any) -> str:
    """Content address of one experiment config (16 hex chars — enough to
    distinguish configs, short enough to eyeball in JSON exports)."""
    import hashlib
    import json

    from repro.campaign.fingerprint import canonicalize

    blob = json.dumps(canonicalize(config), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, kw_only=True)
class ExperimentResult:
    """One sweep cell's outcome, in the shape every ``run_one`` returns."""

    metrics: Mapping[str, float]
    fingerprint: str = ""
    seed: int = 0
    wall_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", dict(self.metrics))

    # --------------------------------------------------------------- builders

    @classmethod
    def from_summary(cls, summary: MetricsSummary, *, config: Any = None,
                     seed: int = 0, wall_s: float = 0.0,
                     fingerprint: str | None = None,
                     **extra_metrics: float) -> "ExperimentResult":
        """Wrap a network's :class:`MetricsSummary`; ``config`` (or an
        explicit ``fingerprint``) stamps the configuration identity."""
        metrics = dict(dataclasses.asdict(summary))
        metrics.update(extra_metrics)
        if fingerprint is None:
            fingerprint = config_fingerprint(config) if config is not None else ""
        return cls(metrics=metrics, fingerprint=fingerprint,
                   seed=int(seed), wall_s=wall_s)

    def to_summary(self) -> MetricsSummary:
        """The classic summary view (drops any non-summary metrics)."""
        fields = {f.name for f in dataclasses.fields(MetricsSummary)}
        return MetricsSummary(**{k: v for k, v in self.metrics.items()
                                 if k in fields})

    # ------------------------------------------------------------------ wire

    def to_dict(self) -> dict:
        return {
            "__kind__": "experiment_result",
            "metrics": dict(self.metrics),
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentResult":
        return cls(metrics=dict(payload["metrics"]),
                   fingerprint=str(payload.get("fingerprint", "")),
                   seed=int(payload.get("seed", 0)),
                   wall_s=float(payload.get("wall_s", 0.0)))

    # ---------------------------------------------------- deprecation shim

    def __getattr__(self, name: str):
        # Only consulted for attributes the dataclass doesn't define:
        # legacy summary-attribute access (result.delivery_ratio ...).
        metrics = object.__getattribute__(self, "metrics")
        if name in metrics:
            warnings.warn(
                f"reading .{name} off an ExperimentResult is deprecated; "
                f"use result.metrics[{name!r}] or result.to_summary()",
                DeprecationWarning, stacklevel=2)
            return metrics[name]
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r}")
