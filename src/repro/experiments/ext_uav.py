"""Extension experiment — SSAF and Routeless Routing over a 3-D UAV swarm.

The paper evaluates its protocols on flat terrains; UAV swarms are the
modern deployment where its core ideas bite hardest — no infrastructure, no
time to build routes, constant topology churn.  This sweep flies a fleet
through a 3-D deployment volume under :class:`~repro.topology.GaussMarkov3D`
mobility and compares SSAF flooding and Routeless Routing against the
counter-1 flooding baseline across the Gauss-Markov memory parameter α:

* **α = 0** — memoryless jitter: each tick an independent velocity draw,
  the harshest churn (random-walk-like thrash);
* **α → 1** — smooth coordinated flight: velocities persist, topology
  changes slowly and coherently.

Expected shape: counter-1 flooding is insensitive to α (it re-floods
everything anyway); SSAF's signal-strength elections and Routeless
Routing's per-hop gradients both prefer coherent motion, so their delivery
and cost curves should improve with α.

A ``virtual_force=True`` config runs the station-keeping variant instead:
no free flight, the :class:`~repro.topology.VirtualForceControl` relaxation
spreads the fleet toward its target spacing while traffic flows.

Campaign-ready: results flow through the cache, journal and observability
stack like every other experiment; ``repro campaign uav --quick`` runs a
smoke-sized sweep, ``--mobility NAME`` swaps the mobility model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    paper_scale,
    pick_flows,
    quick_scale,
)
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.stats.series import SweepSeries
from repro.topology.mobility import (
    GaussMarkov3D,
    GaussMarkovConfig,
    MobilityConfig,
    mobility_model,
)
from repro.topology.vforce import VirtualForceConfig, VirtualForceControl

__all__ = ["UavConfig", "campaign_spec", "run_uav", "run_one"]


@dataclass(frozen=True, kw_only=True)
class UavConfig:
    """Sweep grid for the 3-D UAV extension experiment."""
    n_nodes: int = 60
    terrain_m: float = 900.0
    #: Altitude extent of the deployment volume.
    depth_m: float = 200.0
    range_m: float = 250.0
    n_pairs: int = 3
    cbr_interval_s: float = 1.0
    duration_s: float = 20.0
    mean_speed_mps: float = 12.0
    #: The x axis: Gauss-Markov memory parameter per cell.
    alphas: tuple[float, ...] = (0.0, 0.5, 0.85)
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("counter1", "ssaf", "routeless")
    #: Station-keeping variant: virtual-force relaxation instead of free
    #: Gauss-Markov flight (α then only labels the cell).
    virtual_force: bool = False

    @classmethod
    def paper(cls) -> "UavConfig":
        return cls(n_nodes=100, duration_s=40.0,
                   alphas=(0.0, 0.25, 0.5, 0.75, 0.95), seeds=(1, 2, 3))

    @classmethod
    def quick(cls) -> "UavConfig":
        return cls(n_nodes=40, duration_s=8.0, n_pairs=2,
                   alphas=(0.0, 0.85), seeds=(1,))

    @classmethod
    def active(cls) -> "UavConfig":
        if quick_scale():
            return cls.quick()
        return cls.paper() if paper_scale() else cls()


def run_one(protocol: str, alpha: float, seed: int, config: UavConfig,
            obs=None, faults=None, mobility: str | None = None) -> ExperimentResult:
    started = time.perf_counter()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes,
        width_m=config.terrain_m,
        height_m=config.terrain_m,
        depth_m=config.depth_m,
        range_m=config.range_m,
        seed=seed,
    )
    net = build_protocol_network(protocol, scenario, obs=obs)
    flows = pick_flows(config.n_nodes, config.n_pairs,
                       RandomStreams(seed + 31415).stream("uav.flows"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}

    arena = scenario.arena
    if config.virtual_force:
        VirtualForceControl(
            net.ctx, net.channel, arena=arena,
            config=VirtualForceConfig(comm_range_m=config.range_m),
            frozen=endpoints,
        )
    else:
        model_cls = mobility_model(mobility) if mobility is not None \
            else GaussMarkov3D
        if issubclass(model_cls, GaussMarkov3D):
            model_cls(
                net.ctx, net.channel, arena=arena,
                config=GaussMarkovConfig(alpha=alpha,
                                         mean_speed_mps=config.mean_speed_mps),
                frozen=endpoints,
            )
        else:
            # A 2-D-native model over the 3-D arena: waypoints/headings
            # sample the full volume; α only labels the cell.
            model_cls(
                net.ctx, net.channel, arena=arena,
                config=MobilityConfig(
                    min_speed_mps=max(0.5, config.mean_speed_mps / 4),
                    max_speed_mps=config.mean_speed_mps),
                frozen=endpoints,
            )
    if faults is not None:
        from repro.faults import install_plan
        install_plan(net, faults, exempt=endpoints)
    attach_cbr(net, flows, interval_s=config.cbr_interval_s,
               stop_s=config.duration_s - 3.0)
    net.run(until=config.duration_s)
    altitudes = net.channel.positions[:, 2]
    return ExperimentResult.from_summary(
        net.summary(), config=config, seed=seed,
        wall_s=time.perf_counter() - started,
        mean_altitude_m=float(np.mean(altitudes)),
        max_altitude_m=float(np.max(altitudes)),
    )


@experiment(name="uav",
            description="Extension: 3-D UAV swarm under Gauss-Markov mobility",
            panels=("delivery_ratio", "avg_delay_s", "mac_packets"),
            x_label="Gauss-Markov memory alpha")
def campaign_spec(config: UavConfig | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else UavConfig.active()
    return CampaignSpec(name="uav", run_one=run_one,
                        protocols=config.protocols, xs=config.alphas,
                        seeds=config.seeds, config=config)


def run_uav(config: UavConfig | None = None,
            **campaign_kwargs) -> dict[str, SweepSeries]:
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"uav sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via the CLI
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_uav()
    series = list(results.values())
    for metric, label in (
        ("delivery_ratio", "Delivery Ratio"),
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("mac_packets", "Number of MAC Packets"),
    ):
        print(f"\n=== UAV 3-D: {label} vs Gauss-Markov alpha ===")
        print(format_table(series, metric, x_label="alpha"))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=label, x_label="Gauss-Markov memory alpha"))


if __name__ == "__main__":  # pragma: no cover
    main()
