"""Extension experiment — scalability with network size.

The paper's introduction motivates localized algorithms with scalability
("a futuristic but not unrealistic wireless sensor network consisting of
millions of tiny sensors").  This sweep grows the network at constant node
density and constant offered load, and reports how each protocol's total MAC
transmissions and delivery hold up.

Expected shape: flooding data (counter-1/SSAF) scales with network size per
packet (every node touches every packet) while the routing protocols scale
with route length (∝ √N at constant density); DSDV additionally pays a
background control cost that grows with N (its table dumps).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    large_scale,
    paper_scale,
    pick_flows,
)
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.stats.series import SweepSeries

__all__ = ["ScalingConfig", "campaign_spec", "run_scaling", "run_one"]

#: Node density matching the paper's Figure 3 (500 nodes / 4 km²).
DENSITY_PER_M2 = 125e-6


@dataclass(frozen=True, kw_only=True)
class ScalingConfig:
    """Sweep grid for the network-size scaling experiment."""
    node_counts: tuple[int, ...] = (50, 100, 200)
    n_pairs: int = 3
    range_m: float = 250.0
    cbr_interval_s: float = 1.0
    duration_s: float = 25.0
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("counter1", "routeless", "aodv")

    @classmethod
    def paper(cls) -> "ScalingConfig":
        return cls(node_counts=(100, 200, 350, 500), seeds=(1, 2, 3))

    @classmethod
    def large(cls) -> "ScalingConfig":
        """The 10,000-node cell the sparse link budget exists for.

        One protocol, one seed, a short horizon: the point is exercising
        the O(n·k) channel at the Ghaffari–Haeupler / Czumaj–Davies scale
        regime, not sweeping a grid.  Dense would need ~2.4 GB for the
        float64 matrices alone; sparse holds the link budget in tens of MB.
        Guarded behind ``repro campaign scaling --large`` (REPRO_LARGE_SCALE)
        so quick CI never pays for it.
        """
        return cls(node_counts=(2000, 10000), seeds=(1,),
                   protocols=("counter1",), duration_s=10.0,
                   cbr_interval_s=2.0, n_pairs=2)

    @classmethod
    def active(cls) -> "ScalingConfig":
        if large_scale():
            return cls.large()
        return cls.paper() if paper_scale() else cls()


def terrain_for(n_nodes: int) -> float:
    """Terrain side length keeping the paper's density."""
    return math.sqrt(n_nodes / DENSITY_PER_M2)


def run_one(protocol: str, n_nodes: int, seed: int, config: ScalingConfig,
            obs=None, faults=None) -> ExperimentResult:
    started = time.perf_counter()
    terrain = terrain_for(n_nodes)
    scenario = ScenarioConfig(
        n_nodes=n_nodes, width_m=terrain, height_m=terrain,
        range_m=config.range_m, seed=seed,
    )
    net = build_protocol_network(protocol, scenario, obs=obs)
    flows = pick_flows(n_nodes, config.n_pairs,
                       RandomStreams(seed + 1717).stream("scaling.flows"),
                       bidirectional=True)
    if faults is not None:
        from repro.faults import install_plan
        endpoints = {node for flow in flows for node in flow}
        install_plan(net, faults, exempt=endpoints)
    attach_cbr(net, flows, interval_s=config.cbr_interval_s,
               stop_s=config.duration_s - 3.0)
    net.run(until=config.duration_s)
    return ExperimentResult.from_summary(
        net.summary(), config=config, seed=seed,
        wall_s=time.perf_counter() - started)


@experiment(name="scaling",
            description="Extension: MAC cost and delivery vs network size "
                        "at constant density",
            panels=("mac_packets", "delivery_ratio", "avg_delay_s"),
            x_label="network size (nodes)")
def campaign_spec(config: ScalingConfig | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else ScalingConfig.active()
    return CampaignSpec(name="scaling", run_one=run_one,
                        protocols=config.protocols, xs=config.node_counts,
                        seeds=config.seeds, config=config)


def run_scaling(config: ScalingConfig | None = None,
                **campaign_kwargs) -> dict[str, SweepSeries]:
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"scaling sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_scaling()
    series = list(results.values())
    for metric, label in (
        ("mac_packets", "Number of MAC Packets"),
        ("delivery_ratio", "Delivery Ratio"),
        ("avg_delay_s", "End-to-End Delay (s)"),
    ):
        print(f"\n=== Extension: {label} vs Network Size ===")
        print(format_table(series, metric, x_label="nodes"))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=label, x_label="network size (nodes)"))


if __name__ == "__main__":  # pragma: no cover
    main()
