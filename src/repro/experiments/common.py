"""Scenario assembly shared by all experiments, examples and tests.

:func:`build_network` wires a complete stack for every node — transceiver,
CSMA MAC, one network-protocol entity — on a shared channel over a generated
topology, and returns a :class:`Network` handle exposing the simulator, the
metrics collector and every layer for inspection.

Protocol choice is a factory, so the same scenario runs under counter-1
flooding, SSAF, Routeless Routing, AODV or Gradient Routing with identical
placement, traffic and RNG streams (common random numbers: paired
comparisons differ only in the protocol).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.app.cbr import CbrConfig, CbrSource
from repro.mac.csma import CsmaMac, MacConfig
from repro.net.base import NetworkProtocol
from repro.obs.observe import Observability
from repro.phy.channel import Channel
from repro.phy.energy import EnergyMeter, EnergyModel
from repro.phy.propagation import FreeSpace, PropagationModel, range_to_threshold_dbm
from repro.phy.radio import RadioConfig, Transceiver
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer
from repro.stats.metrics import MetricsCollector
from repro.topology.arena import Arena
from repro.topology.placement import connected_uniform

__all__ = [
    "ScenarioConfig",
    "Network",
    "ProtocolFactory",
    "build_network",
    "build_protocol_network",
    "pick_flows",
    "attach_cbr",
    "paper_scale",
    "large_scale",
    "quick_scale",
    "PROTOCOLS",
]

#: ``(ctx, node_id, mac, metrics) -> NetworkProtocol``
ProtocolFactory = Callable[[SimContext, int, CsmaMac, MetricsCollector], NetworkProtocol]


def paper_scale() -> bool:
    """True when the REPRO_PAPER_SCALE env var asks for full-size runs."""
    return os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0", "false")


def large_scale() -> bool:
    """True when REPRO_LARGE_SCALE asks for the 10k-node scaling cell
    (``repro campaign scaling --large``); quick CI leaves it unset."""
    return os.environ.get("REPRO_LARGE_SCALE", "") not in ("", "0", "false")


def quick_scale() -> bool:
    """True when REPRO_QUICK asks for smoke-test-sized runs
    (``repro campaign NAME --quick``): fewer cells, fewer seeds, shorter
    durations — enough to exercise every code path, not enough to plot."""
    return os.environ.get("REPRO_QUICK", "") not in ("", "0", "false")


@dataclass(frozen=True, kw_only=True)
class ScenarioConfig:
    """One simulated deployment: terrain, density, range, propagation,
    reception model and seed.  Everything an experiment varies lives
    here; everything else is derived (e.g. the receive threshold from
    the requested transmission range)."""
    n_nodes: int = 100
    width_m: float = 1000.0
    height_m: float = 1000.0
    #: Altitude extent; ``None`` keeps the scenario 2-D, a value (even 0.0)
    #: makes positions ``(N, 3)`` — see :class:`repro.topology.Arena`.
    depth_m: Optional[float] = None
    range_m: float = 250.0
    seed: int = 1
    tx_power_dbm: float = 15.0
    propagation: PropagationModel = field(default_factory=FreeSpace)
    cs_margin_db: float = 6.0
    positions: Optional[np.ndarray] = None  # override the random placement
    with_energy: bool = False
    #: Use the SINR reception model instead of simple collisions.
    sinr_model: bool = False
    #: Per-link log-normal shadowing (dB std-dev); 0 disables.
    shadowing_sigma_db: float = 0.0
    #: Draw each link direction independently: creates unidirectional links.
    shadowing_asymmetric: bool = False
    #: Channel link-budget representation: ``"dense"``, ``"sparse"`` or
    #: ``"auto"`` (sparse above ~1k nodes; see :mod:`repro.phy.channel`).
    #: Both produce bit-identical results, so this is purely a
    #: speed/memory knob.
    link_budget: str = "auto"

    @property
    def arena(self) -> Arena:
        """The deployment box as an :class:`~repro.topology.Arena`."""
        return Arena(self.width_m, self.height_m, self.depth_m)

    def radio_config(self) -> RadioConfig:
        rx_threshold = range_to_threshold_dbm(
            self.propagation, self.tx_power_dbm, self.range_m
        )
        return RadioConfig(
            tx_power_dbm=self.tx_power_dbm,
            rx_threshold_dbm=rx_threshold,
            cs_margin_db=self.cs_margin_db,
            sinr_model=self.sinr_model,
        )


@dataclass
class Network:
    """Everything about one assembled simulation scenario."""

    ctx: SimContext
    scenario: ScenarioConfig
    positions: np.ndarray
    channel: Channel
    radios: list[Transceiver]
    macs: list[CsmaMac]
    protocols: list[NetworkProtocol]
    metrics: MetricsCollector
    energy: list[EnergyMeter] = field(default_factory=list)
    sources: list[CbrSource] = field(default_factory=list)
    #: Observability bundle when the scenario was built with one (also
    #: reachable as ``ctx.obs``); ``None`` means collection was off.
    obs: Observability | None = None

    @property
    def simulator(self) -> Simulator:
        return self.ctx.simulator

    def run(self, until: float) -> None:
        self.simulator.run(until=until)

    def summary(self):
        return self.metrics.summary(self.channel)

    @property
    def rx_threshold_dbm(self) -> float:
        return self.scenario.radio_config().rx_threshold_dbm


def build_network(
    protocol_factory: ProtocolFactory,
    scenario: ScenarioConfig,
    mac_config: MacConfig | None = None,
    tracer: Tracer | None = None,
    obs: Observability | None = None,
) -> Network:
    """Assemble the full stack for every node of the scenario."""
    streams = RandomStreams(scenario.seed)
    ctx = SimContext(
        simulator=Simulator(),
        streams=streams,
        tracer=tracer if tracer is not None else NullTracer(),
        obs=obs,
    )

    if scenario.positions is not None:
        positions = np.asarray(scenario.positions, dtype=float)
        if len(positions) != scenario.n_nodes:
            scenario = replace(scenario, n_nodes=len(positions))
    else:
        positions = connected_uniform(
            scenario.n_nodes,
            scenario.arena,
            range_m=scenario.range_m,
            rng=streams.stream("placement"),
        )

    radio_config = scenario.radio_config()
    channel = Channel(
        ctx,
        positions,
        scenario.propagation,
        tx_power_dbm=scenario.tx_power_dbm,
        reach_threshold_dbm=radio_config.cs_threshold_dbm,
        shadowing_sigma_db=scenario.shadowing_sigma_db,
        shadowing_asymmetric=scenario.shadowing_asymmetric,
        link_budget=scenario.link_budget,
    )
    mac_config = mac_config if mac_config is not None else MacConfig()
    metrics = MetricsCollector()

    radios: list[Transceiver] = []
    macs: list[CsmaMac] = []
    protocols: list[NetworkProtocol] = []
    meters: list[EnergyMeter] = []
    for node_id in range(len(positions)):
        meter = EnergyMeter(model=EnergyModel()) if scenario.with_energy else None
        radio = Transceiver(ctx, node_id, channel, radio_config, energy=meter)
        mac = CsmaMac(ctx, node_id, radio, mac_config)
        protocol = protocol_factory(ctx, node_id, mac, metrics)
        radios.append(radio)
        macs.append(mac)
        protocols.append(protocol)
        if meter is not None:
            meters.append(meter)

    return Network(
        ctx=ctx,
        scenario=scenario,
        positions=positions,
        channel=channel,
        radios=radios,
        macs=macs,
        protocols=protocols,
        metrics=metrics,
        energy=meters,
        obs=obs,
    )


#: Protocols runnable by name through :func:`build_protocol_network`.
PROTOCOLS = ("counter1", "ssaf", "blind", "routeless", "aodv", "gradient", "dsr", "dsdv", "geoflood")


def build_protocol_network(
    protocol: str,
    scenario: ScenarioConfig,
    tracer: Tracer | None = None,
    protocol_config=None,
    mac_config: MacConfig | None = None,
    obs: Observability | None = None,
) -> Network:
    """Assemble a network running the named protocol with its idiomatic MAC.

    SSAF pairs with the MAC *priority* queue (the paper couples them: short
    election backoffs also jump the intra-node queue); everything else uses
    FIFO.  ``protocol_config`` overrides the protocol's config object where
    one exists.
    """
    # Imported here: protocols sit above this module in the layering.
    from repro.net.aodv import Aodv
    from repro.net.dsdv import Dsdv
    from repro.net.dsr import Dsr
    from repro.net.flooding import SSAF, BlindFlooding, Counter1Flooding
    from repro.net.geoflood import LocationFlooding
    from repro.net.gradient import GradientRouting
    from repro.net.routeless import RoutelessRouting

    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")

    if mac_config is None:
        mac_config = MacConfig(priority_queue=(protocol in ("ssaf", "geoflood")))

    rx_threshold = scenario.radio_config().rx_threshold_dbm

    def factory(ctx, node_id, mac, metrics):
        if protocol == "counter1":
            return Counter1Flooding(ctx, node_id, mac, config=protocol_config,
                                    metrics=metrics)
        if protocol == "blind":
            return BlindFlooding(ctx, node_id, mac, config=protocol_config,
                                 metrics=metrics)
        if protocol == "ssaf":
            if protocol_config is not None:
                return SSAF(ctx, node_id, mac, config=protocol_config, metrics=metrics)
            return SSAF(ctx, node_id, mac, metrics=metrics,
                        rx_threshold_dbm=rx_threshold)
        if protocol == "routeless":
            return RoutelessRouting(ctx, node_id, mac, config=protocol_config,
                                    metrics=metrics)
        if protocol == "aodv":
            return Aodv(ctx, node_id, mac, config=protocol_config, metrics=metrics)
        if protocol == "dsr":
            return Dsr(ctx, node_id, mac, config=protocol_config, metrics=metrics)
        if protocol == "dsdv":
            return Dsdv(ctx, node_id, mac, config=protocol_config, metrics=metrics)
        if protocol == "geoflood":
            return LocationFlooding(ctx, node_id, mac, mac.radio.channel,
                                    config=protocol_config, metrics=metrics,
                                    range_m=scenario.range_m)
        return GradientRouting(ctx, node_id, mac, config=protocol_config,
                               metrics=metrics)

    return build_network(factory, scenario, mac_config=mac_config, tracer=tracer,
                         obs=obs)


def pick_flows(
    n_nodes: int,
    n_flows: int,
    rng: np.random.Generator,
    bidirectional: bool = False,
    distinct_endpoints: bool = True,
) -> list[tuple[int, int]]:
    """Random source→destination flows.

    ``bidirectional=True`` mirrors each pair (the Figures 3-4 traffic
    pattern); ``distinct_endpoints`` keeps every endpoint unique across flows
    so the Figure 4 exemption set ("all nodes but those that generate and
    receive CBR traffic") is well defined.
    """
    flows: list[tuple[int, int]] = []
    used: set[int] = set()
    attempts = 0
    while len(flows) < n_flows:
        attempts += 1
        if attempts > 10000:
            raise RuntimeError("could not pick enough distinct flows")
        src, dst = (int(v) for v in rng.choice(n_nodes, size=2, replace=False))
        if distinct_endpoints and (src in used or dst in used):
            continue
        flows.append((src, dst))
        used.update((src, dst))
    if bidirectional:
        flows = flows + [(dst, src) for src, dst in flows]
    return flows


def attach_cbr(
    network: Network,
    flows: Sequence[tuple[int, int]],
    interval_s: float,
    start_s: float = 0.0,
    stop_s: float | None = None,
    start_jitter_s: float | None = None,
) -> list[CbrSource]:
    """One CBR source per flow.  Jitter defaults to one interval so the
    sources spread over the cadence instead of phase-locking."""
    if start_jitter_s is None:
        start_jitter_s = interval_s
    config = CbrConfig(
        interval_s=interval_s,
        start_s=start_s,
        stop_s=stop_s,
        start_jitter_s=start_jitter_s,
    )
    sources = [
        CbrSource(network.ctx, network.protocols[src], dst, config)
        for src, dst in flows
    ]
    network.sources.extend(sources)
    return sources
