"""``repro profile`` — where does one cell's wall time go?

::

    python -m repro.experiments profile fig1 [--protocol ssaf] [--x 1.0]
                                             [--seed 1] [--interval 0.005]
                                             [--out PROFILE_hotspots.json]

Runs exactly one cell of the named experiment's campaign grid (the same
cell-selection flags as ``repro obs``) under the sampling profiler
(:class:`~repro.obs.profiler.StackSampler`), prints the per-subsystem
wall-time attribution (phy/mac/net/sim/…) plus the flat hotspot list, and
writes the machine-readable report next to ``BENCH_kernel.json`` — the
bench gate says *that* something regressed, this report says *where*.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]

#: Default report path, sibling of BENCH_kernel.json at the repo root.
DEFAULT_OUT = "PROFILE_hotspots.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments profile",
        description="Run one experiment cell under the sampling profiler "
                    "and attribute wall time to subsystems.",
    )
    parser.add_argument("experiment",
                        help="experiment name (fig1 fig3 fig4 mobility "
                             "scaling)")
    parser.add_argument("--protocol", default=None,
                        help="protocol to run (default: experiment's first)")
    parser.add_argument("--x", type=float, default=None, metavar="X",
                        help="swept x value; must be on the experiment's "
                             "grid (default: first)")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed; must be one of the experiment's grid "
                             "seeds (default: first)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full-scale grid (slow)")
    parser.add_argument("--large", action="store_true",
                        help="use the large-scale grid (scaling: 10k-node "
                             "sparse-channel cell)")
    parser.add_argument("--interval", type=float, default=0.005,
                        metavar="SEC",
                        help="sampling interval (default %(default)s)")
    parser.add_argument("--top", type=int, default=30, metavar="N",
                        help="hotspot functions to keep (default %(default)s)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the cell N times under one sampler for "
                             "more samples on fast cells (default 1)")
    parser.add_argument("--out", metavar="PATH", default=DEFAULT_OUT,
                        help="machine-readable report path "
                             "(default %(default)s)")
    parser.add_argument("--no-out", action="store_true",
                        help="print the report but write nothing")
    return parser


def _run_profiled(args):
    """Resolve the cell and run it ``--repeat`` times under one sampler;
    returns ``(report, label)``."""
    import os

    from repro.experiments.cli import _campaign_spec
    from repro.experiments.obs_cli import _pick
    from repro.obs.profiler import StackSampler

    if args.paper_scale:
        os.environ["REPRO_PAPER_SCALE"] = "1"
    if args.large:
        os.environ["REPRO_LARGE_SCALE"] = "1"
    spec = _campaign_spec(args.experiment)
    if spec is None:
        raise SystemExit(f"error: unknown experiment {args.experiment!r} "
                         "(choose from: fig1 fig3 fig4 mobility scaling)")

    protocol = _pick(args.protocol, spec.protocols, "--protocol")
    x = _pick(args.x, spec.xs, "--x", convert=float)
    seed = _pick(args.seed, spec.seeds, "--seed", convert=int)

    sampler = StackSampler(interval_s=args.interval)
    with sampler:
        for _ in range(max(1, args.repeat)):
            spec.run_one(protocol, x, seed, spec.config,
                         **dict(spec.extra_kwargs))
    label = f"{spec.name}/{protocol}/x={x:g}/seed={seed}"
    return sampler.report(top=args.top), label


def _format_report(report: dict, label: str) -> str:
    lines = [f"profiled cell: {label}",
             f"samples: {report['samples']} over {report['elapsed_s']:.2f}s "
             f"(interval {report['interval_s'] * 1e3:g} ms, "
             f"missed {report['missed']})"]
    lines.append("\nwall time by subsystem:")
    for name, entry in report["subsystems"].items():
        bar = "#" * round(40 * entry["fraction"])
        lines.append(f"  {name:<12} {entry['fraction']:>6.1%} "
                     f"({entry['samples']:>5})  {bar}")
    if not report["subsystems"]:
        lines.append("  (no samples — cell too fast; try --repeat or a "
                     "smaller --interval)")
    lines.append("\nhottest functions:")
    for spot in report["hotspots"][:15]:
        lines.append(f"  {spot['fraction']:>6.1%}  [{spot['subsystem']}] "
                     f"{spot['function']}")
    if not report["hotspots"]:
        lines.append("  (none)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(
        list(sys.argv[1:]) if argv is None else list(argv))
    try:
        report, label = _run_profiled(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise
    print(_format_report(report, label))
    if not args.no_out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"cell": label, **report}, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
