"""The experiment registry: one decorator instead of an if/elif chain.

The CLI used to hard-code two parallel structures — an ``EXPERIMENTS`` dict
of runners/panels and an if/elif ladder mapping names to ``campaign_spec``
imports — so adding an experiment meant editing the CLI in two places.  Now
each experiment module *registers itself*::

    @experiment(name="fig3",
                description="Routeless Routing vs AODV",
                panels=("avg_delay_s", "delivery_ratio", "mac_packets",
                        "avg_hops"),
                x_label="communicating pairs")
    def campaign_spec(config=None):
        ...

and the CLI's subcommands, ``repro list`` and campaign resolution all read
:func:`get`/:func:`names` — a new experiment (the chaos runner, say) plugs
in with zero CLI edits.  Experiments that are scripts rather than sweeps
(fig2's maps, the chaos gate) register with :func:`register_script`.

Registration is lazy: :func:`load_builtins` imports the experiment modules
on first registry access, so importing :mod:`repro.experiments.cli` stays
cheap and module import order cannot matter.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["ExperimentDef", "experiment", "register_script", "get", "names",
           "campaign_capable", "load_builtins", "unregister"]


@dataclass(frozen=True, kw_only=True)
class ExperimentDef:
    """Everything the CLI needs to know about one registered experiment."""

    name: str
    description: str = ""
    #: Metric panels the figure renders, in order.
    panels: tuple = ()
    x_label: str = "x"
    #: ``campaign_spec(config=None) -> CampaignSpec`` for sweep experiments.
    spec: Optional[Callable] = None
    #: ``main(argv) -> int | None`` for script experiments (fig2, chaos).
    script: Optional[Callable] = None
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def is_campaign(self) -> bool:
        return self.spec is not None

    def build_spec(self, config=None):
        if self.spec is None:
            raise TypeError(f"experiment {self.name!r} is a script, not a "
                            "campaign sweep")
        return self.spec(config) if config is not None else self.spec()

    def run(self, **campaign_kwargs) -> dict:
        """Run the full sweep and return ``{protocol: SweepSeries}``
        (campaign experiments only); quarantined cells raise."""
        from repro.campaign import run_spec
        outcome = run_spec(self.build_spec(), **campaign_kwargs)
        if outcome.quarantined:
            raise RuntimeError(
                f"{self.name} sweep quarantined cells: "
                f"{outcome.summary['quarantined_cells']}")
        return outcome.results


_REGISTRY: dict[str, ExperimentDef] = {}

#: Modules whose import registers the built-in experiments.
_BUILTIN_MODULES = (
    "repro.experiments.fig1_ssaf",
    "repro.experiments.fig2_congestion",
    "repro.experiments.fig3_rr_vs_aodv",
    "repro.experiments.fig4_failures",
    "repro.experiments.ext_mobility",
    "repro.experiments.ext_scaling",
    "repro.experiments.ext_uav",
    "repro.experiments.chaos",
)
_builtins_loaded = False


def load_builtins() -> None:
    """Import every built-in experiment module (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def _register(definition: ExperimentDef) -> None:
    existing = _REGISTRY.get(definition.name)
    if existing is not None and existing != definition:
        raise ValueError(f"experiment {definition.name!r} already registered")
    _REGISTRY[definition.name] = definition


def experiment(*, name: str, description: str = "", panels: tuple = (),
               x_label: str = "x") -> Callable:
    """Decorator for an experiment module's ``campaign_spec`` builder."""

    def decorate(spec_builder: Callable) -> Callable:
        _register(ExperimentDef(name=name, description=description,
                                panels=tuple(panels), x_label=x_label,
                                spec=spec_builder))
        return spec_builder

    return decorate


def register_script(*, name: str, description: str = "") -> Callable:
    """Decorator for script experiments — a ``main(argv) -> int | None``."""

    def decorate(main: Callable) -> Callable:
        _register(ExperimentDef(name=name, description=description,
                                script=main))
        return main

    return decorate


def unregister(name: str) -> None:
    """Remove a registered experiment.  For test plug-ins that must not
    outlive their suite; built-ins re-register on the next interpreter."""
    _REGISTRY.pop(name, None)


def get(name: str) -> Optional[ExperimentDef]:
    """The named experiment, or None.  Loads built-ins on first use."""
    load_builtins()
    return _REGISTRY.get(name)


def names() -> list[str]:
    """Every registered experiment name, sorted."""
    load_builtins()
    return sorted(_REGISTRY)


def campaign_capable() -> list[str]:
    """Names of experiments that run as campaign sweeps, sorted."""
    load_builtins()
    return sorted(n for n, d in _REGISTRY.items() if d.is_campaign)
