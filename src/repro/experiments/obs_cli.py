"""``repro obs`` — observed single-cell runs: summaries and timeline export.

::

    python -m repro.experiments obs summary fig1 [--protocol ssaf] [--x 1.0]
                                                 [--seed 1] [--json out.json]
    python -m repro.experiments obs summary --campaign-dir campaigns/fig1
    python -m repro.experiments obs export fig1 --chrome timeline.json
                                                [--jsonl timeline.jsonl]

``summary --campaign-dir`` reads a finished (or running) campaign's
persisted ``summary.json`` instead of executing anything: settlement
counts, cell wall-time percentiles, and — for distributed runs — the
backend's per-host worker/steal/heartbeat counters.

The cell forms run exactly one cell of the named experiment's campaign grid
(defaults: first protocol, first x, first seed) with a fresh
:class:`~repro.obs.observe.Observability` attached, then either print the
run report (top drop reasons, per-frame-kind transmission breakdown,
election-win backoff histograms) or export the packet-lifecycle ledger as
Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``)
and/or flat JSONL.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser", "run_observed_cell"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments obs",
        description="Run one observed experiment cell: summarize it or "
                    "export its packet-lifecycle timeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cell_args(p: argparse.ArgumentParser, *,
                      optional_experiment: bool = False) -> None:
        if optional_experiment:
            p.add_argument("experiment", nargs="?", default=None,
                           help="experiment name (fig1 fig3 fig4 mobility "
                                "scaling); omit with --campaign-dir")
        else:
            p.add_argument("experiment",
                           help="experiment name (fig1 fig3 fig4 mobility "
                                "scaling)")
        p.add_argument("--protocol", default=None,
                       help="protocol to run (default: experiment's first)")
        p.add_argument("--x", type=float, default=None, metavar="X",
                       help="swept x value; must be one of the experiment's "
                            "grid points (default: first)")
        p.add_argument("--seed", type=int, default=None,
                       help="seed; must be one of the experiment's grid "
                            "seeds (default: first)")
        p.add_argument("--paper-scale", action="store_true",
                       help="use the paper's full-scale grid (slow)")

    p_summary = sub.add_parser(
        "summary", help="print the observed-run report")
    add_cell_args(p_summary, optional_experiment=True)
    p_summary.add_argument("--json", metavar="PATH",
                           help="also write the summary dict as JSON")
    p_summary.add_argument("--campaign-dir", metavar="DIR", default=None,
                           help="summarize a campaign directory's persisted "
                                "summary.json (incl. distributed "
                                "steal/heartbeat counters) instead of "
                                "running a cell")

    p_export = sub.add_parser(
        "export", help="export the packet-lifecycle timeline")
    add_cell_args(p_export)
    p_export.add_argument("--chrome", metavar="PATH",
                          help="write Chrome trace-event JSON "
                               "(Perfetto-loadable)")
    p_export.add_argument("--jsonl", metavar="PATH",
                          help="write the ledger as flat JSONL")
    return parser


def _pick(value, grid, label: str, convert=lambda v: v):
    """Resolve a --protocol/--x/--seed flag against the experiment grid."""
    if value is None:
        return grid[0]
    for candidate in grid:
        if convert(candidate) == convert(value):
            return candidate
    choices = " ".join(str(g) for g in grid)
    raise SystemExit(f"error: {label} {value!r} is not on the grid "
                     f"(choose from: {choices})")


def run_observed_cell(args):
    """Run the selected cell with observability on; returns
    ``(obs, cell_summary, label)``."""
    import os

    from repro.experiments.cli import _campaign_spec
    from repro.obs.observe import Observability

    if args.paper_scale:
        os.environ["REPRO_PAPER_SCALE"] = "1"
    spec = _campaign_spec(args.experiment)
    if spec is None:
        raise SystemExit(f"error: unknown experiment {args.experiment!r} "
                         "(choose from: fig1 fig3 fig4 mobility scaling)")

    protocol = _pick(args.protocol, spec.protocols, "--protocol")
    x = _pick(args.x, spec.xs, "--x", convert=float)
    seed = _pick(args.seed, spec.seeds, "--seed", convert=int)

    obs = Observability()
    cell_summary = spec.run_one(protocol, x, seed, spec.config, obs=obs,
                                **dict(spec.extra_kwargs))
    label = f"{spec.name}/{protocol}/x={x:g}/seed={seed}"
    return obs, cell_summary, label


def _campaign_summary(args) -> int:
    """``obs summary --campaign-dir``: print the persisted campaign summary."""
    from repro.campaign.journal import CampaignJournal
    from repro.obs.summary import format_campaign_summary

    journal = CampaignJournal(args.campaign_dir)
    summary = journal.read_summary()
    if summary is None:
        print(f"error: no summary.json under {args.campaign_dir!r} — "
              "has the campaign run (or finished a sweep) there?",
              file=sys.stderr)
        return 2
    print(f"campaign dir: {args.campaign_dir}\n")
    print(format_campaign_summary(summary))
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, default=str)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "summary" and getattr(args, "campaign_dir", None):
        return _campaign_summary(args)
    if args.command == "summary" and args.experiment is None:
        print("error: summary needs an experiment name or --campaign-dir DIR",
              file=sys.stderr)
        return 2

    try:
        obs, _cell_summary, label = run_observed_cell(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise

    if args.command == "summary":
        from repro.obs.summary import format_summary, summarize
        report = summarize(obs)
        print(f"observed cell: {label}\n")
        print(format_summary(report))
        if args.json:
            import json
            with open(args.json, "w") as handle:
                json.dump({"cell": label, **report}, handle, indent=2)
                handle.write("\n")
            print(f"\nwrote {args.json}")
        return 0

    # export
    if not args.chrome and not args.jsonl:
        print("error: export needs --chrome PATH and/or --jsonl PATH",
              file=sys.stderr)
        return 2
    from repro.obs.timeline import write_chrome_trace, write_jsonl
    print(f"observed cell: {label} "
          f"({len(obs.ledger)} ledger entries)")
    if args.chrome:
        write_chrome_trace(obs.ledger, args.chrome)
        print(f"wrote {args.chrome}")
    if args.jsonl:
        write_jsonl(obs.ledger, args.jsonl)
        print(f"wrote {args.jsonl}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
