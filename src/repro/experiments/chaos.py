"""Chaos smoke gate — small cells under a mixed fault plan, with teeth.

Not a paper figure: this is the CI experiment that keeps the fault-injection
subsystem honest.  It runs one small fig1 (flooding) cell and one small fig3
(routing) cell per protocol under :func:`~repro.faults.plan.mixed_chaos_plan`
— duty-cycled outages, a mid-run crash with recovery, degraded links and
packet corruption all at once — and then asserts two things:

* **invariants** — the end-of-run ledger properties in
  :mod:`repro.faults.invariants` hold (no traffic through an OFF radio,
  ledger conservation, ≤1 uncancelled election winner per hop);
* **replay** — running the identical cell a second time from the same seed
  produces a bit-identical :class:`~repro.experiments.result.ExperimentResult`
  and the identical fault-event sequence, the FaultPlan determinism
  guarantee.

Exit status is non-zero on any violation, so CI can gate on
``python -m repro.experiments chaos``.
"""

from __future__ import annotations

import sys

from repro.experiments.registry import register_script

__all__ = ["main", "run_chaos"]


def _fault_ledger(obs) -> list[tuple]:
    """The run's fault events as comparable tuples."""
    return [(e.time, e.node, e.detail.get("kind"), e.detail.get("action"))
            for e in obs.ledger.entries if e.layer == "fault"]


def _chaos_cells():
    """(label, callable(obs) -> ExperimentResult, single_forwarder) cells."""
    from repro.experiments.fig1_ssaf import Fig1Config
    from repro.experiments.fig1_ssaf import run_one as fig1_run_one
    from repro.experiments.fig3_rr_vs_aodv import Fig3Config
    from repro.experiments.fig3_rr_vs_aodv import run_one as fig3_run_one
    from repro.faults import mixed_chaos_plan

    fig1_cfg = Fig1Config(n_nodes=30, terrain_m=550.0, n_connections=3,
                          duration_s=8.0)
    fig3_cfg = Fig3Config(n_nodes=40, terrain_m=620.0, duration_s=10.0)
    fig1_plan = mixed_chaos_plan(fig1_cfg.n_nodes)
    fig3_plan = mixed_chaos_plan(fig3_cfg.n_nodes)

    cells = []
    for protocol in ("counter1", "ssaf"):
        cells.append((
            f"fig1/{protocol}",
            lambda obs, p=protocol: fig1_run_one(
                p, 0.5, 1, fig1_cfg, obs=obs, faults=fig1_plan),
            # Flooding forwards from many nodes by design.
            False,
        ))
    for protocol in ("aodv", "routeless"):
        cells.append((
            f"fig3/{protocol}",
            lambda obs, p=protocol: fig3_run_one(
                p, 2, 1, fig3_cfg, obs=obs, faults=fig3_plan),
            # Routeless retransmits on election timeouts; only AODV's
            # unicast chains promise a single forwarder per hop.
            protocol == "aodv",
        ))
    return cells


def run_chaos(verbose: bool = True) -> dict:
    """Run every chaos cell; returns a report dict (see keys below)."""
    from repro.faults.invariants import check_invariants
    from repro.obs.observe import Observability

    report = {"cells": [], "violations": 0, "replay_mismatches": 0}
    for label, run, single_forwarder in _chaos_cells():
        obs = Observability()
        result = run(obs)
        violations = check_invariants(obs, single_forwarder=single_forwarder)

        obs2 = Observability()
        result2 = run(obs2)
        fault_events = _fault_ledger(obs)
        replay_ok = (result == result2
                     and fault_events == _fault_ledger(obs2))

        cell = {
            "cell": label,
            "metrics": dict(result.metrics),
            "fault_events": len(fault_events),
            "violations": [f"{v.invariant}: {v.message}" for v in violations],
            "replay_ok": replay_ok,
        }
        report["cells"].append(cell)
        report["violations"] += len(violations)
        report["replay_mismatches"] += 0 if replay_ok else 1
        if verbose:
            status = "ok" if not violations and replay_ok else "FAIL"
            print(f"[chaos] {label:<16} {status}  "
                  f"delivery={result.metrics['delivery_ratio']:.2f}  "
                  f"fault_events={len(fault_events)}  "
                  f"violations={len(violations)}  "
                  f"replay={'bit-identical' if replay_ok else 'MISMATCH'}")
            for line in cell["violations"]:
                print(f"[chaos]   violation: {line}", file=sys.stderr)
    report["ok"] = (report["violations"] == 0
                    and report["replay_mismatches"] == 0)
    return report


@register_script(name="chaos",
                 description="Chaos smoke gate: mixed fault plan on small "
                             "fig1+fig3 cells, invariant + replay checks")
def main(argv: list[str] | None = None) -> int:
    report = run_chaos()
    if report["ok"]:
        print(f"[chaos] all {len(report['cells'])} cells passed "
              "(invariants hold, replays bit-identical)")
        return 0
    print(f"[chaos] FAILED: {report['violations']} invariant violations, "
          f"{report['replay_mismatches']} replay mismatches", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
