"""Command-line entry point for the experiments.

::

    python -m repro.experiments fig1 [--paper-scale] [--csv out.csv] [--json out.json]
    python -m repro.experiments fig2
    python -m repro.experiments fig3 --workers 4 --cache-dir ~/.cache/repro
    python -m repro.experiments fig4 --campaign-dir campaigns/fig4 --resume
    python -m repro.experiments mobility
    python -m repro.experiments scaling
    python -m repro.experiments chaos
    python -m repro.experiments campaign fig3 --workers 8 --summary-json fig3.telemetry.json
    python -m repro.experiments campaign fig1 --faults plan.json
    python -m repro.experiments bench --quick
    python -m repro.experiments obs summary fig1 --protocol ssaf
    python -m repro.experiments obs export fig1 --chrome timeline.json
    python -m repro.experiments profile fig1 --protocol ssaf --repeat 3
    python -m repro.experiments serve --port 8750 --log-level info
    python -m repro.experiments query fig1 --protocol ssaf -x 1.0 --seed 1
    python -m repro.experiments cache stats
    python -m repro.experiments cache gc --older-than 7d
    python -m repro.experiments campaign fig1 --backend ssh --hosts hosts.txt --resume
    python -m repro.experiments campaign fig1 --backend job-array --shards 16
    python -m repro.experiments hosts check --hosts hosts.txt --shared-dir campaigns
    python -m repro.experiments list

The ``serve`` form starts the long-lived result-serving daemon (HTTP/JSON
+ SSE over the campaign cache — see docs/SERVING.md), ``query`` is its
client, and ``cache`` inspects/prunes the content-addressed result store
both campaigns and the daemon share.

Experiments come from :mod:`repro.experiments.registry` — each experiment
module registers its own ``campaign_spec`` (or script entry point) with the
``@experiment`` / ``@register_script`` decorators, and the subcommand
choices, ``list`` output and campaign resolution here all read the registry.
Adding an experiment requires zero CLI edits.

Each figure command runs the sweep at the reduced default scale (or the
paper's full parameters with ``--paper-scale``), prints the same panels the
benchmark harness produces, and optionally exports the raw series.

The ``bench`` form runs the hot-path microbenchmarks plus a small
end-to-end fig1 cell, writes ``BENCH_kernel.json`` (op/s, wall time,
events/sec, machine metadata) and exits non-zero when a benchmark regresses
past the configurable threshold against the previous snapshot — see
:mod:`repro.experiments.bench`.

The ``campaign`` form runs the named experiment as a *durable campaign*: a
content-addressed result cache (``--cache-dir``, default
``campaigns/cache``), a per-campaign journal + manifest (``--campaign-dir``,
default ``campaigns/<name>``) that makes a killed run resumable with
``--resume``, per-cell ``--timeout`` and ``--retries`` fault tolerance, and
live telemetry on stderr.  The same ``--cache-dir/--no-cache/--resume``
flags work directly on the fig commands too.

``--faults PLAN.json`` injects a :class:`~repro.faults.plan.FaultPlan` into
every cell of a campaign (the plan joins the cell's content address, so
faulted and fault-free results never collide in the cache).

``--backend`` picks the execution backend for campaign cells:
``local-pool`` (default, in-process pool), ``ssh`` (multi-host workers
pulling from a shared spool via expiring leases — ``--hosts``,
``--lease-ttl``), or ``job-array`` (emit sharded manifests + SLURM/PBS
submit scripts — ``--shards``, ``--dist-wait``).  ``hosts check``
preflights a hosts file.  See docs/DISTRIBUTED.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import warnings

__all__ = ["main", "EXPERIMENTS"]


class _ExperimentsTable(dict):
    """Deprecated mutable view of the registry's campaign experiments.

    Reads fall through to the live registry, so newly registered
    experiments appear without any CLI edit; item assignment (the old
    ``cli.EXPERIMENTS[name] = (runner, …)`` override pattern) shadows the
    registry entry, and ``main`` honours the shadow on the bare sweep path.
    """

    @staticmethod
    def _registry_entry(name):
        from repro.experiments import registry

        definition = registry.get(name)
        if definition is None or not definition.is_campaign:
            return None
        return (definition.run, definition.panels, definition.x_label)

    def __missing__(self, name):
        entry = self._registry_entry(name)
        if entry is None:
            raise KeyError(name)
        return entry

    def __contains__(self, name):
        return (dict.__contains__(self, name)
                or self._registry_entry(name) is not None)

    def __iter__(self):
        from repro.experiments import registry

        names = dict.fromkeys(registry.campaign_capable())
        names.update(dict.fromkeys(dict.keys(self)))
        return iter(names)

    def __len__(self):
        return sum(1 for _ in self)

    def keys(self):
        return list(self)

    def values(self):
        return [self[name] for name in self]

    def items(self):
        return [(name, self[name]) for name in self]


_EXPERIMENTS = _ExperimentsTable()


def __getattr__(name: str):
    # Deprecation shim: the old module-level EXPERIMENTS table, now a live
    # view of the registry.  `cli.EXPERIMENTS[...]`, `name in EXPERIMENTS`
    # and test-time item overrides keep working; new code should use
    # repro.experiments.registry.
    if name == "EXPERIMENTS":
        warnings.warn(
            "repro.experiments.cli.EXPERIMENTS is deprecated; use "
            "repro.experiments.registry (get/names/campaign_capable)",
            DeprecationWarning, stacklevel=2)
        return _EXPERIMENTS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_parser() -> argparse.ArgumentParser:
    from repro.experiments import registry

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Rerun the paper's evaluation figures and the extensions.",
    )
    parser.add_argument("experiment",
                        choices=sorted(registry.names()
                                       + ["bench", "campaign", "list"]),
                        help="which experiment to run, 'campaign <exp>', or "
                             "'bench'")
    parser.add_argument("target", nargs="?", default=None,
                        help="experiment name for the campaign subcommand")
    parser.add_argument("--paper-scale", action="store_true",
                        help="run at the paper's full scale (slow)")
    parser.add_argument("--quick", action="store_true",
                        help="run at smoke-test scale (fewer cells, fewer "
                             "seeds, shorter durations — for CI)")
    parser.add_argument("--mobility", metavar="NAME", default=None,
                        help="override the sweep's mobility model "
                             "(rwp, rwalk, gauss_markov_3d, or any "
                             "registered name; joins the cells' cache keys)")
    parser.add_argument("--large", action="store_true",
                        help="run the large-scale grid (scaling: a "
                             "10,000-node cell on the sparse link budget; "
                             "skipped in quick CI)")
    parser.add_argument("--csv", metavar="PATH",
                        help="export the swept series as CSV")
    parser.add_argument("--json", metavar="PATH",
                        help="export the swept series as JSON")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run sweep cells across N processes (default 1)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(campaign default: campaigns/cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--campaign-dir", metavar="DIR", default=None,
                        help="journal/manifest directory "
                             "(campaign default: campaigns/<name>)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed campaign: re-execute only cells "
                             "missing from the journal")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-cell wall-clock timeout (needs --workers > 1)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries per failing cell before quarantine "
                             "(default 2)")
    parser.add_argument("--observe", action="store_true",
                        help="collect packet-lifecycle metrics in executed "
                             "cells and fold them into the campaign summary")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject this FaultPlan into every sweep cell "
                             "(see docs/FAULTS.md)")
    parser.add_argument("--backend", default=None,
                        choices=("local-pool", "ssh", "job-array"),
                        help="execution backend for campaign cells "
                             "(default local-pool; see docs/DISTRIBUTED.md)")
    parser.add_argument("--hosts", metavar="FILE", default=None,
                        help="hosts file for --backend ssh (host workers=N "
                             "per line; 'local' runs agents without ssh)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="SEC",
                        help="work-lease TTL: a worker silent this long has "
                             "its cell stolen by a peer (default "
                             "%(default)s)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard count for --backend job-array "
                             "(default: one per ~500 cells)")
    parser.add_argument("--dist-wait", action="store_true",
                        help="job-array: stay up and fold results as "
                             "externally-run shards settle them")
    parser.add_argument("--summary-json", metavar="PATH",
                        help="write the campaign telemetry summary as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    parser.add_argument("--log-level", metavar="LEVEL", default="off",
                        choices=("debug", "info", "warning", "error", "off"),
                        help="enable structured campaign logs at this "
                             "threshold (default %(default)s)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured logs as JSON lines")
    return parser


def _campaign_spec(name: str):
    """The experiment's :class:`~repro.campaign.CampaignSpec`, or None."""
    from repro.experiments import registry

    definition = registry.get(name)
    if definition is None or not definition.is_campaign:
        return None
    return definition.build_spec()


def _load_fault_plan(args):
    """The FaultPlan named by ``--faults``, or None."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.faults import FaultPlan
    return FaultPlan.load(args.faults)


def _with_faults(spec, plan):
    """The spec with the plan joined to every cell (and its cache keys)."""
    if plan is None:
        return spec
    return dataclasses.replace(
        spec, extra_kwargs={**dict(spec.extra_kwargs), "faults": plan})


def _with_mobility(spec, mobility):
    """The spec with a mobility-model override joined to every cell (and
    its cache keys) — sweeps whose ``run_one`` takes ``mobility=``."""
    if mobility is None:
        return spec
    from repro.topology.mobility import mobility_model
    mobility_model(mobility)  # fail fast on unknown names
    return dataclasses.replace(
        spec, extra_kwargs={**dict(spec.extra_kwargs), "mobility": mobility})


def _panel_layout(name: str) -> tuple[tuple, str]:
    from repro.experiments import registry
    definition = registry.get(name)
    if definition is None:
        return ("delivery_ratio",), "x"
    return definition.panels, definition.x_label


def _print_panels(name: str, results: dict) -> None:
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    metrics, x_label = _panel_layout(name)
    series = list(results.values())
    for metric in metrics:
        print(f"\n=== {name}: {metric} ===")
        print(format_table(series, metric, x_label=x_label))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=metric, x_label=x_label))


def _export(results: dict, args) -> None:
    if args.csv:
        from repro.stats.export import write_csv
        write_csv(results, args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        from repro.stats.export import write_json
        write_json(results, args.json)
        print(f"wrote {args.json}")


def _dist_kwargs(args) -> dict:
    """``backend``/``dist_options`` keyword arguments from the CLI flags."""
    backend = getattr(args, "backend", None)
    if backend is None or backend == "local-pool":
        return {}
    from repro.dist import DistOptions
    return {
        "backend": backend,
        "dist_options": DistOptions(
            hosts_file=getattr(args, "hosts", None),
            lease_ttl_s=getattr(args, "lease_ttl", 30.0),
            shards=getattr(args, "shards", None),
            wait=getattr(args, "dist_wait", False),
        ),
    }


def _run_campaign_command(name: str, args) -> int:
    from repro.campaign import run_spec
    from repro.campaign.journal import ManifestMismatch
    from repro.experiments import registry

    spec = _campaign_spec(name)
    if spec is None:
        capable = " ".join(registry.campaign_capable())
        print(f"'{name}' cannot run as a campaign "
              f"(choose from: {capable})",
              file=sys.stderr)
        return 2
    spec = _with_faults(spec, _load_fault_plan(args))
    spec = _with_mobility(spec, getattr(args, "mobility", None))

    campaign_dir = args.campaign_dir or os.path.join("campaigns", name)
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or os.path.join("campaigns", "cache"))
    progress = None
    if not args.quiet:
        def progress(event):
            print(str(event), file=sys.stderr)

    try:
        outcome = run_spec(
            spec,
            cache_dir=cache_dir,
            campaign_dir=campaign_dir,
            resume=args.resume,
            workers=args.workers,
            timeout_s=args.timeout,
            max_retries=args.retries,
            observe=args.observe,
            progress=progress,
            **_dist_kwargs(args),
        )
    except ManifestMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dist = outcome.summary.get("dist")
    if dist and dist.get("pending"):
        print(f"\nspooled {dist['cells_spooled']} cells into "
              f"{dist['shards']} shard(s) under {dist['spool']}")
        for script in dist.get("scripts", ()):
            print(f"  submit: {script}")
        print("after the array completes, re-run this command with "
              "--resume to fold the results")
        return 0
    _print_panels(name, outcome.results)
    _report_campaign(outcome, args)
    _export(outcome.results, args)
    return 0


def _report_campaign(outcome, args) -> None:
    summary = outcome.summary
    print(f"\n--- campaign summary ---")
    print(f"cells: {summary['completed']}/{summary['total_cells']} "
          f"(executed {summary['executed']}, cache hits "
          f"{summary['cache_hits']}, resumed {summary['resumed_from_journal']})")
    print(f"cache hit ratio: {summary['cache_hit_ratio']:.0%}  "
          f"throughput: {summary['cells_per_sec']:.2f} cells/s  "
          f"elapsed: {summary['elapsed_s']:.1f}s  "
          f"retries: {summary['retries']}")
    dist = summary.get("dist")
    if dist and not dist.get("pending"):
        print(f"dist[{dist.get('backend', '?')}]: "
              f"{dist.get('workers_launched', dist.get('workers', 0))} "
              f"workers, {dist.get('workers_died', 0)} died, "
              f"{dist.get('steals', 0)} steals, "
              f"{dist.get('heartbeats', 0)} heartbeats"
              + (", inline fallback" if dist.get("inline_fallback") else ""))
    obs = summary.get("obs")
    if obs is not None:
        drops = obs["metrics"].get("repro_drops_total", {}).get("samples", {})
        total_drops = int(sum(drops.values())) if drops else 0
        print(f"observed cells: {obs['cells_observed']}  "
              f"drops recorded: {total_drops} "
              f"(see 'obs' in --summary-json for the full registry)")
    for cell in summary["quarantined_cells"]:
        print(f"QUARANTINED {cell['protocol']}/x={cell['x']:g}/"
              f"seed={cell['seed']} after {cell['attempts']} attempts: "
              f"{cell['error']}", file=sys.stderr)
    if args.summary_json:
        from repro.stats.export import write_campaign_summary
        write_campaign_summary(summary, args.summary_json)
        print(f"wrote {args.summary_json}")


def _list_experiments() -> int:
    from repro.experiments import registry

    print("available experiments:")
    for name in registry.names():
        definition = registry.get(name)
        kind = "campaign" if definition.is_campaign else "script"
        desc = f"  — {definition.description}" if definition.description else ""
        print(f"  {name:<10} [{kind}]{desc}")
    print(f"campaign-capable: {' '.join(registry.campaign_capable())} "
          "(python -m repro.experiments campaign <name> [--faults PLAN.json])")
    print("benchmarks: python -m repro.experiments bench "
          "[--quick] [--threshold FRAC]")
    print("observability: python -m repro.experiments obs "
          "{summary,export} <experiment> [--protocol P] [--x X] "
          "[--seed S]")
    print("profiling: python -m repro.experiments profile <experiment> "
          "[--repeat N] [--out PROFILE_hotspots.json]")
    print("serving: python -m repro.experiments serve [--port N] / "
          "query <exp> --protocol P -x X --seed S / cache {stats,gc} "
          "(see docs/SERVING.md)")
    print("distributed: python -m repro.experiments campaign <exp> "
          "--backend {ssh,job-array} [--hosts FILE] [--lease-ttl SEC] "
          "[--shards N] / hosts check --hosts FILE "
          "(see docs/DISTRIBUTED.md)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)

    # `bench`, `obs`, `serve`, `query`, `cache` and `profile` own their
    # flags; dispatch before the experiment parser sees them.
    if argv and argv[0] == "bench":
        from repro.experiments.bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.experiments.obs_cli import main as obs_main
        return obs_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "query":
        from repro.serve.client import main as query_main
        return query_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.campaign.cache_cli import main as cache_main
        return cache_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.experiments.profile_cli import main as profile_main
        return profile_main(argv[1:])
    if argv and argv[0] == "hosts":
        from repro.dist.hosts import main as hosts_main
        return hosts_main(argv[1:])

    args = build_parser().parse_args(argv)

    if args.log_level != "off" or args.log_json:
        from repro.obs.logging import configure
        configure(args.log_level if args.log_level != "off" else "info",
                  json_mode=args.log_json)

    if args.experiment == "list":
        return _list_experiments()

    if args.paper_scale:
        os.environ["REPRO_PAPER_SCALE"] = "1"
    if args.large:
        os.environ["REPRO_LARGE_SCALE"] = "1"
    if args.quick:
        os.environ["REPRO_QUICK"] = "1"

    if args.experiment == "campaign":
        if args.target is None:
            print("usage: python -m repro.experiments campaign <experiment>",
                  file=sys.stderr)
            return 2
        return _run_campaign_command(args.target, args)

    from repro.experiments import registry
    definition = registry.get(args.experiment)

    if definition is not None and not definition.is_campaign:
        # Script experiments (fig2's maps, the chaos gate) run their own main.
        if args.csv or args.json:
            print(f"{args.experiment} is a script, not a series sweep; "
                  "--csv/--json ignored", file=sys.stderr)
        rc = definition.script()
        return int(rc) if rc is not None else 0

    # Campaign features requested on a fig command route through the
    # campaign runner; the bare command keeps the plain sweep path.
    plan = _load_fault_plan(args)
    wants_campaign = (args.workers > 1 or args.cache_dir or args.resume
                      or args.campaign_dir or args.timeout is not None
                      or plan is not None or args.mobility is not None
                      or (args.backend not in (None, "local-pool")))
    spec = _campaign_spec(args.experiment) if wants_campaign else None
    if spec is not None:
        from repro.campaign import run_spec
        from repro.campaign.journal import ManifestMismatch
        try:
            outcome = run_spec(
                _with_mobility(_with_faults(spec, plan), args.mobility),
                cache_dir=None if args.no_cache else args.cache_dir,
                campaign_dir=args.campaign_dir,
                resume=args.resume,
                workers=args.workers,
                timeout_s=args.timeout,
                max_retries=args.retries,
                observe=args.observe,
                **_dist_kwargs(args),
            )
        except ManifestMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results = outcome.results
        if outcome.quarantined or args.summary_json:
            _report_campaign(outcome, args)
    else:
        # Equivalent to definition.run(), except a shadowed entry in the
        # deprecated EXPERIMENTS table (the old override pattern) wins.
        results = _EXPERIMENTS[args.experiment][0]()

    _print_panels(args.experiment, results)
    _export(results, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
