"""Command-line entry point for the experiments.

::

    python -m repro.experiments fig1 [--paper-scale] [--csv out.csv] [--json out.json]
    python -m repro.experiments fig2
    python -m repro.experiments fig3 --workers 4 --cache-dir ~/.cache/repro
    python -m repro.experiments fig4 --campaign-dir campaigns/fig4 --resume
    python -m repro.experiments mobility
    python -m repro.experiments scaling
    python -m repro.experiments campaign fig3 --workers 8 --summary-json fig3.telemetry.json
    python -m repro.experiments bench --quick
    python -m repro.experiments obs summary fig1 --protocol ssaf
    python -m repro.experiments obs export fig1 --chrome timeline.json
    python -m repro.experiments list

Each figure command runs the sweep at the reduced default scale (or the
paper's full parameters with ``--paper-scale``), prints the same panels the
benchmark harness produces, and optionally exports the raw series.

The ``bench`` form runs the hot-path microbenchmarks plus a small
end-to-end fig1 cell, writes ``BENCH_kernel.json`` (op/s, wall time,
events/sec, machine metadata) and exits non-zero when a benchmark regresses
past the configurable threshold against the previous snapshot — see
:mod:`repro.experiments.bench`.

The ``campaign`` form runs the named experiment as a *durable campaign*: a
content-addressed result cache (``--cache-dir``, default
``campaigns/cache``), a per-campaign journal + manifest (``--campaign-dir``,
default ``campaigns/<name>``) that makes a killed run resumable with
``--resume``, per-cell ``--timeout`` and ``--retries`` fault tolerance, and
live telemetry on stderr.  The same ``--cache-dir/--no-cache/--resume``
flags work directly on the fig commands too.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> dict:
    from repro.experiments.fig1_ssaf import run_fig1
    return run_fig1()


def _fig3() -> dict:
    from repro.experiments.fig3_rr_vs_aodv import run_fig3
    return run_fig3()


def _fig4() -> dict:
    from repro.experiments.fig4_failures import run_fig4
    return run_fig4()


def _mobility() -> dict:
    from repro.experiments.ext_mobility import run_mobility
    return run_mobility()


def _scaling() -> dict:
    from repro.experiments.ext_scaling import run_scaling
    return run_scaling()


#: name -> (runner returning {label: SweepSeries}, panel metrics, x label)
EXPERIMENTS: dict[str, tuple[Callable[[], dict], tuple[str, ...], str]] = {
    "fig1": (_fig1, ("avg_delay_s", "avg_hops", "delivery_ratio"),
             "packet generation interval (s)"),
    "fig3": (_fig3, ("avg_delay_s", "delivery_ratio", "mac_packets", "avg_hops"),
             "communicating pairs"),
    "fig4": (_fig4, ("avg_delay_s", "delivery_ratio", "mac_packets", "avg_hops"),
             "node failure fraction"),
    "mobility": (_mobility, ("delivery_ratio", "avg_delay_s", "mac_packets"),
                 "max node speed (m/s)"),
    "scaling": (_scaling, ("mac_packets", "delivery_ratio", "avg_delay_s"),
                "network size (nodes)"),
}


def _run_fig2() -> None:
    from repro.experiments.fig2_congestion import main as fig2_main
    fig2_main()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Rerun the paper's evaluation figures and the extensions.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["bench", "campaign",
                                                       "fig2", "list"],
                        help="which experiment to run, 'campaign <exp>', or "
                             "'bench'")
    parser.add_argument("target", nargs="?", default=None,
                        help="experiment name for the campaign subcommand")
    parser.add_argument("--paper-scale", action="store_true",
                        help="run at the paper's full scale (slow)")
    parser.add_argument("--csv", metavar="PATH",
                        help="export the swept series as CSV")
    parser.add_argument("--json", metavar="PATH",
                        help="export the swept series as JSON")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run sweep cells across N processes (default 1)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(campaign default: campaigns/cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--campaign-dir", metavar="DIR", default=None,
                        help="journal/manifest directory "
                             "(campaign default: campaigns/<name>)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed campaign: re-execute only cells "
                             "missing from the journal")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-cell wall-clock timeout (needs --workers > 1)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries per failing cell before quarantine "
                             "(default 2)")
    parser.add_argument("--observe", action="store_true",
                        help="collect packet-lifecycle metrics in executed "
                             "cells and fold them into the campaign summary")
    parser.add_argument("--summary-json", metavar="PATH",
                        help="write the campaign telemetry summary as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def _campaign_spec(name: str):
    """The experiment's :class:`~repro.campaign.CampaignSpec`, or None."""
    if name == "fig1":
        from repro.experiments.fig1_ssaf import campaign_spec
    elif name == "fig3":
        from repro.experiments.fig3_rr_vs_aodv import campaign_spec
    elif name == "fig4":
        from repro.experiments.fig4_failures import campaign_spec
    elif name == "mobility":
        from repro.experiments.ext_mobility import campaign_spec
    elif name == "scaling":
        from repro.experiments.ext_scaling import campaign_spec
    else:
        return None
    return campaign_spec()


def _print_panels(name: str, results: dict) -> None:
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    _runner, metrics, x_label = EXPERIMENTS[name]
    series = list(results.values())
    for metric in metrics:
        print(f"\n=== {name}: {metric} ===")
        print(format_table(series, metric, x_label=x_label))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=metric, x_label=x_label))


def _export(results: dict, args) -> None:
    if args.csv:
        from repro.stats.export import write_csv
        write_csv(results, args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        from repro.stats.export import write_json
        write_json(results, args.json)
        print(f"wrote {args.json}")


def _run_campaign_command(name: str, args) -> int:
    from repro.campaign import run_spec
    from repro.campaign.journal import ManifestMismatch

    spec = _campaign_spec(name)
    if spec is None:
        print(f"'{name}' cannot run as a campaign "
              "(choose from: fig1 fig3 fig4 mobility scaling)",
              file=sys.stderr)
        return 2

    campaign_dir = args.campaign_dir or os.path.join("campaigns", name)
    cache_dir = None if args.no_cache else (args.cache_dir
                                            or os.path.join("campaigns", "cache"))
    progress = None
    if not args.quiet:
        def progress(event):
            print(str(event), file=sys.stderr)

    try:
        outcome = run_spec(
            spec,
            cache_dir=cache_dir,
            campaign_dir=campaign_dir,
            resume=args.resume,
            workers=args.workers,
            timeout_s=args.timeout,
            max_retries=args.retries,
            observe=args.observe,
            progress=progress,
        )
    except ManifestMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_panels(name, outcome.results)
    _report_campaign(outcome, args)
    _export(outcome.results, args)
    return 0


def _report_campaign(outcome, args) -> None:
    summary = outcome.summary
    print(f"\n--- campaign summary ---")
    print(f"cells: {summary['completed']}/{summary['total_cells']} "
          f"(executed {summary['executed']}, cache hits "
          f"{summary['cache_hits']}, resumed {summary['resumed_from_journal']})")
    print(f"cache hit ratio: {summary['cache_hit_ratio']:.0%}  "
          f"throughput: {summary['cells_per_sec']:.2f} cells/s  "
          f"elapsed: {summary['elapsed_s']:.1f}s  "
          f"retries: {summary['retries']}")
    obs = summary.get("obs")
    if obs is not None:
        drops = obs["metrics"].get("repro_drops_total", {}).get("samples", {})
        total_drops = int(sum(drops.values())) if drops else 0
        print(f"observed cells: {obs['cells_observed']}  "
              f"drops recorded: {total_drops} "
              f"(see 'obs' in --summary-json for the full registry)")
    for cell in summary["quarantined_cells"]:
        print(f"QUARANTINED {cell['protocol']}/x={cell['x']:g}/"
              f"seed={cell['seed']} after {cell['attempts']} attempts: "
              f"{cell['error']}", file=sys.stderr)
    if args.summary_json:
        from repro.stats.export import write_campaign_summary
        write_campaign_summary(summary, args.summary_json)
        print(f"wrote {args.summary_json}")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)

    # `bench` and `obs` own their flags; dispatch before the experiment
    # parser sees them.
    if argv and argv[0] == "bench":
        from repro.experiments.bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.experiments.obs_cli import main as obs_main
        return obs_main(argv[1:])

    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments: fig1 fig2 fig3 fig4 mobility scaling")
        print("campaign-capable: fig1 fig3 fig4 mobility scaling "
              "(python -m repro.experiments campaign <name>)")
        print("benchmarks: python -m repro.experiments bench "
              "[--quick] [--threshold FRAC]")
        print("observability: python -m repro.experiments obs "
              "{summary,export} <experiment> [--protocol P] [--x X] "
              "[--seed S]")
        return 0

    if args.paper_scale:
        os.environ["REPRO_PAPER_SCALE"] = "1"

    if args.experiment == "campaign":
        if args.target is None:
            print("usage: python -m repro.experiments campaign <experiment>",
                  file=sys.stderr)
            return 2
        return _run_campaign_command(args.target, args)

    if args.experiment == "fig2":
        if args.csv or args.json:
            print("fig2 produces maps, not series; --csv/--json ignored",
                  file=sys.stderr)
        _run_fig2()
        return 0

    # Campaign features requested on a fig command route through the
    # campaign runner; the bare command keeps the plain sweep path.
    wants_campaign = (args.workers > 1 or args.cache_dir or args.resume
                      or args.campaign_dir or args.timeout is not None)
    runner, _metrics, _x_label = EXPERIMENTS[args.experiment]
    spec = _campaign_spec(args.experiment) if wants_campaign else None
    if spec is not None:
        from repro.campaign import run_spec
        from repro.campaign.journal import ManifestMismatch
        try:
            outcome = run_spec(
                spec,
                cache_dir=None if args.no_cache else args.cache_dir,
                campaign_dir=args.campaign_dir,
                resume=args.resume,
                workers=args.workers,
                timeout_s=args.timeout,
                max_retries=args.retries,
                observe=args.observe,
            )
        except ManifestMismatch as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        results = outcome.results
        if outcome.quarantined or args.summary_json:
            _report_campaign(outcome, args)
    else:
        results = runner()

    _print_panels(args.experiment, results)
    _export(results, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
