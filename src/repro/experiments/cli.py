"""Command-line entry point for the experiments.

::

    python -m repro.experiments fig1 [--paper-scale] [--csv out.csv] [--json out.json]
    python -m repro.experiments fig2
    python -m repro.experiments fig3 --csv fig3.csv
    python -m repro.experiments fig4
    python -m repro.experiments mobility
    python -m repro.experiments scaling
    python -m repro.experiments list

Each figure command runs the sweep at the reduced default scale (or the
paper's full parameters with ``--paper-scale``), prints the same panels the
benchmark harness produces, and optionally exports the raw series.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

__all__ = ["main", "EXPERIMENTS"]


def _fig1() -> dict:
    from repro.experiments.fig1_ssaf import run_fig1
    return run_fig1()


def _fig3() -> dict:
    from repro.experiments.fig3_rr_vs_aodv import run_fig3
    return run_fig3()


def _fig4() -> dict:
    from repro.experiments.fig4_failures import run_fig4
    return run_fig4()


def _mobility() -> dict:
    from repro.experiments.ext_mobility import run_mobility
    return run_mobility()


def _scaling() -> dict:
    from repro.experiments.ext_scaling import run_scaling
    return run_scaling()


#: name -> (runner returning {label: SweepSeries}, panel metrics, x label)
EXPERIMENTS: dict[str, tuple[Callable[[], dict], tuple[str, ...], str]] = {
    "fig1": (_fig1, ("avg_delay_s", "avg_hops", "delivery_ratio"),
             "packet generation interval (s)"),
    "fig3": (_fig3, ("avg_delay_s", "delivery_ratio", "mac_packets", "avg_hops"),
             "communicating pairs"),
    "fig4": (_fig4, ("avg_delay_s", "delivery_ratio", "mac_packets", "avg_hops"),
             "node failure fraction"),
    "mobility": (_mobility, ("delivery_ratio", "avg_delay_s", "mac_packets"),
                 "max node speed (m/s)"),
    "scaling": (_scaling, ("mac_packets", "delivery_ratio", "avg_delay_s"),
                "network size (nodes)"),
}


def _run_fig2() -> None:
    from repro.experiments.fig2_congestion import main as fig2_main
    fig2_main()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Rerun the paper's evaluation figures and the extensions.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["fig2", "list"],
                        help="which experiment to run")
    parser.add_argument("--paper-scale", action="store_true",
                        help="run at the paper's full scale (slow)")
    parser.add_argument("--csv", metavar="PATH",
                        help="export the swept series as CSV")
    parser.add_argument("--json", metavar="PATH",
                        help="export the swept series as JSON")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run sweep cells across N processes (default 1)")
    return parser


def _parallel_spec(name: str):
    """(run_one, config, xs) for experiments that support --workers."""
    if name == "fig1":
        from repro.experiments.fig1_ssaf import Fig1Config, run_one
        config = Fig1Config.active()
        return run_one, config, config.intervals_s
    if name == "fig3":
        from repro.experiments.fig3_rr_vs_aodv import Fig3Config, run_one
        config = Fig3Config.active()
        return run_one, config, config.pair_counts
    if name == "mobility":
        from repro.experiments.ext_mobility import MobilityExpConfig, run_one
        config = MobilityExpConfig.active()
        return run_one, config, config.max_speeds_mps
    if name == "scaling":
        from repro.experiments.ext_scaling import ScalingConfig, run_one
        config = ScalingConfig.active()
        return run_one, config, config.node_counts
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments: fig1 fig2 fig3 fig4 mobility scaling")
        return 0

    if args.paper_scale:
        os.environ["REPRO_PAPER_SCALE"] = "1"

    if args.experiment == "fig2":
        if args.csv or args.json:
            print("fig2 produces maps, not series; --csv/--json ignored",
                  file=sys.stderr)
        _run_fig2()
        return 0

    runner, metrics, x_label = EXPERIMENTS[args.experiment]
    spec = _parallel_spec(args.experiment) if args.workers > 1 else None
    if spec is not None:
        from repro.experiments.parallel import parallel_sweep
        run_one, config, xs = spec
        results = parallel_sweep(run_one, config.protocols, xs, config.seeds,
                                 config, max_workers=args.workers)
    else:
        results = runner()

    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    series = list(results.values())
    for metric in metrics:
        print(f"\n=== {args.experiment}: {metric} ===")
        print(format_table(series, metric, x_label=x_label))
        print(line_chart({s.label: s.curve(metric) for s in series},
                         title=metric, x_label=x_label))

    if args.csv:
        from repro.stats.export import write_csv
        write_csv(results, args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        from repro.stats.export import write_json
        write_json(results, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
