"""The ``bench`` CLI: kernel/channel microbenchmarks + a fig1 smoke cell,
with snapshot comparison so hot-path regressions fail loudly.

::

    python -m repro.experiments bench                    # run, compare, write
    python -m repro.experiments bench --quick            # fewer repeats (CI)
    python -m repro.experiments bench --threshold 0.30   # regression budget
    python -m repro.experiments bench --no-compare       # refresh the snapshot

Each benchmark is timed as best-of-``repeats`` wall clock (the minimum is
the least noisy estimator of the achievable time on a shared machine) and
recorded with op/s and — where the operation drains a simulator —
events/sec.  Results are written to ``BENCH_kernel.json`` together with
machine metadata; the previous snapshot, if any, is the regression baseline.
A benchmark regresses when its wall time exceeds the baseline by more than
``--threshold`` (default 30%, tolerant of runner-to-runner noise in CI).
The committed snapshot is the performance trajectory of the repo: refresh
it (``--no-compare``, then commit) whenever a PR legitimately shifts the
numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable

__all__ = ["main", "collect", "compare", "fingerprint", "load_baseline",
           "DEFAULT_SNAPSHOT", "DEFAULT_THRESHOLD"]

DEFAULT_SNAPSHOT = "BENCH_kernel.json"
DEFAULT_THRESHOLD = 0.30
SCHEMA_VERSION = 1


# ------------------------------------------------------------- benchmarks


def _bench_event_loop(n: int = 10_000) -> dict:
    """Schedule-and-fire ``n`` chained events (the kernel's tight loop)."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def chain(k: int) -> None:
        if k:
            sim.schedule(0.001, chain, k - 1)

    sim.schedule(0.0, chain, n)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert sim.events_processed == n + 1
    return {"wall_s": wall, "ops": n + 1, "events": sim.events_processed}


def _bench_cancellation_storm(n: int = 10_000) -> dict:
    """Arm ``n`` timers, cancel 90% — the election workload's signature."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired: list[int] = []
    t0 = time.perf_counter()
    handles = [sim.schedule(1.0 + i * 1e-6, fired.append, i) for i in range(n)]
    for i, handle in enumerate(handles):
        if i % 10:
            handle.cancel()
    sim.run()
    wall = time.perf_counter() - t0
    assert len(fired) == n // 10
    return {"wall_s": wall, "ops": n, "events": sim.events_processed}


def _bench_channel_fanout(n_nodes: int = 80, transmits: int = 50) -> dict:
    """Repeated one-to-many broadcast delivery through the channel."""
    import numpy as np

    from repro.mac.frame import Frame
    from repro.phy.channel import Channel
    from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
    from repro.phy.radio import RadioConfig, Transceiver
    from repro.sim.components import SimContext

    ctx = SimContext()
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 300, size=(n_nodes, 2))
    model = FreeSpace()
    threshold = range_to_threshold_dbm(model, 15.0, 250.0)
    config = RadioConfig(tx_power_dbm=15.0, rx_threshold_dbm=threshold)
    channel = Channel(ctx, positions, model, 15.0, config.cs_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config) for i in range(n_nodes)]
    frame = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)

    t0 = time.perf_counter()
    for _ in range(transmits):
        radios[0].transmit(frame, 0.001)
        ctx.simulator.run()
    wall = time.perf_counter() - t0
    assert channel.tx_count == transmits
    return {"wall_s": wall, "ops": transmits,
            "events": ctx.simulator.events_processed}


def _bench_fig1_cell() -> dict:
    """One end-to-end fig1 cell (SSAF, 1 s interval, seed 1) — the
    wall-clock proxy for whole figure sweeps."""
    from repro.experiments.common import (
        ScenarioConfig,
        attach_cbr,
        build_protocol_network,
        pick_flows,
    )
    from repro.experiments.fig1_ssaf import Fig1Config
    from repro.sim.rng import RandomStreams

    config = Fig1Config()
    seed = 1
    t0 = time.perf_counter()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes, width_m=config.terrain_m,
        height_m=config.terrain_m, range_m=config.range_m, seed=seed)
    net = build_protocol_network("ssaf", scenario)
    flows = pick_flows(config.n_nodes, config.n_connections,
                       RandomStreams(seed + 7777).stream("fig1.flows"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=1.0, stop_s=config.duration_s - 2.0)
    net.run(until=config.duration_s)
    wall = time.perf_counter() - t0
    events = net.simulator.events_processed
    assert events > 0
    return {"wall_s": wall, "ops": 1, "events": events}


def _sparse_channel_2k(link_budget: str = "sparse", n_nodes: int = 2000,
                       depth_m: float | None = None):
    """A 2k-node channel at the paper's Figure 3 density (untimed setup
    shared by the n=2000 benchmarks).  ``depth_m`` adds a z axis — the
    3-D benchmarks share everything but the extra coordinate."""
    import math

    import numpy as np

    from repro.phy.channel import Channel
    from repro.phy.propagation import FreeSpace, range_to_threshold_dbm
    from repro.sim.components import SimContext

    ctx = SimContext()
    rng = np.random.default_rng(0)
    terrain = math.sqrt(n_nodes / 125e-6)  # Figure 3 density
    positions = rng.uniform(0, terrain, size=(n_nodes, 2))
    if depth_m is not None:
        altitudes = rng.uniform(0, depth_m, size=(n_nodes, 1))
        positions = np.hstack([positions, altitudes])
    model = FreeSpace()
    threshold = range_to_threshold_dbm(model, 15.0, 250.0)
    channel = Channel(ctx, positions, model, 15.0, threshold,
                      link_budget=link_budget)
    return ctx, channel, positions, rng


def _bench_sparse_fanout(transmits: int = 50) -> dict:
    """Broadcast delivery through the sparse 2k-node link budget — the
    transmit hot path must not care which representation sits underneath."""
    from repro.mac.frame import Frame
    from repro.phy.radio import RadioConfig, Transceiver

    ctx, channel, _positions, _rng = _sparse_channel_2k()
    config = RadioConfig(tx_power_dbm=15.0,
                         rx_threshold_dbm=channel.reach_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config)
              for i in range(channel.n_nodes)]
    assert radios
    frame = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)

    t0 = time.perf_counter()
    for _ in range(transmits):
        radios[0].transmit(frame, 0.001)
        ctx.simulator.run()
    wall = time.perf_counter() - t0
    assert channel.tx_count == transmits
    return {"wall_s": wall, "ops": transmits,
            "events": ctx.simulator.events_processed}


def _bench_sparse_fanout_3d(transmits: int = 50) -> dict:
    """Broadcast delivery through the sparse link budget at n=2000 with a
    200 m altitude axis — the 27-cell 3-D grid neighborhood vs the 2-D
    benchmark's 9-cell one."""
    from repro.mac.frame import Frame
    from repro.phy.radio import RadioConfig, Transceiver

    ctx, channel, _positions, _rng = _sparse_channel_2k(depth_m=200.0)
    config = RadioConfig(tx_power_dbm=15.0,
                         rx_threshold_dbm=channel.reach_threshold_dbm)
    radios = [Transceiver(ctx, i, channel, config)
              for i in range(channel.n_nodes)]
    frame = Frame(src=0, dst=None, seq=0, payload=None, size_bytes=100)

    t0 = time.perf_counter()
    for _ in range(transmits):
        radios[0].transmit(frame, 0.001)
        ctx.simulator.run()
    wall = time.perf_counter() - t0
    assert channel.tx_count == transmits
    return {"wall_s": wall, "ops": transmits,
            "events": ctx.simulator.events_processed}


def _bench_mobility_tick(ticks: int = 5) -> dict:
    """Incremental sparse update for a full mobility tick at n=2000: every
    node drifts one tick's worth (~2.5 m).  The ≥10x-vs-dense-rebuild
    acceptance bar compares this against ``dense_rebuild_2k``."""
    _ctx, channel, positions, rng = _sparse_channel_2k()
    ids = None
    t0 = time.perf_counter()
    for _ in range(ticks):
        if ids is None:
            import numpy as np
            ids = np.arange(channel.n_nodes)
        positions = positions + rng.uniform(-2.5, 2.5,
                                            size=positions.shape)
        channel.move_nodes(ids, positions)
        ops_guard = channel.reach[0]  # noqa: F841 - keep the result live
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "ops": ticks, "events": 0}


def _bench_dense_rebuild(ticks: int = 5) -> dict:
    """The dense full N×N rebuild the incremental path replaces — kept as
    a benchmark so the speedup stays visible in the snapshot."""
    _ctx, channel, positions, rng = _sparse_channel_2k(link_budget="dense")
    t0 = time.perf_counter()
    for _ in range(ticks):
        positions = positions + rng.uniform(-2.5, 2.5,
                                            size=positions.shape)
        channel.set_positions(positions)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "ops": ticks, "events": 0}


#: name -> (callable, repeats at full scale, repeats at --quick)
#: The n=2000 benchmarks keep their full problem size in --quick mode (only
#: the repeat count drops) so the CI gate compares like against like.
BENCHMARKS: dict[str, tuple[Callable[[], dict], int, int]] = {
    "event_loop_throughput": (_bench_event_loop, 7, 3),
    "timer_cancellation_storm": (_bench_cancellation_storm, 7, 3),
    "channel_fanout": (_bench_channel_fanout, 7, 3),
    "fig1_smoke_cell": (_bench_fig1_cell, 3, 2),
    "sparse_fanout_2k": (_bench_sparse_fanout, 5, 2),
    "sparse_fanout_3d_2k": (_bench_sparse_fanout_3d, 5, 2),
    "mobility_tick_2k": (_bench_mobility_tick, 5, 2),
    # The dense rebuild allocates ~128 MB of matrices per tick, so its
    # first (cold) repeat can run 30% slow; extra repeats let best-of-k
    # land on the allocator's steady state.
    "dense_rebuild_2k": (_bench_dense_rebuild, 5, 3),
}


# ------------------------------------------------------------- collection


def _machine_meta() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
    }


def collect(quick: bool = False) -> dict:
    """Run every benchmark (best of k repeats) and return the snapshot."""
    results = {}
    for name, (fn, repeats, quick_repeats) in BENCHMARKS.items():
        k = quick_repeats if quick else repeats
        best: dict | None = None
        for _ in range(k):
            sample = fn()
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        assert best is not None
        wall = best["wall_s"]
        results[name] = {
            "wall_s": round(wall, 6),
            "ops_per_s": round(best["ops"] / wall, 1) if wall > 0 else None,
            "events_per_s": (round(best["events"] / wall, 1)
                             if wall > 0 else None),
            "events": best["events"],
            "repeats": k,
        }
    return {
        "schema": SCHEMA_VERSION,
        "unix_time": round(time.time(), 1),
        "quick": quick,
        "machine": _machine_meta(),
        "benchmarks": results,
    }


def fingerprint(meta: dict) -> tuple:
    """What must match for wall times to be comparable across snapshots.

    Interpreter implementation and CPU architecture change the numbers
    wholesale; hostname and Python patch version don't, so CI runners with
    rotating names still share a fingerprint.
    """
    return (meta.get("implementation"), meta.get("machine"),
            meta.get("processor"))


class BaselineError(Exception):
    """A baseline snapshot that can't be used (missing, corrupt, or from a
    different machine) — reported as a clear CLI message, never a traceback."""


def load_baseline(path: str, *, require: bool,
                  ignore_fingerprint: bool = False,
                  current_meta: dict | None = None) -> dict | None:
    """Read and vet a baseline snapshot.

    Returns ``None`` when the file is absent and ``require`` is False (the
    implicit-compare default: a fresh snapshot will be written).  Raises
    :class:`BaselineError` when the baseline is explicitly required but
    missing, is not valid JSON, or was recorded on a machine with a
    different :func:`fingerprint`.
    """
    if not os.path.exists(path):
        if require:
            raise BaselineError(
                f"no benchmark baseline at {path!r} — run "
                "'python -m repro.experiments bench --no-compare' once to "
                "create one, or pass --baseline PATH")
        return None
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BaselineError(
            f"baseline {path!r} is not valid JSON ({exc}) — delete it or "
            "regenerate with --no-compare")
    if not isinstance(baseline, dict) or "benchmarks" not in baseline:
        raise BaselineError(
            f"baseline {path!r} is not a bench snapshot (no 'benchmarks' "
            "key) — regenerate with --no-compare")
    meta = baseline.get("machine")
    if not ignore_fingerprint and current_meta is not None and meta:
        theirs = fingerprint(meta)
        ours = fingerprint(current_meta)
        if theirs != ours:
            raise BaselineError(
                f"baseline {path!r} was recorded on a different machine "
                f"(baseline fingerprint {theirs}, this machine {ours}) — "
                "wall-time comparison would be meaningless; pass "
                "--ignore-fingerprint to compare anyway or --no-compare to "
                "re-baseline here")
    return baseline


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression report: benchmarks slower than baseline by > threshold.

    Benchmarks present on only one side are reported informationally by the
    caller, never as regressions.
    """
    regressions = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, entry in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if base is None or not base.get("wall_s"):
            continue
        ratio = entry["wall_s"] / base["wall_s"]
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: {entry['wall_s'] * 1e3:.2f} ms vs baseline "
                f"{base['wall_s'] * 1e3:.2f} ms ({ratio:.2f}x, budget "
                f"{1.0 + threshold:.2f}x)")
    return regressions


# -------------------------------------------------------------------- CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench",
        description="Run the hot-path benchmarks and compare against the "
                    "committed snapshot.")
    parser.add_argument("--output", metavar="PATH", default=DEFAULT_SNAPSHOT,
                        help=f"snapshot file to write (default {DEFAULT_SNAPSHOT})")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="snapshot to compare against (default: the "
                             "existing --output file)")
    parser.add_argument("--threshold", type=float, default=None,
                        metavar="FRAC",
                        help="fail when a benchmark is slower than baseline "
                             f"by more than FRAC (default {DEFAULT_THRESHOLD}); "
                             "passing this makes a usable baseline mandatory")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats per benchmark (CI mode)")
    parser.add_argument("--ignore-fingerprint", action="store_true",
                        help="compare even when the baseline was recorded on "
                             "a machine with a different fingerprint")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the regression check, just measure and write")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare without rewriting the snapshot")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    baseline_path = args.baseline if args.baseline is not None else args.output
    # Comparison was asked for by name (not just defaulted into): a missing
    # or unusable baseline is then an error, not a silent fresh-snapshot.
    explicit_compare = (args.threshold is not None
                        or args.baseline is not None)
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)

    baseline = None
    if not args.no_compare:
        try:
            baseline = load_baseline(
                baseline_path, require=explicit_compare,
                ignore_fingerprint=args.ignore_fingerprint,
                current_meta=_machine_meta())
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    snapshot = collect(quick=args.quick)

    print(f"{'benchmark':<28} {'wall':>12} {'op/s':>14} {'events/s':>14}")
    for name, entry in snapshot["benchmarks"].items():
        events = (f"{entry['events_per_s']:>14,.0f}"
                  if entry["events_per_s"] else f"{'-':>14}")
        print(f"{name:<28} {entry['wall_s'] * 1e3:>9.2f} ms "
              f"{entry['ops_per_s']:>14,.0f} {events}")

    status = 0
    if baseline is not None:
        regressions = compare(snapshot, baseline, threshold)
        missing = set(snapshot["benchmarks"]) - set(baseline.get("benchmarks", {}))
        if missing:
            print(f"\n(no baseline for: {', '.join(sorted(missing))})")
        if regressions:
            print(f"\nREGRESSION vs {baseline_path}:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            status = 1
        else:
            print(f"\nno regression vs {baseline_path} "
                  f"(threshold {threshold:.0%})")
    elif not args.no_compare:
        print(f"\nno baseline at {baseline_path}; writing a fresh snapshot")

    if not args.no_write:
        with open(args.output, "w") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
