"""Figure 3 — Routeless Routing versus AODV, no node failures.

Paper setup: 500 nodes on 2000 m × 2000 m, transmission range ≈ 250 m,
bidirectional CBR between 1..10 communicating pairs.  Four panels:
end-to-end delay, delivery ratio, number of MAC packets, average hops.

Shape to reproduce:

* delivery ratio ≈ 1.0 for both protocols;
* Routeless Routing's delay is *higher* (each hop waits out an election);
* Routeless Routing uses *fewer* MAC packets (shorter routes + counter-1
  discovery against AODV's original-flooding discovery);
* Routeless Routing's packets take *fewer* hops (it keeps tracking the
  shortest path; AODV is stuck with whatever discovery established).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    paper_scale,
    pick_flows,
)
from repro.experiments.registry import experiment
from repro.experiments.result import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.stats.series import SweepSeries

__all__ = ["Fig3Config", "campaign_spec", "run_fig3", "run_one"]


@dataclass(frozen=True, kw_only=True)
class Fig3Config:
    n_nodes: int = 150
    terrain_m: float = 1100.0  # ≈ the paper's 125 nodes/km² density
    range_m: float = 250.0
    pair_counts: tuple[int, ...] = (1, 2, 4, 6)
    cbr_interval_s: float = 1.0
    duration_s: float = 30.0
    seeds: tuple[int, ...] = (1, 2)
    protocols: tuple[str, ...] = ("aodv", "routeless")

    @classmethod
    def paper(cls) -> "Fig3Config":
        return cls(
            n_nodes=500,
            terrain_m=2000.0,
            pair_counts=tuple(range(1, 11)),
            duration_s=100.0,
            seeds=(1, 2, 3),
        )

    @classmethod
    def active(cls) -> "Fig3Config":
        return cls.paper() if paper_scale() else cls()


def run_one(protocol: str, n_pairs: int, seed: int, config: Fig3Config,
            failure_fraction: float = 0.0, failure_cycle_s: float = 4.0,
            obs=None, faults=None) -> ExperimentResult:
    """One sweep cell.  ``failure_fraction`` > 0 turns this into a Figure 4
    cell (same harness, different swept variable); ``faults`` installs an
    arbitrary :class:`~repro.faults.plan.FaultPlan` with the CBR endpoints
    exempt."""
    from repro.topology.failures import apply_failures

    started = time.perf_counter()
    scenario = ScenarioConfig(
        n_nodes=config.n_nodes,
        width_m=config.terrain_m,
        height_m=config.terrain_m,
        range_m=config.range_m,
        seed=seed,
    )
    net = build_protocol_network(protocol, scenario, obs=obs)
    flows = pick_flows(
        config.n_nodes,
        n_pairs,
        RandomStreams(seed + 8888).stream("fig3.flows"),
        bidirectional=True,  # "the traffic being bidirectional"
        distinct_endpoints=True,
    )
    endpoints = {node for flow in flows for node in flow}
    if failure_fraction > 0.0:
        apply_failures(net.ctx, net.radios, failure_fraction,
                       exempt=endpoints, mean_cycle_s=failure_cycle_s)
    if faults is not None:
        from repro.faults import install_plan
        install_plan(net, faults, exempt=endpoints)
    attach_cbr(net, flows, interval_s=config.cbr_interval_s,
               stop_s=config.duration_s - 3.0)
    net.run(until=config.duration_s)
    return ExperimentResult.from_summary(
        net.summary(), config=config, seed=seed,
        wall_s=time.perf_counter() - started)


@experiment(name="fig3",
            description="Routeless Routing vs AODV, no failures (delay, "
                        "delivery, MAC packets, hops vs pair count)",
            panels=("avg_delay_s", "delivery_ratio", "mac_packets",
                    "avg_hops"),
            x_label="communicating pairs")
def campaign_spec(config: Fig3Config | None = None):
    """This sweep as a :class:`repro.campaign.CampaignSpec`."""
    from repro.campaign import CampaignSpec
    config = config if config is not None else Fig3Config.active()
    return CampaignSpec(name="fig3", run_one=run_one,
                        protocols=config.protocols, xs=config.pair_counts,
                        seeds=config.seeds, config=config)


def run_fig3(config: Fig3Config | None = None,
             **campaign_kwargs) -> dict[str, SweepSeries]:
    from repro.campaign import run_spec
    outcome = run_spec(campaign_spec(config), **campaign_kwargs)
    if outcome.quarantined:
        raise RuntimeError(f"fig3 sweep quarantined cells: "
                           f"{outcome.summary['quarantined_cells']}")
    return outcome.results


def main() -> None:  # pragma: no cover - exercised via benchmarks
    from repro.stats.series import format_table
    from repro.viz.ascii_chart import line_chart

    results = run_fig3()
    series = list(results.values())
    for metric, label in (
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("delivery_ratio", "Delivery Ratio"),
        ("mac_packets", "Number of MAC Packets"),
        ("avg_hops", "Average Hops"),
    ):
        print(f"\n=== Figure 3: {label} vs Number of Communicating Pairs ===")
        print(format_table(series, metric, x_label="pairs"))
        print(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="communicating pairs",
        ))


if __name__ == "__main__":  # pragma: no cover
    main()
