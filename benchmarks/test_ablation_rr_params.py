"""Ablation — Routeless Routing's robustness knobs.

Three mechanisms DESIGN.md calls out, each exercised under the Figure 4
failure workload where they earn their keep:

* ``participate_without_entry`` — whether entry-less nodes compete
  (penalized) at all.  This is the protocol's failure fallback: with it off,
  a dead corridor has no understudies.
* ``unknown_penalty`` — how much the fallback is handicapped.
* ``max_excess_hops`` — how far off the gradient a node may sit and still
  compete.  0 is aggressive pruning; large values re-admit the zombie
  diffusion documented in EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.net.routeless import RoutelessConfig
from repro.sim.rng import RandomStreams
from repro.topology.failures import apply_failures

SEEDS = (1, 2)
FAILURE = 0.15  # harsh enough that the fallback machinery matters


def run(config: RoutelessConfig, seed: int):
    scenario = ScenarioConfig(n_nodes=100, width_m=900, height_m=900,
                              range_m=250, seed=seed)
    net = build_protocol_network("routeless", scenario, protocol_config=config)
    flows = pick_flows(100, 3, RandomStreams(seed + 17).stream("rrp"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    apply_failures(net.ctx, net.radios, FAILURE, exempt=endpoints,
                   mean_cycle_s=3.0)
    attach_cbr(net, flows, interval_s=1.0, stop_s=25.0)
    net.run(until=30.0)
    return net.summary()


VARIANTS = {
    "default": RoutelessConfig(),
    "no_fallback": RoutelessConfig(participate_without_entry=False),
    "penalty=1": RoutelessConfig(unknown_penalty=1),
    "penalty=5": RoutelessConfig(unknown_penalty=5,
                                 arbiter_timeout_s=0.35),
    "excess=0": RoutelessConfig(max_excess_hops=0),
    "excess=8": RoutelessConfig(max_excess_hops=8),
}


def test_rr_parameter_robustness(benchmark, report):
    def sweep():
        rows = {}
        for name, config in VARIANTS.items():
            delivery = delay = mac = 0.0
            for seed in SEEDS:
                summary = run(config, seed)
                delivery += summary.delivery_ratio / len(SEEDS)
                delay += summary.avg_delay_s / len(SEEDS)
                mac += summary.mac_packets / len(SEEDS)
            rows[name] = (delivery, delay, mac)
        return rows

    rows = run_once(benchmark, sweep)
    lines = [f"=== Ablation: Routeless Routing knobs at {FAILURE:.0%} failures ===",
             f"{'variant':>12} {'delivery':>9} {'delay_s':>9} {'mac_pkts':>9}"]
    for name, (delivery, delay, mac) in rows.items():
        lines.append(f"{name:>12} {delivery:>9.3f} {delay:>9.4f} {mac:>9.0f}")
    report("ablation_rr_params", "\n".join(lines))

    # Every sane variant keeps the protocol serviceable under failures...
    for name in ("default", "penalty=1", "penalty=5", "excess=0", "excess=8"):
        assert rows[name][0] > 0.9, name
    # ...and re-admitting far-off-gradient nodes costs transmissions.
    assert rows["excess=8"][2] > rows["excess=0"][2]
