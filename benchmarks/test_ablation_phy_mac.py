"""Ablation — PHY/MAC modelling choices.

Two substrate knobs that a reproduction must show are *not* doing the
protocols' work for them:

1. **Reception model** (simple collision vs SINR): the paper-era simple
   model destroys every overlapping decodable frame; the SINR model lets
   strong frames survive weak interference.  The figures' protocol
   orderings must not depend on which one is in force.
2. **RTS/CTS** for the unicast baseline: virtual carrier sensing protects
   AODV's data plane from hidden terminals at the cost of two control
   frames per data frame.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.mac.csma import MacConfig
from repro.sim.rng import RandomStreams

SEEDS = (1, 2)


def run(protocol: str, seed: int, sinr: bool = False,
        mac_config: MacConfig | None = None):
    scenario = ScenarioConfig(n_nodes=100, width_m=900, height_m=900,
                              range_m=250, seed=seed, sinr_model=sinr)
    net = build_protocol_network(protocol, scenario, mac_config=mac_config)
    flows = pick_flows(100, 4, RandomStreams(seed + 61).stream("pm"),
                       bidirectional=True)
    attach_cbr(net, flows, interval_s=0.5, stop_s=15.0)
    net.run(until=18.0)
    return net


def test_protocol_ordering_robust_to_reception_model(benchmark, report):
    def sweep():
        rows = {}
        for sinr in (False, True):
            for protocol in ("routeless", "aodv"):
                ratio, delay = 0.0, 0.0
                for seed in SEEDS:
                    summary = run(protocol, seed, sinr=sinr).summary()
                    ratio += summary.delivery_ratio / len(SEEDS)
                    delay += summary.avg_delay_s / len(SEEDS)
                rows[(protocol, sinr)] = (ratio, delay)
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["=== Ablation: reception model (simple collision vs SINR) ===",
             f"{'protocol':>10} {'model':>8} {'delivery':>9} {'delay_s':>9}"]
    for (protocol, sinr), (ratio, delay) in rows.items():
        lines.append(f"{protocol:>10} {'sinr' if sinr else 'simple':>8} "
                     f"{ratio:>9.3f} {delay:>9.4f}")
    report("ablation_reception_model", "\n".join(lines))

    for sinr in (False, True):
        # The figures' qualitative orderings hold under both models.
        assert rows[("routeless", sinr)][0] > 0.9
        assert rows[("aodv", sinr)][0] > 0.9
        assert rows[("routeless", sinr)][1] > rows[("aodv", sinr)][1]


def test_rts_cts_cost_and_protection(benchmark, report):
    def sweep():
        rows = {}
        for rts in (None, 256):
            config = MacConfig(rts_threshold_bytes=rts)
            delivery, mac_packets, timeouts = 0.0, 0.0, 0.0
            for seed in SEEDS:
                net = run("aodv", seed, mac_config=config)
                summary = net.summary()
                delivery += summary.delivery_ratio / len(SEEDS)
                mac_packets += summary.mac_packets / len(SEEDS)
                timeouts += sum(m.ack_timeouts for m in net.macs) / len(SEEDS)
            rows["rts" if rts else "plain"] = (delivery, mac_packets, timeouts)
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["=== Ablation: RTS/CTS on the AODV data plane ===",
             f"{'mode':>6} {'delivery':>9} {'mac_pkts':>9} {'ack_timeouts':>13}"]
    for mode, (delivery, mac_packets, timeouts) in rows.items():
        lines.append(f"{mode:>6} {delivery:>9.3f} {mac_packets:>9.0f} "
                     f"{timeouts:>13.1f}")
    report("ablation_rts_cts", "\n".join(lines))

    # The handshake costs a substantial number of extra control frames...
    assert rows["rts"][1] > 1.3 * rows["plain"][1]
    # ...without hurting delivery.  (Its *protection* benefit only shows in
    # hidden-terminal-dominated scenarios — demonstrated deterministically in
    # tests/mac/test_rts_cts.py::TestNav::test_hidden_terminal_protected; in
    # this well-connected scenario the handshake is roughly loss-neutral.)
    assert rows["rts"][0] > 0.9 and rows["plain"][0] > 0.9
