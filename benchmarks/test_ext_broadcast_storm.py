"""Extension bench — the broadcast storm (Tseng et al. [19]), the paper's
flooding reference point.

A single source floods one packet across a fixed terrain while density
grows.  Blind flooding's cost explodes with the node count (every node
transmits), counter-1's grows sub-linearly (suppression), and SSAF's stays
lowest while *covering* at least as well — the storm problem and the
election-based mitigation on one chart.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import ScenarioConfig, build_protocol_network
from repro.stats.series import SweepSeries, format_table
from repro.viz.ascii_chart import line_chart

DENSITIES = (30, 60, 120)
SEEDS = (1, 2)
PROTOCOLS = ("blind", "counter1", "ssaf")


def flood_once(protocol: str, n_nodes: int, seed: int):
    scenario = ScenarioConfig(n_nodes=n_nodes, width_m=700, height_m=700,
                              range_m=250, seed=seed)
    net = build_protocol_network(protocol, scenario)
    # Flood to a pseudo-destination that does not exist as a receiver
    # (target -1): every node relays per its protocol; we measure coverage
    # as the fraction of nodes that saw the packet.
    packet = net.protocols[0].send_data(-1)
    net.run(until=5.0)
    saw = sum(1 for p in net.protocols if p.dup_cache.seen(packet))
    coverage = saw / n_nodes
    return net.channel.tx_count_by_kind["data"], coverage


def test_broadcast_storm(benchmark, report):
    def sweep():
        tx = {p: SweepSeries(p) for p in PROTOCOLS}
        cov = {}
        for protocol in PROTOCOLS:
            for n in DENSITIES:
                txs, covs = [], []
                for seed in SEEDS:
                    t, c = flood_once(protocol, n, seed)
                    txs.append(t)
                    covs.append(c)
                cov[(protocol, n)] = sum(covs) / len(covs)
                from repro.stats.metrics import MetricsSummary
                tx[protocol].add(float(n), MetricsSummary(
                    generated=1, delivered=1, delivery_ratio=cov[(protocol, n)],
                    avg_delay_s=0.0, avg_hops=0.0,
                    mac_packets=int(sum(txs) / len(txs))))
        return tx, cov

    tx, cov = run_once(benchmark, sweep)
    series = list(tx.values())
    lines = ["=== Extension: broadcast storm — one flood, growing density ===",
             format_table(series, "mac_packets", x_label="nodes"),
             line_chart({s.label: s.curve("mac_packets") for s in series},
                        title="Transmissions per flood", x_label="nodes"),
             "",
             f"{'protocol':>9} " + " ".join(f"cov@{n:<4}" for n in DENSITIES)]
    for protocol in PROTOCOLS:
        lines.append(f"{protocol:>9} " + " ".join(
            f"{cov[(protocol, n)]:<8.3f}" for n in DENSITIES))
    report("ext_broadcast_storm", "\n".join(lines))

    small, large = float(DENSITIES[0]), float(DENSITIES[-1])
    blind_large = tx["blind"].metric(large, "mac_packets").mean
    counter_large = tx["counter1"].metric(large, "mac_packets").mean
    ssaf_large = tx["ssaf"].metric(large, "mac_packets").mean

    # Blind flooding transmits ~N at any density; suppression cuts that
    # hard, and the cut deepens with density (the storm mitigation).
    assert blind_large == pytest.approx(large, rel=0.05)
    assert counter_large < 0.7 * blind_large
    assert ssaf_large < 0.7 * blind_large

    # Coverage: full for blind, and the suppressing variants still reach
    # (nearly) everyone — suppression saves transmissions, not coverage.
    for protocol in PROTOCOLS:
        assert cov[(protocol, large)] > 0.9, protocol
