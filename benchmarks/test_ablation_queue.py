"""Ablation — the MAC priority queue's contribution to SSAF under load.

Section 3 credits part of SSAF's delay win at small generation intervals to
the priority queue between the network and MAC layers: "the prioritization
takes effect not only among packets in different nodes, but also among
packets in the same node.  The priority queue has no effect on the counter-1
flooding."

We run SSAF under heavy load with both queue disciplines, and counter-1 with
both as the control.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.mac.csma import MacConfig
from repro.sim.rng import RandomStreams

INTERVAL_S = 0.2  # heavy load: where the queue matters
SEEDS = (1, 2, 3)


def run(protocol: str, priority_queue: bool, seed: int):
    scenario = ScenarioConfig(n_nodes=60, width_m=775, height_m=775,
                              range_m=250, seed=seed)
    net = build_protocol_network(
        protocol, scenario, mac_config=MacConfig(priority_queue=priority_queue))
    flows = pick_flows(60, 15, RandomStreams(seed + 7777).stream("fig1.flows"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=INTERVAL_S, stop_s=10.0)
    net.run(until=12.0)
    return net.summary()


def averaged_delay(protocol: str, priority_queue: bool) -> float:
    return sum(run(protocol, priority_queue, s).avg_delay_s for s in SEEDS) / len(SEEDS)


def test_priority_queue_helps_ssaf_not_counter1(benchmark, report):
    def sweep():
        return {
            ("ssaf", True): averaged_delay("ssaf", True),
            ("ssaf", False): averaged_delay("ssaf", False),
            ("counter1", True): averaged_delay("counter1", True),
            ("counter1", False): averaged_delay("counter1", False),
        }

    delays = run_once(benchmark, sweep)
    report("ablation_queue", "\n".join([
        "=== Ablation: net→MAC queue discipline under load ===",
        f"{'protocol':>10} {'queue':>9} {'delay_s':>9}",
        f"{'ssaf':>10} {'priority':>9} {delays[('ssaf', True)]:>9.4f}",
        f"{'ssaf':>10} {'fifo':>9} {delays[('ssaf', False)]:>9.4f}",
        f"{'counter1':>10} {'priority':>9} {delays[('counter1', True)]:>9.4f}",
        f"{'counter1':>10} {'fifo':>9} {delays[('counter1', False)]:>9.4f}",
    ]))

    # The priority queue must help SSAF under load...
    assert delays[("ssaf", True)] < delays[("ssaf", False)]
    # ...and help counter-1 *less* in relative terms (its priorities are
    # random, so reordering by them is close to a no-op).
    ssaf_gain = delays[("ssaf", False)] / max(delays[("ssaf", True)], 1e-9)
    counter1_gain = delays[("counter1", False)] / max(delays[("counter1", True)], 1e-9)
    assert ssaf_gain > counter1_gain
