"""Extension bench — cost scaling with network size at constant density.

The paper's scalability motivation, quantified: flooding's per-packet cost
grows with the node count; election routing's grows with the route length.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ext_scaling import ScalingConfig, run_scaling
from repro.stats.series import format_table
from repro.viz.ascii_chart import line_chart


def test_scaling_sweep(benchmark, report):
    config = ScalingConfig.active()
    results = run_once(benchmark, run_scaling, config)

    series = list(results.values())
    panels = []
    for metric, label in (
        ("mac_packets", "Number of MAC Packets"),
        ("delivery_ratio", "Delivery Ratio"),
        ("avg_delay_s", "End-to-End Delay (s)"),
    ):
        panels.append(f"=== Extension: {label} vs Network Size ===")
        panels.append(format_table(series, metric, x_label="nodes"))
        panels.append(line_chart({s.label: s.curve(metric) for s in series},
                                 title=label, x_label="network size (nodes)"))
    report("ext_scaling", "\n\n".join(panels))

    flood, rr = results["counter1"], results["routeless"]
    small, large = min(flood.xs), max(flood.xs)

    # Flooding's transmissions scale ~linearly with N; routing's with the
    # route length (~√N at constant density): flooding's growth factor must
    # be clearly larger.
    flood_growth = flood.metric(large, "mac_packets").mean / \
        max(flood.metric(small, "mac_packets").mean, 1.0)
    rr_growth = rr.metric(large, "mac_packets").mean / \
        max(rr.metric(small, "mac_packets").mean, 1.0)
    assert flood_growth > rr_growth * 1.3

    # Everyone still delivers at every size.
    for s in series:
        for x in s.xs:
            assert s.metric(x, "delivery_ratio").mean > 0.85
