"""Figure 2 — automatic congestion avoidance in Routeless Routing.

Regenerates the side-by-side relay-usage maps (A→B alone vs A→B with a
heavily loaded C↔D cross flow) and asserts the quantitative version of the
figure's claim: A→B relay activity near the congested centre drops once the
cross traffic is introduced.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig2_congestion import Fig2Config, run_fig2
from repro.viz.paths import path_summary


def test_fig2_congestion_avoidance(benchmark, report):
    config = Fig2Config.active()
    result = run_once(benchmark, run_fig2, config)

    left, right = result.heatmaps()
    lines = ["=== Figure 2: A→B relay usage — alone (left) vs with C↔D load (right) ==="]
    for l_line, r_line in zip(left.splitlines(), right.splitlines()):
        lines.append(f"{l_line}   {r_line}")
    lines.append("")
    lines.append(f"A→B corridor usage alone:     {result.corridor_alone:.3f} "
                 f"(delivery {result.delivery_alone:.2f})")
    lines.append(f"A→B corridor usage congested: {result.corridor_congested:.3f} "
                 f"(delivery {result.delivery_congested:.2f})")
    lines.append("")
    lines.append("Most used A→B paths, alone:")
    lines.append(path_summary(result.paths_alone[:50]))
    lines.append("")
    lines.append("Most used A→B paths, congested:")
    lines.append(path_summary(result.paths_congested[:50]))
    report("fig2_congestion", "\n".join(lines))

    # The uncongested flow must actually work...
    assert result.delivery_alone > 0.5
    assert result.paths_alone, "A→B delivered nothing in the baseline phase"
    # ...and bend away from the congested centre when C↔D load appears.
    assert result.corridor_congested < result.corridor_alone
