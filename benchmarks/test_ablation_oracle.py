"""Ablation — SSAF against the location oracle it approximates.

Section 3: location-based flooding is the idea; "however, location
information is not generally available", so SSAF substitutes signal
strength.  This bench quantifies the substitution on identical scenarios:

* under free-space propagation, signal strength is a bijection of distance —
  SSAF should match the GPS oracle almost exactly;
* under Rayleigh fading, per-reception fades corrupt the distance estimate —
  SSAF gives up part of the gap to counter-1 while the oracle is unaffected.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.phy.propagation import FreeSpace, RayleighFading
from repro.sim.rng import RandomStreams

SEEDS = (1, 2, 3)
PROTOCOLS = ("counter1", "ssaf", "geoflood")


def run(protocol: str, seed: int, fading: bool):
    scenario = ScenarioConfig(
        n_nodes=60, width_m=775.0, height_m=775.0, range_m=250.0, seed=seed,
        propagation=RayleighFading() if fading else FreeSpace(),
    )
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(60, 10, RandomStreams(seed + 5).stream("or"),
                       distinct_endpoints=False)
    attach_cbr(net, flows, interval_s=1.0, stop_s=10.0)
    net.run(until=12.0)
    return net.summary()


def test_ssaf_approaches_the_location_oracle(benchmark, report):
    def sweep():
        rows = {}
        for fading in (False, True):
            for protocol in PROTOCOLS:
                hops = delivery = 0.0
                for seed in SEEDS:
                    summary = run(protocol, seed, fading)
                    hops += summary.avg_hops / len(SEEDS)
                    delivery += summary.delivery_ratio / len(SEEDS)
                rows[(protocol, fading)] = (hops, delivery)
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["=== Ablation: SSAF vs the location oracle (geoflood) ===",
             f"{'protocol':>10} {'channel':>9} {'avg_hops':>9} {'delivery':>9}"]
    for (protocol, fading), (hops, delivery) in rows.items():
        lines.append(f"{protocol:>10} {'rayleigh' if fading else 'free':>9} "
                     f"{hops:>9.2f} {delivery:>9.3f}")
    report("ablation_oracle", "\n".join(lines))

    free = {p: rows[(p, False)] for p in PROTOCOLS}
    faded = {p: rows[(p, True)] for p in PROTOCOLS}

    # Free space: both metric-driven variants beat counter-1 on hops, and
    # SSAF sits within a whisker of the oracle.
    assert free["ssaf"][0] < free["counter1"][0]
    assert free["geoflood"][0] < free["counter1"][0]
    assert abs(free["ssaf"][0] - free["geoflood"][0]) < 0.3

    # Fading: the oracle still beats counter-1 comfortably; SSAF's advantage
    # shrinks relative to its free-space gap (its metric got noisy).
    assert faded["geoflood"][0] < faded["counter1"][0]
    ssaf_gap_free = free["counter1"][0] - free["ssaf"][0]
    ssaf_gap_faded = faded["counter1"][0] - faded["ssaf"][0]
    assert ssaf_gap_faded < ssaf_gap_free + 0.15  # no magical improvement
