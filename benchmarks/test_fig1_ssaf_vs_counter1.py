"""Figure 1 — SSAF vs counter-1 flooding.

Regenerates the three panels (end-to-end delay, average hops, delivery
ratio against the packet generation interval) and asserts the paper's
qualitative findings:

* SSAF averages fewer hops at every interval;
* SSAF's delay is lower, with the gap largest at the smallest interval;
* SSAF's delivery ratio is at least as good on average.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig1_ssaf import Fig1Config, run_fig1
from repro.stats.series import format_table
from repro.viz.ascii_chart import line_chart

PANELS = (
    ("avg_delay_s", "End-to-End Delay (s)"),
    ("avg_hops", "Average Hops"),
    ("delivery_ratio", "Delivery Ratio"),
)


@pytest.fixture(scope="module")
def fig1_results():
    return {}


def test_fig1_sweep(benchmark, report, fig1_results):
    config = Fig1Config.active()
    results = run_once(benchmark, run_fig1, config)
    fig1_results.update(results)

    series = list(results.values())
    panels = []
    for metric, label in PANELS:
        panels.append(f"=== Figure 1: {label} vs Packet Generation Interval ===")
        panels.append(format_table(series, metric, x_label="interval_s"))
        panels.append(line_chart(
            {s.label: s.curve(metric) for s in series},
            title=label, x_label="packet generation interval (s)"))
    report("fig1_ssaf_vs_counter1", "\n\n".join(panels))

    counter1, ssaf = results["counter1"], results["ssaf"]
    xs = counter1.xs

    # Hops: SSAF's relays are farther out, so routes are shorter on average.
    mean = lambda series, metric: sum(series.metric(x, metric).mean for x in xs) / len(xs)
    assert mean(ssaf, "avg_hops") < mean(counter1, "avg_hops")

    # Delay: lower overall, and the advantage is largest under load
    # (smallest interval) thanks to the priority queue.
    assert mean(ssaf, "avg_delay_s") < mean(counter1, "avg_delay_s")
    smallest = xs[0]
    ratio_loaded = (counter1.metric(smallest, "avg_delay_s").mean /
                    max(ssaf.metric(smallest, "avg_delay_s").mean, 1e-9))
    assert ratio_loaded > 1.2, f"expected a clear delay win under load, got {ratio_loaded:.2f}x"

    # Delivery: at least as good on average.
    assert mean(ssaf, "delivery_ratio") >= mean(counter1, "delivery_ratio") - 0.02
