"""Ablation — the arbiter's contribution to election reliability.

Section 2: without the arbiter the basic election "is not guaranteed to
produce at least one local leader"; with an arbiter "eventually there will be
at least one local leader elected."

We measure the election success rate over many rounds in a lossy setting —
candidates whose radios duty-cycle off — with and without the arbiter.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.backoff import RandomBackoff
from repro.core.election import ElectionConfig, ElectionNode
from repro.sim.components import SimContext
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.failures import DutyCycleFailure
from tests.conftest import line_positions, make_mac_stack

ROUNDS = 40


def election_success_rate(use_arbiter: bool, seed: int) -> float:
    ctx = SimContext(Simulator(), RandomStreams(seed))
    # One trigger plus only two candidates, each off 60% of the time: the
    # single sync packet often finds both candidates deaf; only the
    # arbiter's re-trigger can recover such a round.
    channel, radios, macs = make_mac_stack(ctx, line_positions(3, spacing=30.0))
    config = ElectionConfig(
        policy=RandomBackoff(max_delay=0.02),
        use_arbiter=use_arbiter,
        arbiter_timeout_s=0.08,
        max_retriggers=8,
    )
    nodes = [ElectionNode(ctx, i, mac, config, candidate=(i != 0))
             for i, mac in enumerate(macs)]
    for radio in radios[1:]:
        DutyCycleFailure(ctx, radio, off_fraction=0.6, mean_cycle_s=0.3)

    uids = []
    for round_no in range(ROUNDS):
        ctx.simulator.schedule((round_no + 1) * 1.0, lambda: uids.append(nodes[0].trigger()))
    ctx.simulator.run(until=ROUNDS + 5.0)
    elected = sum(1 for uid in uids if nodes[0].leader_of(uid) is not None)
    return elected / ROUNDS


def test_arbiter_raises_election_reliability(benchmark, report):
    def sweep():
        with_arbiter = sum(election_success_rate(True, s) for s in (1, 2)) / 2
        without = sum(election_success_rate(False, s) for s in (1, 2)) / 2
        return with_arbiter, without

    with_arbiter, without = run_once(benchmark, sweep)
    report("ablation_arbiter", "\n".join([
        "=== Ablation: arbiter on/off (election success over flaky candidates) ===",
        f"with arbiter:    {with_arbiter:.2%}",
        f"without arbiter: {without:.2%}",
    ]))
    assert with_arbiter > without
    assert with_arbiter > 0.85
    assert without < 0.9  # the unreliability the arbiter exists to fix
