"""Extension bench — routing under random-waypoint mobility.

Beyond the paper's evaluation (its dynamics are transceiver failures); this
extends the Figure 4 argument to the classic MANET stressor and adds the DSR
and DSDV baselines the paper cites.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ext_mobility import MobilityExpConfig, run_mobility
from repro.stats.series import format_table
from repro.viz.ascii_chart import line_chart


def test_mobility_sweep(benchmark, report):
    config = MobilityExpConfig.active()
    results = run_once(benchmark, run_mobility, config)

    series = list(results.values())
    panels = []
    for metric, label in (
        ("delivery_ratio", "Delivery Ratio"),
        ("avg_delay_s", "End-to-End Delay (s)"),
        ("mac_packets", "Number of MAC Packets"),
    ):
        panels.append(f"=== Extension: {label} vs Max Node Speed (m/s) ===")
        panels.append(format_table(series, metric, x_label="speed"))
        panels.append(line_chart({s.label: s.curve(metric) for s in series},
                                 title=label, x_label="max node speed (m/s)"))
    report("ext_mobility", "\n\n".join(panels))

    rr, aodv = results["routeless"], results["aodv"]
    top_speed = max(rr.xs)

    # Routeless Routing stays serviceable at speed...
    assert rr.metric(top_speed, "delivery_ratio").mean > 0.85
    # ...and does not pay a growing control bill: AODV's MAC packets grow
    # faster with speed than Routeless Routing's.
    aodv_growth = aodv.metric(top_speed, "mac_packets").mean / \
        max(aodv.metric(0.0, "mac_packets").mean, 1.0)
    rr_growth = rr.metric(top_speed, "mac_packets").mean / \
        max(rr.metric(0.0, "mac_packets").mean, 1.0)
    assert aodv_growth > rr_growth
