"""Extension bench — Routeless Routing against the full baseline panel.

The paper compares against AODV only; this bench lines up every routing
protocol in the repository (reactive: AODV, DSR; proactive: DSDV; gradient-
redundant: Gradient Routing; electoral: Routeless Routing) on identical
scenarios, clean and at 10% transceiver failures.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    ScenarioConfig,
    attach_cbr,
    build_protocol_network,
    pick_flows,
)
from repro.sim.rng import RandomStreams
from repro.topology.failures import apply_failures

PROTOCOLS = ("aodv", "dsr", "dsdv", "gradient", "routeless")
SEEDS = (1, 2)


def run(protocol: str, seed: int, failure: float):
    scenario = ScenarioConfig(n_nodes=100, width_m=900, height_m=900,
                              range_m=250, seed=seed)
    net = build_protocol_network(protocol, scenario)
    flows = pick_flows(100, 3, RandomStreams(seed + 27).stream("bl"),
                       bidirectional=True)
    endpoints = {node for flow in flows for node in flow}
    if failure > 0:
        apply_failures(net.ctx, net.radios, failure, exempt=endpoints,
                       mean_cycle_s=3.0)
    attach_cbr(net, flows, interval_s=1.0, stop_s=25.0)
    net.run(until=30.0)
    return net.summary()


def test_baseline_panel(benchmark, report):
    def sweep():
        rows = {}
        for failure in (0.0, 0.10):
            for protocol in PROTOCOLS:
                delivery = delay = mac = 0.0
                for seed in SEEDS:
                    summary = run(protocol, seed, failure)
                    delivery += summary.delivery_ratio / len(SEEDS)
                    delay += summary.avg_delay_s / len(SEEDS)
                    mac += summary.mac_packets / len(SEEDS)
                rows[(protocol, failure)] = (delivery, delay, mac)
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["=== Extension: the full baseline panel (clean and 10% failures) ===",
             f"{'protocol':>10} {'failures':>9} {'delivery':>9} {'delay_s':>9} {'mac_pkts':>9}"]
    for (protocol, failure), (delivery, delay, mac) in rows.items():
        lines.append(f"{protocol:>10} {failure:>9.0%} {delivery:>9.3f} "
                     f"{delay:>9.4f} {mac:>9.0f}")
    report("ext_baselines", "\n".join(lines))

    # Clean network: everyone works.
    for protocol in PROTOCOLS:
        assert rows[(protocol, 0.0)][0] > 0.9, protocol

    # Under failures, Routeless Routing has the best delivery of the panel
    # (within noise).
    rr = rows[("routeless", 0.10)]
    assert rr[0] > 0.93
    for protocol in ("aodv", "dsr", "dsdv"):
        assert rr[0] >= rows[(protocol, 0.10)][0] - 0.02, protocol
    # The robust cost claim at any scale is *growth*: failures inflate the
    # reactive protocols' transmission bill (repair floods) far more than
    # Routeless Routing's.  (Absolute orderings depend on route length —
    # see the paper-scale spot checks in EXPERIMENTS.md, where AODV's
    # absolute bill is 5.6× RR's.)
    def growth(protocol):
        return rows[(protocol, 0.10)][2] / max(rows[(protocol, 0.0)][2], 1.0)

    assert growth("aodv") > growth("routeless")
    assert growth("dsr") > growth("routeless")
